//! # FedL — online client selection for federated edge learning under a budget constraint
//!
//! A from-scratch Rust reproduction of *"An Online Learning Approach for
//! Client Selection in Federated Edge Learning under Budget Constraint"*
//! (Su, Zhou, Wang, Fang, Li — ICPP 2022).
//!
//! This facade crate re-exports the workspace so downstream users can
//! depend on a single crate:
//!
//! * [`linalg`] — dense matrix substrate (thread-pooled GEMM) plus the
//!   in-tree PRNG/distribution and parallel-map substrates;
//! * [`solver`] — projection-based convex solver for the online step;
//! * [`data`] — synthetic FMNIST/CIFAR-like datasets, non-IID partitioning,
//!   online Poisson streams, IDX/CIFAR binary loaders;
//! * [`ml`] — models, losses, SGD, and the DANE/FEDL local surrogate;
//! * [`net`] — the wireless edge-network latency model;
//! * [`sim`] — client population, availability, costs, budget ledger, and
//!   the federated epoch loop;
//! * [`core`] — the FedL online-learning algorithm, RDCS rounding,
//!   dynamic regret/fit accounting, and the FedAvg/FedCS/Pow-d baselines;
//! * [`telemetry`] — metrics registry, phase spans, and the structured
//!   JSONL run log (see `docs/TELEMETRY.md`); attach a handle with
//!   [`core::runner::ExperimentRunner::with_telemetry`]; analyze a
//!   captured log offline with [`telemetry::RunLog`] (per-client
//!   attribution, HTML dashboard — see `docs/OBSERVATORY.md`);
//! * [`store`] — checksummed snapshot envelopes and the
//!   content-addressed result cache behind deterministic
//!   checkpoint/resume (see `docs/CHECKPOINT.md`); drive it with
//!   [`core::runner::ExperimentRunner::checkpoint_every`] /
//!   [`core::runner::ExperimentRunner::resume_from`];
//! * [`serve`] — the long-running federation service: a framed
//!   client protocol over TCP, an event-driven coordinator owning the
//!   policy + ledger, checkpointed bit-identical restarts, and the
//!   replay load generator (see `docs/SERVE.md`);
//! * [`dist`] — multi-process sharded execution: workers own
//!   contiguous shards of the population, the coordinator merges their
//!   partials in fixed shard order, and an N-worker run reproduces the
//!   single-process outcome bit-for-bit (see `docs/DIST.md`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use fedl::prelude::*;
//!
//! // A small federated system: 20 clients, budget 400, >=4 per epoch.
//! let scenario = ScenarioConfig::small_fmnist(20, 400.0, 4).with_seed(7);
//! let mut runner = ExperimentRunner::new(scenario, PolicyKind::FedL);
//! let outcome = runner.run();
//! println!(
//!     "final accuracy {:.3} after {} epochs and {:.1} simulated seconds",
//!     outcome.final_accuracy(),
//!     outcome.epochs.len(),
//!     outcome.total_sim_time(),
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fedl_core as core;
pub use fedl_data as data;
pub use fedl_dist as dist;
pub use fedl_linalg as linalg;
pub use fedl_ml as ml;
pub use fedl_net as net;
pub use fedl_serve as serve;
pub use fedl_sim as sim;
pub use fedl_solver as solver;
pub use fedl_store as store;
pub use fedl_telemetry as telemetry;

/// Commonly used types, re-exported for `use fedl::prelude::*`.
pub mod prelude {
    pub use fedl_core::policy::PolicyKind;
    pub use fedl_core::runner::{ExperimentRunner, RunOutcome, ScenarioConfig};
    pub use fedl_core::FedLConfig;
    pub use fedl_data::synth::{SyntheticSpec, TaskKind};
    pub use fedl_data::Partition;
    pub use fedl_ml::model::Model;
    pub use fedl_serve::{LoadgenOptions, ServeConfig, ServerState};
    pub use fedl_sim::EdgeEnvironment;
    pub use fedl_telemetry::{RunLog, Telemetry};
}
