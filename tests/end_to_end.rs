//! Cross-crate integration tests: full experiment runs through the
//! public facade, exercising every subsystem together (data synthesis →
//! partitioning → wireless model → federated training → online
//! selection → budget accounting).

use fedl::prelude::*;

fn tiny_scenario(kind_seed: u64) -> ScenarioConfig {
    let mut s = ScenarioConfig::small_fmnist(10, 250.0, 3).with_seed(kind_seed);
    s.train_size = 800;
    s.test_size = 200;
    s.max_epochs = 40;
    s
}

#[test]
fn fedl_full_run_learns_and_respects_budget() {
    let mut runner = ExperimentRunner::new(tiny_scenario(1), PolicyKind::FedL);
    let out = runner.run();
    assert!(!out.epochs.is_empty());
    let last = out.epochs.last().unwrap();
    // The run stops once the ledger is exhausted; one epoch of overshoot
    // is permitted (Alg. 1 pays, then stops).
    assert!(last.spent >= out.budget || out.epochs.len() == 40);
    let max_epoch_cost = 12.0 * 10.0; // worst case: every client at max cost
    assert!(last.spent < out.budget + max_epoch_cost);
    // Learning happened.
    assert!(
        out.final_accuracy() > out.epochs[0].accuracy,
        "accuracy {} -> {}",
        out.epochs[0].accuracy,
        out.final_accuracy()
    );
}

#[test]
fn all_four_policies_run_on_the_same_sample_path() {
    let outcomes: Vec<RunOutcome> =
        [PolicyKind::FedL, PolicyKind::FedCS, PolicyKind::FedAvg, PolicyKind::PowD]
            .into_iter()
            .map(|kind| ExperimentRunner::new(tiny_scenario(2), kind).run())
            .collect();
    for out in &outcomes {
        assert!(!out.epochs.is_empty(), "{} ran no epochs", out.policy);
        assert!(out.total_sim_time() > 0.0);
        // Cumulative series are monotone.
        for w in out.epochs.windows(2) {
            assert!(w[1].sim_time >= w[0].sim_time, "{}", out.policy);
            assert!(w[1].spent >= w[0].spent, "{}", out.policy);
        }
    }
    // Distinct policies genuinely behave differently.
    let final_accs: Vec<f64> = outcomes.iter().map(|o| o.final_accuracy()).collect();
    assert!(
        final_accs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
        "all policies produced identical outcomes: {final_accs:?}"
    );
}

#[test]
fn runs_are_reproducible_per_seed() {
    let run = || {
        let mut runner = ExperimentRunner::new(tiny_scenario(3), PolicyKind::FedL);
        runner.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.cohort_size, y.cohort_size);
        assert_eq!(x.iterations, y.iterations);
        assert!((x.accuracy - y.accuracy).abs() < 1e-12);
        assert!((x.sim_time - y.sim_time).abs() < 1e-9);
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = ExperimentRunner::new(tiny_scenario(4), PolicyKind::FedAvg).run();
    let b = ExperimentRunner::new(tiny_scenario(5), PolicyKind::FedAvg).run();
    let same = a.epochs.len() == b.epochs.len()
        && a.epochs.iter().zip(&b.epochs).all(|(x, y)| (x.sim_time - y.sim_time).abs() < 1e-12);
    assert!(!same, "independent seeds produced identical sample paths");
}

#[test]
fn non_iid_scenario_runs_end_to_end() {
    let mut runner = ExperimentRunner::new(tiny_scenario(6).non_iid(), PolicyKind::FedL);
    let out = runner.run();
    assert!(!out.epochs.is_empty());
    assert!(out.final_accuracy() > 0.1, "non-IID run collapsed");
}

#[test]
fn fedl_regret_tracker_populated_through_facade() {
    let scenario = tiny_scenario(7);
    let env = scenario.build_env();
    let policy = Box::new(fedl::core::FedLPolicy::new(
        scenario.fedl,
        scenario.env.num_clients,
        scenario.budget,
        scenario.min_participants,
    ));
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
    let out = runner.run();
    let tracker = runner.policy().regret_tracker().expect("FedL tracks regret");
    assert_eq!(tracker.epochs(), out.epochs.len());
    // Fit is non-negative and finite.
    assert!(tracker.fit().iter().all(|&v| v >= 0.0 && v.is_finite()));
    assert!(tracker.cumulative_regret().iter().all(|v| v.is_finite()));
}

#[test]
fn budget_scales_run_length() {
    let short = ExperimentRunner::new(
        {
            let mut s = tiny_scenario(8);
            s.budget = 100.0;
            s
        },
        PolicyKind::FedAvg,
    )
    .run();
    let long = ExperimentRunner::new(
        {
            let mut s = tiny_scenario(8);
            s.budget = 400.0;
            s.max_epochs = 200;
            s
        },
        PolicyKind::FedAvg,
    )
    .run();
    assert!(
        long.epochs.len() > short.epochs.len(),
        "4x budget must buy more epochs: {} vs {}",
        long.epochs.len(),
        short.epochs.len()
    );
}
