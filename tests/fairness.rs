//! Integration test of the selection-fairness extension (the paper's
//! stated future-work direction): a positive fairness weight must spread
//! selection across clients, measured by Jain's index on the run trace.

use fedl::core::fedl::{FedLConfig, FedLPolicy};
use fedl::prelude::*;

fn fairness_of(weight: f64) -> (f64, f64) {
    let scenario = ScenarioConfig::small_fmnist(14, 500.0, 3).with_seed(41);
    let env = scenario.build_env();
    let policy = Box::new(FedLPolicy::new(
        FedLConfig { fairness_weight: weight, ..scenario.fedl },
        scenario.env.num_clients,
        scenario.budget,
        scenario.min_participants,
    ));
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
    let outcome = runner.run();
    (runner.trace().jain_fairness(14), outcome.final_accuracy())
}

#[test]
fn fairness_weight_spreads_selection() {
    let (jain_plain, acc_plain) = fairness_of(0.0);
    let (jain_fair, acc_fair) = fairness_of(5.0);
    assert!(
        jain_fair > jain_plain + 0.02,
        "fairness weight did not spread selection: {jain_plain:.3} -> {jain_fair:.3}"
    );
    // The fair variant must still learn (fairness trades some speed, not
    // all of it).
    assert!(
        acc_fair > acc_plain * 0.6,
        "fairness collapsed learning: {acc_plain:.3} -> {acc_fair:.3}"
    );
}

#[test]
fn zero_weight_reproduces_plain_fedl() {
    // fairness_weight = 0 must be bit-identical to the default config.
    let run = |config: FedLConfig| {
        let scenario = ScenarioConfig::small_fmnist(10, 300.0, 3).with_seed(43);
        let env = scenario.build_env();
        let policy = Box::new(FedLPolicy::new(config, 10, 300.0, 3));
        let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
        runner.run()
    };
    let a = run(FedLConfig::default());
    let b = run(FedLConfig { fairness_weight: 0.0, ..FedLConfig::default() });
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.cohort_size, y.cohort_size);
        assert!((x.accuracy - y.accuracy).abs() < 1e-12);
    }
}
