//! Integration test of learner-state checkpointing: a restored FedL
//! policy must continue from exactly the learned estimates and
//! multipliers of the original.

use fedl::core::fedl::{FedLConfig, FedLPolicy};
use fedl::core::policy::{EpochContext, SelectionPolicy};
use fedl::prelude::*;
use fedl::sim::EdgeEnvironment;

fn context_for(env: &EdgeEnvironment, epoch: usize, budget: f64) -> Option<EpochContext> {
    let views = env.views(epoch);
    let available: Vec<usize> = views.iter().filter(|v| v.available).map(|v| v.id).collect();
    if available.is_empty() {
        return None;
    }
    let hints = env.latency_with_share(epoch.saturating_sub(1), &available, 3);
    let truth = env.latency_with_share(epoch, &available, 3);
    Some(EpochContext {
        epoch,
        num_clients: env.num_clients(),
        costs: available.iter().map(|&k| views[k].cost).collect(),
        data_volumes: available.iter().map(|&k| views[k].data_volume).collect(),
        latency_hint: hints,
        loss_hint: vec![2.3; available.len()],
        true_latency: truth,
        available,
        remaining_budget: budget,
        min_participants: 3,
        seed: 51,
    })
}

/// Drives `policy` for `epochs` federated epochs by hand (keeping
/// ownership, unlike `ExperimentRunner`, so the state stays inspectable).
fn drive(policy: &mut FedLPolicy, env: &mut EdgeEnvironment, epochs: usize) {
    let mut budget = 350.0;
    for t in 0..epochs {
        let Some(ctx) = context_for(env, t, budget) else { continue };
        let mut decision = policy.select(&ctx);
        decision.cohort.retain(|id| ctx.available.contains(id));
        if decision.cohort.is_empty() {
            decision.cohort = ctx.available.iter().copied().take(3).collect();
        }
        let report = env.run_epoch(t, &decision.cohort, decision.iterations.clamp(1, 10));
        budget -= report.cost;
        policy.observe(&ctx, &report);
        if budget <= 0.0 {
            break;
        }
    }
}

#[test]
fn checkpoint_round_trips_learner_state() {
    let scenario = ScenarioConfig::small_fmnist(10, 350.0, 3).with_seed(51);
    let mut env = scenario.build_env();
    let mut original = FedLPolicy::new(FedLConfig::default(), 10, 350.0, 3);
    drive(&mut original, &mut env, 12);

    let snapshot = original.checkpoint();
    assert!(snapshot.contains("mu0"), "snapshot should carry multipliers");
    let restored = FedLPolicy::restore(&snapshot, 10).expect("valid snapshot");

    // Learned state must match exactly.
    // JSON round-trips floats to within an ULP (shortest-representation
    // printing), so compare with a tight relative tolerance.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()));
    let (mu0_a, mu_a) = original.learner().multipliers();
    let (mu0_b, mu_b) = restored.learner().multipliers();
    assert!(close(mu0_a, mu0_b));
    assert!(mu_a.iter().zip(mu_b).all(|(&x, &y)| close(x, y)));
    assert!(mu_a.iter().any(|&m| m > 0.0) || mu0_a > 0.0, "run should have built duals");
    for k in 0..10 {
        let a = original.learner().state().stats(k).map(|s| (s.tau, s.eta, s.g, s.last_x));
        let b = restored.learner().state().stats(k).map(|s| (s.tau, s.eta, s.g, s.last_x));
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert!(
                    close(x.0, y.0) && close(x.1, y.1) && close(x.2, y.2) && close(x.3, y.3),
                    "client {k} state diverged: {x:?} vs {y:?}"
                );
            }
            other => panic!("client {k} presence diverged: {other:?}"),
        }
    }
}

#[test]
fn restored_policy_continues_with_identical_estimates() {
    // The restored policy's *fractional* decision (pre-rounding state is
    // what the snapshot carries) must be reproducible: both copies,
    // given the same context, build the same one-shot problem.
    let scenario = ScenarioConfig::small_fmnist(10, 350.0, 3).with_seed(52);
    let mut env = scenario.build_env();
    let mut original = FedLPolicy::new(FedLConfig::default(), 10, 350.0, 3);
    drive(&mut original, &mut env, 8);
    let restored = FedLPolicy::restore(&original.checkpoint(), 10).unwrap();
    // Compare remembered per-client latency estimates directly.
    for k in 0..10 {
        let a = original.learner().state().stats(k).map(|s| s.tau);
        let b = restored.learner().state().stats(k).map(|s| s.tau);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert!((x - y).abs() <= 1e-12 * (1.0 + x.abs()), "{x} vs {y}")
            }
            other => panic!("presence diverged: {other:?}"),
        }
    }
}

#[test]
fn restore_rejects_wrong_federation_size() {
    let policy = FedLPolicy::new(FedLConfig::default(), 6, 100.0, 2);
    let snapshot = policy.checkpoint();
    assert!(FedLPolicy::restore(&snapshot, 12).is_err(), "size mismatch must be rejected");
}

#[test]
fn restore_rejects_garbage() {
    assert!(FedLPolicy::restore("not a snapshot", 4).is_err());
}
