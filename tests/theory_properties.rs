//! Integration-level checks of the paper's theoretical claims on real
//! (simulated) runs: Theorem 3 (rounding expectation), Lemma 2
//! (multiplier boundedness), and the sub-linearity trend of Corollary 1.

use fedl::core::fedl::{FedLConfig, FedLPolicy};
use fedl::core::online::{OnlineLearner, StepSizes};
use fedl::core::policy::EpochContext;
use fedl::core::rounding;
use fedl::prelude::*;

#[test]
fn rdcs_expectation_on_real_fractional_decisions() {
    // Drive FedL one epoch to obtain a genuine fractional decision, then
    // Monte-Carlo the rounding of that exact vector.
    let scenario = ScenarioConfig::small_fmnist(12, 300.0, 3).with_seed(17);
    let env = scenario.build_env();
    let mut learner = OnlineLearner::new(12, StepSizes::fixed(0.5, 0.5), 1.0, 8.0, 0.3);
    let views = env.views(0);
    let available: Vec<usize> = views.iter().filter(|v| v.available).map(|v| v.id).collect();
    let k = available.len();
    let ctx = EpochContext {
        epoch: 0,
        num_clients: 12,
        available: available.clone(),
        costs: available.iter().map(|&i| views[i].cost).collect(),
        data_volumes: available.iter().map(|&i| views[i].data_volume).collect(),
        latency_hint: env.latency_with_share(0, &available, 3),
        loss_hint: vec![2.3; k],
        true_latency: env.latency_with_share(0, &available, 3),
        remaining_budget: 300.0,
        min_participants: 3,
        seed: 17,
    };
    let problem = learner.build_problem(&ctx);
    let frac = learner.decide(&ctx, &problem);

    let trials = 30_000;
    let mut counts = vec![0usize; k];
    let mut rng = fedl::linalg::rng::rng_for(99, 0);
    for _ in 0..trials {
        let mut x = frac.x.clone();
        for i in rounding::rdcs(&mut x, &mut rng) {
            counts[i] += 1;
        }
    }
    for (i, (&c, &want)) in counts.iter().zip(&frac.x).enumerate() {
        let freq = c as f64 / trials as f64;
        assert!(
            (freq - want).abs() < 0.015,
            "Theorem 3 violated at coord {i}: E={freq:.3} vs x̃={want:.3}"
        );
    }
}

#[test]
fn multipliers_stay_bounded_over_a_full_run() {
    // Lemma 2: ‖μ_t‖ admits a uniform bound. Empirically the multipliers
    // must not blow up over a full budget-length run.
    let scenario = ScenarioConfig::small_fmnist(10, 400.0, 3).with_seed(23);
    let env = scenario.build_env();
    let policy = Box::new(FedLPolicy::new(FedLConfig::default(), 10, 400.0, 3));
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
    let out = runner.run();
    assert!(out.epochs.len() > 5, "run too short to be meaningful");
    // Reach inside through the tracker: fit growth reflects ‖μ‖/δ
    // (Theorem 2's bound Fit ≤ ‖μ‖/δ), so a bounded, sane fit curve is
    // the observable consequence.
    let tracker = runner.policy().regret_tracker().unwrap();
    let fit = tracker.fit();
    let last = *fit.last().unwrap();
    assert!(last.is_finite());
    // Fit should grow slower than linearly: compare the second-half
    // increment with the first half.
    let mid = fit[fit.len() / 2];
    assert!(
        last - mid <= mid + 1e-6 || last < 1.0,
        "fit accelerated in the second half: {mid} -> {last}"
    );
}

#[test]
fn regret_rate_stays_bounded() {
    // Corollary 1 bounds the regret of the online player. The tracker
    // measures *dynamic* regret against a fresh per-epoch hindsight
    // comparator, so with decaying step sizes the per-epoch increment
    // settles onto a plateau rather than vanishing — the observable
    // consequence of a healthy learner is that the late-run rate stays
    // within a constant band of the early rate. A broken learner (e.g. a
    // multiplier runaway or a divergent descent step) shows up as the
    // late rate exploding past that band; across a 20-seed calibration
    // sweep the late/early rates stay within [~0.5x, ~2.5x] of each
    // other, so the 1.5x + 4.0 envelope below has ample slack while
    // still catching super-linear blow-up.
    let scenario = ScenarioConfig::small_fmnist(10, 2500.0, 3).with_seed(29);
    let env = scenario.build_env();
    let policy = Box::new(FedLPolicy::new(FedLConfig::default(), 10, 2500.0, 3));
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
    let _ = runner.run();
    let tracker = runner.policy().regret_tracker().unwrap();
    let reg = tracker.cumulative_regret();
    assert!(reg.len() >= 12, "need a reasonable horizon, got {}", reg.len());
    let half = reg.len() / 2;
    let early_rate = reg[half] / half as f64;
    let late_rate = (reg[reg.len() - 1] - reg[half]) / (reg.len() - half) as f64;
    // The online player often runs negative regret early (it trades fit
    // for objective; see EXPERIMENTS.md), hence the `.max(0.0)`.
    assert!(
        late_rate <= early_rate.max(0.0) * 1.5 + 4.0,
        "per-epoch regret blew up: early {early_rate:.4} late {late_rate:.4}"
    );
    // And the plateau itself must be finite and modest: cumulative
    // regret stays linear-with-small-slope at worst, never super-linear.
    let total_rate = reg[reg.len() - 1] / reg.len() as f64;
    assert!(
        total_rate.is_finite() && total_rate < 25.0,
        "average per-epoch regret {total_rate:.4} out of band"
    );
}
