//! End-to-end test of the *real-dataset* code path: write images to disk
//! in the genuine IDX and CIFAR-10 binary formats, load them back
//! through the production loaders, and run a federated experiment on
//! the result — the exact flow a user with the real FMNIST/CIFAR files
//! follows.

use fedl::data::synth::{SyntheticSpec, TaskKind};
use fedl::data::{cifar, idx};
use fedl::ml::dane::DaneConfig;
use fedl::ml::model::SoftmaxRegression;
use fedl::prelude::*;
use fedl::sim::{EdgeEnvironment, EnvConfig};

/// Quantizes a synthetic dataset into IDX files, reloads it, and checks
/// the round trip is faithful to u8 precision.
#[test]
fn idx_disk_round_trip_preserves_data() {
    let dir = std::env::temp_dir().join("fedl_idx_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let (train, _) = SyntheticSpec::new(TaskKind::FmnistLike, 40, 5, 3)
        .with_dim(49) // 7x7 "images"
        .generate();

    let images = idx::IdxTensor {
        dims: vec![train.len() as u32, 7, 7],
        data: train.features.as_slice().iter().map(|&v| (v * 255.0).round() as u8).collect(),
    };
    let labels = idx::IdxTensor {
        dims: vec![train.len() as u32],
        data: train.labels.iter().map(|&l| l as u8).collect(),
    };
    idx::write_file(&dir.join("train-images-idx3-ubyte"), &images).unwrap();
    idx::write_file(&dir.join("train-labels-idx1-ubyte"), &labels).unwrap();

    let loaded = idx::load_pair(&dir, "train").unwrap();
    assert_eq!(loaded.len(), train.len());
    assert_eq!(loaded.labels, train.labels);
    for (a, b) in loaded.features.as_slice().iter().zip(train.features.as_slice()) {
        assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6, "quantization exceeded: {a} vs {b}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Full federated run on a dataset that went through the CIFAR binary
/// format on disk.
#[test]
fn federated_run_on_cifar_binary_files() {
    let dir = std::env::temp_dir().join("fedl_cifar_e2e");
    std::fs::create_dir_all(&dir).unwrap();

    // Synthesize a CIFAR-shaped dataset and write it as one batch file.
    let (train, test) = SyntheticSpec::new(TaskKind::CifarLike, 240, 60, 5).generate();
    let to_records = |ds: &fedl::data::Dataset| -> Vec<(u8, Vec<u8>)> {
        (0..ds.len())
            .map(|r| {
                let img: Vec<u8> =
                    ds.features.row(r).iter().map(|&v| (v * 255.0).round() as u8).collect();
                (ds.labels[r] as u8, img)
            })
            .collect()
    };
    std::fs::write(dir.join("data_batch_1.bin"), cifar::serialize(&to_records(&train)).unwrap())
        .unwrap();
    let train_loaded = cifar::read_file(&dir.join("data_batch_1.bin")).unwrap();
    assert_eq!(train_loaded.len(), 240);
    assert_eq!(train_loaded.dim(), cifar::IMAGE_BYTES);

    // Drive a short federated run on the loaded data.
    let model = SoftmaxRegression::new(train_loaded.dim(), train_loaded.num_classes, 0.01);
    let mut env = EdgeEnvironment::new(
        EnvConfig::small(6, 5),
        train_loaded,
        test,
        Partition::Iid,
        Box::new(model),
        DaneConfig { local_steps: 3, batch: 16, ..Default::default() },
    );
    let mut trained = false;
    for t in 0..6 {
        let avail = env.available(t);
        if avail.len() < 2 {
            continue;
        }
        let report = env.run_epoch(t, &avail[..2], 2);
        assert!(report.latency_secs > 0.0);
        trained = true;
    }
    assert!(trained, "no epoch had enough available clients");
    assert!(env.test_accuracy().is_finite());
    std::fs::remove_dir_all(&dir).ok();
}
