//! The federation service end-to-end on the in-memory transport
//! (docs/SERVE.md): a coordinator thread serves a duplex pipe while the
//! load generator joins 100 clients and drives 20 selection epochs,
//! then the served selections are checked bit-for-bit against the
//! in-process reference and the telemetry phase report is printed.
//!
//! ```bash
//! cargo run --release --example serve_roundtrip
//! ```
//!
//! Side effects: writes `results/serve_roundtrip_run.jsonl` (the
//! server's telemetry log carrying the `serve.*` events).

use std::path::Path;
use std::thread;

use fedl::prelude::*;
use fedl::serve::{reference_run, run_loadgen, serve_connection, DuplexTransport, ServeExit};

fn main() {
    let out = Path::new("results");
    std::fs::create_dir_all(out).expect("create results dir");
    let log_path = out.join("serve_roundtrip_run.jsonl");

    let config = ServeConfig::new(100, 42, 5_000.0, 5, PolicyKind::FedL);
    let telemetry = Telemetry::to_file(&log_path).expect("open telemetry log");
    let mut server = ServerState::new(config.clone(), telemetry);

    let (mut server_end, mut client_end) = DuplexTransport::pair();
    let coordinator = thread::spawn(move || {
        let exit = serve_connection(&mut server_end, &mut server).expect("serve loop");
        (server, exit)
    });

    let opts = LoadgenOptions { epochs: 20, start_epoch: 0, shutdown: true };
    let report = run_loadgen(&mut client_end, &config, &opts).expect("loadgen");
    let (server, exit) = coordinator.join().expect("coordinator thread");
    assert_eq!(exit, ServeExit::Shutdown);

    println!(
        "served {} epochs over {} clients in {:.3} s — {:.0} selections/sec",
        report.selections.len(),
        report.clients,
        report.elapsed_secs,
        report.selections_per_sec(),
    );
    println!(
        "server finished at epoch {} with {} selections and {} malformed frames",
        server.next_epoch(),
        server.selections(),
        server.malformed_frames(),
    );

    // The protocol must not change a single selection vs the
    // in-process driver.
    let reference = reference_run(&config, 20);
    assert_eq!(report.selections, reference, "served selections must match the reference");
    println!("verified: served selections match the in-process reference bit-for-bit\n");

    let log = RunLog::read(&log_path).expect("read run log");
    print!("{}", log.render_report());
}
