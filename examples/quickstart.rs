//! Quickstart: train a federated model with FedL on a laptop-scale
//! synthetic FMNIST task and watch accuracy grow until the budget runs
//! out.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fedl::prelude::*;

fn main() {
    // 20 clients in a 500 m cell, long-term budget 400, at least 4
    // participants per epoch.
    let scenario = ScenarioConfig::small_fmnist(20, 400.0, 4).with_seed(7);
    let mut runner = ExperimentRunner::new(scenario, PolicyKind::FedL);
    let outcome = runner.run();

    println!("epoch  cohort  iters  sim-time(s)   spent   accuracy");
    for r in outcome.epochs.iter().step_by(2) {
        println!(
            "{:>5}  {:>6}  {:>5}  {:>11.2}  {:>6.1}  {:>8.3}",
            r.epoch, r.cohort_size, r.iterations, r.sim_time, r.spent, r.accuracy
        );
    }
    println!(
        "\nfinal accuracy {:.3} after {} epochs and {:.1} simulated seconds \
         (budget {:.0}, spent {:.1})",
        outcome.final_accuracy(),
        outcome.epochs.len(),
        outcome.total_sim_time(),
        outcome.budget,
        outcome.epochs.last().map_or(0.0, |r| r.spent),
    );
}
