//! Budget-impact sweep (a miniature of the paper's Figs. 6–7): final
//! global loss as a function of the long-term budget, for FedL and the
//! baselines.
//!
//! The expected shape: the baselines need large budgets before their
//! loss comes down, while FedL stays low even when money is tight.
//!
//! ```bash
//! cargo run --release --example budget_sweep
//! ```

use fedl::prelude::*;

fn main() {
    let budgets = [150.0, 300.0, 600.0, 1200.0];
    println!(
        "{:<8} {}",
        "policy",
        budgets.iter().map(|b| format!("{:>10}", format!("C={b}"))).collect::<String>()
    );
    for kind in [PolicyKind::FedL, PolicyKind::FedCS, PolicyKind::FedAvg, PolicyKind::PowD] {
        let mut row = format!("{:<8}", kind.label());
        for &budget in &budgets {
            let scenario = ScenarioConfig::small_fmnist(25, budget, 4).with_seed(9);
            let mut runner = ExperimentRunner::new(scenario, kind);
            let out = runner.run();
            row.push_str(&format!("{:>10.3}", out.final_loss()));
        }
        println!("{row}");
    }
}
