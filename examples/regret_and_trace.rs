//! Theory validation and run forensics through the public API: drive a
//! FedL run with a telemetry handle attached, then inspect (1) the
//! dynamic regret and fit curves whose sub-linear growth Corollary 1
//! guarantees, (2) the structured event trace — who got selected, how
//! often, how fairly — and (3) the JSONL run log's per-phase timing
//! report.
//!
//! ```bash
//! cargo run --release --example regret_and_trace
//! ```
//!
//! The run log lands in `results/regret_trace_run.jsonl`; inspect it
//! later with `experiments telemetry-report results/regret_trace_run.jsonl`.

use fedl::core::fedl::FedLPolicy;
use fedl::prelude::*;
use fedl::telemetry::RunLog;

const RUN_LOG: &str = "results/regret_trace_run.jsonl";

fn main() {
    let scenario = ScenarioConfig::small_fmnist(15, 700.0, 4).with_seed(33);
    let env = scenario.build_env();
    let policy = Box::new(FedLPolicy::new(
        scenario.fedl,
        scenario.env.num_clients,
        scenario.budget,
        scenario.min_participants,
    ));
    let telemetry = Telemetry::to_file(RUN_LOG).expect("create run log");
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy).with_telemetry(telemetry);
    let outcome = runner.run();

    // ── Corollary 1: dynamic regret / fit curves ──
    let tracker = runner.policy().regret_tracker().expect("FedL tracks regret");
    println!("t      Reg(t)        Fit(t)      Reg(t)/t");
    let reg = tracker.cumulative_regret();
    let fit = tracker.fit();
    for i in (0..reg.len()).step_by((reg.len() / 10).max(1)) {
        println!(
            "{:<6} {:>10.3} {:>12.3} {:>12.4}",
            i + 1,
            reg[i],
            fit[i],
            reg[i] / (i + 1) as f64
        );
    }
    println!(
        "\nper-epoch regret fell from {:.4} (first half) to {:.4} (second half)",
        reg[reg.len() / 2] / (reg.len() / 2).max(1) as f64,
        (reg[reg.len() - 1] - reg[reg.len() / 2]) / (reg.len() - reg.len() / 2) as f64,
    );

    // ── Run forensics from the event trace ──
    let trace = runner.trace();
    let m = 15;
    let counts = trace.selection_counts(m);
    println!("\nselection counts per client: {counts:?}");
    println!("Jain fairness index: {:.3} (1.0 = perfectly even)", trace.jain_fairness(m));
    let total_cost: f64 = trace.events().iter().map(|e| e.cost).sum();
    println!(
        "{} epochs, total cost {:.1} of budget {:.0}, final accuracy {:.3}",
        trace.len(),
        total_cost,
        outcome.budget,
        outcome.final_accuracy()
    );

    // ── Per-phase timing from the JSONL run log ──
    let log = RunLog::read(RUN_LOG).expect("read back run log");
    println!("\nrun log: {RUN_LOG}");
    print!("{}", log.render_report());
}
