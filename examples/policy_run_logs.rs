//! Produces one telemetry run log per policy on the same sample path —
//! the input for the multi-run dashboard overlay (the paper's §6
//! comparison protocol: identical clients, availability, costs and
//! data arrivals; only the selection rule differs).
//!
//! ```bash
//! cargo run --release --example policy_run_logs
//! cargo run --release -p fedl-bench --bin experiments -- \
//!     dashboard results/overlay_fedl_run.jsonl results/overlay_fedavg_run.jsonl \
//!     --html results/overlay.html
//! ```

use fedl::prelude::*;

fn main() {
    for (kind, path) in [
        (PolicyKind::FedL, "results/overlay_fedl_run.jsonl"),
        (PolicyKind::FedAvg, "results/overlay_fedavg_run.jsonl"),
    ] {
        let scenario = ScenarioConfig::small_fmnist(15, 600.0, 4).with_seed(21);
        let telemetry = Telemetry::to_file(path).expect("create run log");
        let mut runner = ExperimentRunner::new(scenario, kind).with_telemetry(telemetry);
        let out = runner.run();
        println!(
            "{:<8} {:>3} epochs, final acc {:.3} -> {path}",
            out.policy,
            out.epochs.len(),
            out.final_accuracy(),
        );
    }
}
