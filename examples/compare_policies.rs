//! Head-to-head comparison of FedL against the paper's three baselines
//! (FedCS, FedAvg, Pow-d) on the same sample path — same clients, same
//! availability, same costs, same data arrivals.
//!
//! This is a miniature of the paper's Figs. 2–5: after the same budget,
//! FedL should reach the target accuracy in less simulated time.
//!
//! ```bash
//! cargo run --release --example compare_policies
//! ```

use fedl::prelude::*;

fn main() {
    let target = 0.45;
    println!(
        "{:<8} {:>7} {:>12} {:>14} {:>16}",
        "policy", "epochs", "final acc", "sim time (s)", "time to 45% (s)"
    );
    for kind in [PolicyKind::FedL, PolicyKind::FedCS, PolicyKind::FedAvg, PolicyKind::PowD] {
        let scenario = ScenarioConfig::small_fmnist(30, 900.0, 5).with_seed(42);
        let mut runner = ExperimentRunner::new(scenario, kind);
        let out = runner.run();
        let tta = out.time_to_accuracy(target).map_or("never".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<8} {:>7} {:>12.3} {:>14.1} {:>16}",
            out.policy,
            out.epochs.len(),
            out.final_accuracy(),
            out.total_sim_time(),
            tta
        );
    }
}
