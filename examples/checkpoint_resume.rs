//! Deterministic interrupt/resume round trip (docs/CHECKPOINT.md).
//!
//! Runs the same scenario twice: once uninterrupted, and once
//! "killed" mid-run after a few epochs, snapshotted, and resumed from
//! the checkpoint file. The two [`RunOutcome`]s must be identical —
//! bit-for-bit, including every float — or the process exits non-zero,
//! which is how `scripts/ci.sh` uses it as a verification stage.
//!
//! ```bash
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! Side effects: writes `results/checkpoint_demo.fedlstore` (the
//! snapshot) and `results/checkpoint_run.jsonl` (a telemetry log
//! carrying the `checkpoint.saved` / `checkpoint.restored` events).

use std::path::Path;

use fedl::prelude::*;

fn main() {
    let out = Path::new("results");
    std::fs::create_dir_all(out).expect("create results dir");
    let snapshot = out.join("checkpoint_demo.fedlstore");

    let scenario = ScenarioConfig::small_fmnist(20, 400.0, 4).with_seed(7);

    // Reference: the uninterrupted run.
    let mut reference = ExperimentRunner::new(scenario.clone(), PolicyKind::FedL);
    let expected = reference.run();
    println!(
        "uninterrupted: {} epochs, final accuracy {:.3}",
        expected.epochs.len(),
        expected.final_accuracy()
    );

    // The same run, killed after 7 epochs. Periodic snapshots land
    // every 3 epochs; one explicit save marks the interruption point.
    let telemetry = Telemetry::to_file(out.join("checkpoint_run.jsonl")).expect("create run log");
    let mut interrupted = ExperimentRunner::new(scenario.clone(), PolicyKind::FedL)
        .checkpoint_every(3, &snapshot)
        .with_telemetry(telemetry.clone());
    for _ in 0..7 {
        if !interrupted.step() {
            break;
        }
    }
    interrupted.save_checkpoint(&snapshot).expect("write snapshot");
    drop(interrupted); // the "power loss"

    // Resume from disk and run to completion.
    let mut resumed = ExperimentRunner::resume_from(scenario, PolicyKind::FedL, &snapshot)
        .expect("resume from snapshot")
        .with_telemetry(telemetry.clone());
    let actual = resumed.run();
    telemetry.flush();
    println!(
        "resumed:       {} epochs, final accuracy {:.3}",
        actual.epochs.len(),
        actual.final_accuracy()
    );

    if actual != expected {
        eprintln!("FAIL: resumed outcome diverged from the uninterrupted run");
        std::process::exit(1);
    }
    println!("OK: resumed run is identical to the uninterrupted run");
}
