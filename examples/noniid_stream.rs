//! Inspecting the simulated edge federation: non-IID data, time-varying
//! availability, costs, channels, and Poisson data arrival — the inputs
//! FedL has to cope with online.
//!
//! Also demonstrates the lower-level crate APIs (environment built by
//! hand rather than through `ScenarioConfig`).
//!
//! ```bash
//! cargo run --release --example noniid_stream
//! ```

use fedl::data::partition::label_skew;
use fedl::data::synth::{SyntheticSpec, TaskKind};
use fedl::data::Partition;
use fedl::ml::dane::DaneConfig;
use fedl::ml::model::SoftmaxRegression;
use fedl::sim::{EdgeEnvironment, EnvConfig};

fn main() {
    // Build a non-IID federation by hand.
    let spec = SyntheticSpec::new(TaskKind::FmnistLike, 3000, 500, 5).with_dim(64);
    let (train, test) = spec.generate();
    let partition = Partition::PrincipalMix { principal_frac: 0.8 };
    let pools = partition.split(&train, 12, 5);
    println!(
        "non-IID split over 12 clients: mean label skew {:.3} (IID would be ~0)",
        label_skew(&train, &pools)
    );

    let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
    let env = EdgeEnvironment::new(
        EnvConfig::small(12, 5),
        train,
        test,
        partition,
        Box::new(model),
        DaneConfig::default(),
    );

    println!("\nepoch  available  volumes(min..max)  cost(min..max)");
    for epoch in 0..8 {
        let views = env.views(epoch);
        let avail: Vec<_> = views.iter().filter(|v| v.available).collect();
        let volumes: Vec<usize> = avail.iter().map(|v| v.data_volume).collect();
        let costs: Vec<f64> = avail.iter().map(|v| v.cost).collect();
        println!(
            "{:>5}  {:>9}  {:>8}..{:<8}  {:>6.2}..{:<6.2}",
            epoch,
            avail.len(),
            volumes.iter().min().copied().unwrap_or(0),
            volumes.iter().max().copied().unwrap_or(0),
            costs.iter().copied().fold(f64::INFINITY, f64::min),
            costs.iter().copied().fold(0.0, f64::max),
        );
    }

    // Per-client latency heterogeneity at epoch 0 under a 4-way share.
    let ids: Vec<usize> = (0..12).collect();
    let lat = env.latency_with_share(0, &ids, 4);
    println!("\nper-iteration latency by client (s): ");
    for (k, l) in lat.iter().enumerate() {
        println!("  client {k:>2}: {l:>8.3}");
    }
}
