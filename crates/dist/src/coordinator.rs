//! The distributed coordinator: owns the policy, the budget ledger,
//! and the epoch loop; workers own only their shard of the population.
//!
//! Per epoch the coordinator broadcasts [`Message::ShardContext`] to
//! every worker, concatenates the returned
//! [`fedl_core::columnar::ContextPart`]s **in fixed shard order**
//! (contiguous shards + ascending in-shard ids = global ascending
//! order), and assembles the exact [`EpochContext`](fedl_core::EpochContext) a single process
//! would build. The policy then selects; the cohort is split back into
//! per-shard member lists for [`Message::ShardTrain`], and the returned
//! per-member feedback columns are concatenated — again in shard order
//! — before one shared scalar combination
//! ([`fedl_serve::combine_feedback`]) folds them. No cross-shard float
//! reduction happens in the merge at all, which is why an N-worker run
//! is bit-identical to the in-process reference for every N
//! (docs/DIST.md).
//!
//! Workers are pure functions of `(config, shard, epoch)`, so failure
//! handling is re-asking: a worker whose link errors is reset
//! (respawned or reconnected by the [`WorkerLink`] impl), re-handshaken
//! with the same [`Message::ShardAssign`], and sent the in-flight
//! request again — the retried reply carries the identical bytes.

use std::collections::VecDeque;
use std::ops::Range;
use std::time::Instant;

use fedl_core::columnar::{assemble_context, ContextPart};
use fedl_core::policy::SelectionPolicy;
use fedl_json::Value;
use fedl_serve::proto::{
    decode_frame, encode_frame, version_accepted, Message, ProtocolError, Trace, PROTOCOL_VERSION,
};
use fedl_serve::{combine_feedback, sanitize_decision, SelectionRecord, ServeConfig};
use fedl_sim::BudgetLedger;
use fedl_telemetry::{SpanContext, Telemetry};

use crate::shard::members_in;
use crate::worker::WorkerState;

/// One end of a coordinator ↔ worker pairing. `send`/`recv_reply` are
/// split (not a single rpc) so the coordinator can broadcast a request
/// to every worker before collecting any reply — remote workers compute
/// their shards concurrently.
pub trait WorkerLink {
    /// Sends one request frame.
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError>;
    /// Receives and decodes the next reply. A wire [`Message::Error`]
    /// is returned as a message (protocol refusals are hard bugs, not
    /// transport failures), transport trouble as the typed error.
    fn recv_reply(&mut self) -> Result<Message, ProtocolError>;
    /// Tears the link down and re-establishes it — respawn the process,
    /// reconnect the socket, restart the thread. After a successful
    /// reset the coordinator re-runs the handshake.
    fn reset(&mut self) -> Result<(), String>;
}

/// A worker and the contiguous client range it owns.
pub struct ShardWorker {
    /// Owned client ids `start..end`.
    pub shard: Range<usize>,
    /// The live link.
    pub link: Box<dyn WorkerLink>,
}

/// Zero-socket [`WorkerLink`] driving a [`WorkerState`] in-process
/// through the full encode → envelope-verify → decode pipeline — the
/// `dist/epoch_100k` bench kernel's transport and the fastest way to
/// embed a sharded run in tests.
pub struct LocalWorkerLink {
    state: WorkerState,
    replies: VecDeque<Vec<u8>>,
}

impl LocalWorkerLink {
    /// Wraps a worker state.
    pub fn new(state: WorkerState) -> Self {
        Self { state, replies: VecDeque::new() }
    }
}

impl WorkerLink for LocalWorkerLink {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        let (reply, _control) = self.state.handle_frame(&encode_frame(msg));
        self.replies.push_back(reply);
        Ok(())
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        let frame = self
            .replies
            .pop_front()
            .ok_or_else(|| ProtocolError::Io { detail: "no reply queued".to_string() })?;
        decode_frame(&frame)
    }

    fn reset(&mut self) -> Result<(), String> {
        self.state = WorkerState::new(Telemetry::disabled());
        self.replies.clear();
        Ok(())
    }
}

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Selection epochs to drive.
    pub epochs: usize,
    /// Reset + re-handshake attempts per worker failure before the run
    /// aborts with an error.
    pub max_resets: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self { epochs: 10, max_resets: 2 }
    }
}

/// What a distributed run produced.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// One record per driven epoch, in order — the artifact the
    /// determinism checks byte-compare against the in-process
    /// reference.
    pub selections: Vec<SelectionRecord>,
    /// Population size.
    pub clients: usize,
    /// Worker count.
    pub workers: usize,
    /// Wall-clock seconds spent in the epoch loop.
    pub elapsed_secs: f64,
    /// `true` when the budget exhausted before `epochs` ran out.
    pub done: bool,
    /// Worker failures recovered by reset + re-handshake + retry.
    pub recoveries: usize,
}

/// The coordinator's full state. Build with [`Coordinator::new`], run
/// with [`Coordinator::run`].
pub struct Coordinator {
    config: ServeConfig,
    workers: Vec<ShardWorker>,
    policy: Box<dyn SelectionPolicy>,
    ledger: BudgetLedger,
    telemetry: Telemetry,
    max_resets: usize,
    recoveries: usize,
}

impl Coordinator {
    /// Validates the shard layout (contiguous, ascending, covering the
    /// population exactly) and builds the policy + ledger.
    pub fn new(
        config: ServeConfig,
        workers: Vec<ShardWorker>,
        telemetry: Telemetry,
    ) -> Result<Self, String> {
        if workers.is_empty() {
            return Err("at least one shard worker is required".to_string());
        }
        let mut cursor = 0;
        for (i, w) in workers.iter().enumerate() {
            if w.shard.start != cursor || w.shard.start >= w.shard.end {
                return Err(format!(
                    "worker {i} owns {}..{} but the shards must be non-empty, ascending, and \
                     contiguous from 0",
                    w.shard.start, w.shard.end
                ));
            }
            cursor = w.shard.end;
        }
        if cursor != config.env.num_clients {
            return Err(format!(
                "shards cover 0..{cursor} but the population is 0..{}",
                config.env.num_clients
            ));
        }
        // `build_untracked`: the regret tracker's hindsight solve costs
        // more than the epoch itself at 100k+ clients, and the dist
        // layer never plots regret curves. Selections are bit-identical
        // to the tracked build's.
        let policy = config.policy.build_untracked(
            config.env.num_clients,
            config.budget,
            config.min_participants,
            config.fedl,
        );
        let mut ledger = BudgetLedger::new(config.budget);
        ledger.set_telemetry(telemetry.clone());
        telemetry.emit(
            "dist.start",
            vec![
                ("clients", Value::from(config.env.num_clients)),
                ("workers", Value::from(workers.len())),
                ("budget", Value::Float(config.budget)),
                ("policy", Value::from(config.policy.label())),
            ],
        );
        Ok(Self {
            config,
            workers,
            policy,
            ledger,
            telemetry,
            max_resets: DistOptions::default().max_resets,
            recoveries: 0,
        })
    }

    fn assign_msg(&self, i: usize) -> Message {
        let shard = &self.workers[i].shard;
        Message::ShardAssign {
            clients: self.config.env.num_clients,
            seed: self.config.env.seed,
            budget: self.config.budget,
            min_participants: self.config.min_participants,
            policy: self.config.policy.label().to_string(),
            shard_start: shard.start,
            shard_end: shard.end,
        }
    }

    /// One request/reply against worker `i`, no recovery.
    fn rpc(&mut self, i: usize, msg: &Message) -> Result<Message, ProtocolError> {
        self.workers[i].link.send(msg)?;
        self.workers[i].link.recv_reply()
    }

    /// Hello + ShardAssign + ShardReady against worker `i`, verifying
    /// the protocol version, the echoed shard bounds, and that the
    /// worker's deployment fingerprint matches ours.
    fn handshake(&mut self, i: usize) -> Result<(), String> {
        let hello =
            Message::Hello { protocol_version: PROTOCOL_VERSION, node: "fedl-dist".to_string() };
        match self.rpc(i, &hello).map_err(|e| format!("worker {i} handshake: {e}"))? {
            Message::Hello { protocol_version, .. } if version_accepted(protocol_version) => {}
            Message::Hello { protocol_version, .. } => {
                return Err(format!(
                    "worker {i} speaks protocol v{protocol_version}, this coordinator v{PROTOCOL_VERSION}"
                ))
            }
            other => return Err(format!("worker {i} answered the hello with {other:?}")),
        }
        let assign = self.assign_msg(i);
        let want = self.workers[i].shard.clone();
        match self.rpc(i, &assign).map_err(|e| format!("worker {i} assignment: {e}"))? {
            Message::ShardReady { shard_start, shard_end, fingerprint } => {
                if shard_start != want.start || shard_end != want.end {
                    return Err(format!(
                        "worker {i} acknowledged shard {shard_start}..{shard_end}, expected \
                         {}..{}",
                        want.start, want.end
                    ));
                }
                let ours = self.config.fingerprint();
                if fingerprint != ours {
                    return Err(format!(
                        "worker {i} runs a different deployment (fingerprint {fingerprint}, \
                         coordinator {ours})"
                    ));
                }
            }
            other => return Err(format!("worker {i} refused its assignment: {other:?}")),
        }
        self.telemetry.emit(
            "dist.assign",
            vec![
                ("worker", Value::from(i)),
                ("shard_start", Value::from(want.start)),
                ("shard_end", Value::from(want.end)),
            ],
        );
        Ok(())
    }

    /// Resets worker `i`'s link (respawn/reconnect) and re-handshakes,
    /// up to `max_resets` attempts.
    fn recover(&mut self, i: usize, why: &ProtocolError) -> Result<(), String> {
        self.recoveries += 1;
        self.telemetry.counter("dist.recoveries").incr();
        self.telemetry.emit(
            "dist.worker_recovered",
            vec![("worker", Value::from(i)), ("code", Value::from(why.code()))],
        );
        let mut last = why.to_string();
        for _ in 0..self.max_resets.max(1) {
            match self.workers[i].link.reset() {
                Ok(()) => match self.handshake(i) {
                    Ok(()) => return Ok(()),
                    Err(e) => last = e,
                },
                Err(e) => last = e,
            }
        }
        Err(format!("worker {i} unrecoverable after {} resets: {last}", self.max_resets.max(1)))
    }

    /// Recovers worker `i` and replays one request/reply.
    fn retry(
        &mut self,
        i: usize,
        err: ProtocolError,
        make: &dyn Fn(&Range<usize>) -> Message,
    ) -> Result<Message, String> {
        self.recover(i, &err)?;
        let msg = make(&self.workers[i].shard);
        self.rpc(i, &msg).map_err(|e| format!("worker {i} failed again after recovery: {e}"))
    }

    /// Broadcasts `make(shard)` to every worker, then collects one
    /// reply per worker **in shard order**. A worker whose link fails
    /// at either half is recovered and re-asked; replies stay aligned
    /// to worker indices regardless.
    fn gather(
        &mut self,
        phase: &'static str,
        epoch: usize,
        parent: Option<SpanContext>,
        make: &dyn Fn(&Range<usize>) -> Message,
    ) -> Result<Vec<Message>, String> {
        let n = self.workers.len();
        let mut send_failed: Vec<Option<ProtocolError>> = (0..n).map(|_| None).collect();
        for (i, slot) in send_failed.iter_mut().enumerate() {
            let msg = make(&self.workers[i].shard);
            if let Err(e) = self.workers[i].link.send(&msg) {
                *slot = Some(e);
            }
        }
        let mut replies = Vec::with_capacity(n);
        for (i, failure) in send_failed.into_iter().enumerate() {
            let reply = match failure {
                Some(err) => self.retry(i, err, make)?,
                None => {
                    let mut span = self.telemetry.span_in(phase, parent);
                    span.field("worker", Value::from(i));
                    span.field("epoch", Value::from(epoch));
                    let got = self.workers[i].link.recv_reply();
                    drop(span);
                    match got {
                        Ok(reply) => reply,
                        Err(err) => self.retry(i, err, make)?,
                    }
                }
            };
            replies.push(reply);
        }
        Ok(replies)
    }

    /// Counts a malformed or mismatched shard reply before propagating
    /// the parse error: the `dist.bad_replies` counter shows up in
    /// live stats, the `dist.bad_reply` event in `telemetry-report
    /// --require` — even when the run aborts.
    fn bad_reply<T>(&self, result: Result<T, String>) -> Result<T, String> {
        if let Err(detail) = &result {
            self.telemetry.counter("dist.bad_replies").incr();
            self.telemetry.emit("dist.bad_reply", vec![("detail", Value::from(detail.as_str()))]);
        }
        result
    }

    /// Drives the distributed epoch loop. The returned selections are
    /// bit-identical to `fedl_serve::reference_run` over the same
    /// config for any worker count — the tentpole contract, pinned by
    /// the crate's determinism tests and the `dist` CI stage.
    pub fn run(&mut self, opts: &DistOptions) -> Result<DistReport, String> {
        self.max_resets = opts.max_resets;
        for i in 0..self.workers.len() {
            self.handshake(i)?;
        }
        let num_clients = self.config.env.num_clients;
        let mut records = Vec::with_capacity(opts.epochs);
        let mut done = false;
        let started = Instant::now();
        for epoch in 0..opts.epochs {
            if self.ledger.exhausted() {
                done = true;
                break;
            }
            let mut epoch_span = self.telemetry.span("dist.epoch");
            epoch_span.field("epoch", Value::from(epoch));
            let parent = epoch_span.ctx();
            let trace = Trace::from_context(parent);
            let replies = self.gather("dist.context", epoch, parent, &|_| {
                Message::ShardContext { epoch, trace }
            })?;
            let mut parts = Vec::with_capacity(replies.len());
            for (i, reply) in replies.into_iter().enumerate() {
                let part =
                    self.bad_reply(parse_context_part(i, &self.workers[i].shard, epoch, reply))?;
                parts.push(part);
                self.telemetry.counter("dist.context_parts").incr();
            }
            let merge_span = epoch_span.child("dist.merge");
            let ctx = assemble_context(
                num_clients,
                &parts,
                self.ledger.remaining(),
                self.config.min_participants,
                self.config.env.seed,
            );
            drop(merge_span);
            let Some(ctx) = ctx else {
                // Nobody available anywhere: the epoch passes untrained,
                // exactly like the reference run.
                records.push(SelectionRecord { epoch, cohort: Vec::new(), iterations: 0 });
                self.telemetry.emit("dist.epoch_skipped", vec![("epoch", Value::from(epoch))]);
                continue;
            };
            let decision = self.policy.select(&ctx);
            let (cohort, iterations) =
                sanitize_decision(&ctx, decision.cohort, decision.iterations);
            let replies =
                self.gather("dist.train", epoch, parent, &|shard| Message::ShardTrain {
                    epoch,
                    members: members_in(shard, &cohort),
                    iterations,
                    trace,
                })?;
            let merge_span = epoch_span.child("dist.merge");
            let mut latencies = Vec::with_capacity(cohort.len());
            let mut costs = Vec::with_capacity(cohort.len());
            let mut eta_hats = Vec::with_capacity(cohort.len());
            let mut grad_dot_delta = Vec::with_capacity(cohort.len());
            let mut local_losses = Vec::with_capacity(cohort.len());
            for (i, reply) in replies.into_iter().enumerate() {
                let expected = members_in(&self.workers[i].shard, &cohort);
                let part = self.bad_reply(parse_train_part(i, epoch, &expected, reply))?;
                latencies.extend(part.per_client_iter_latency);
                costs.extend(part.costs);
                eta_hats.extend(part.eta_hats);
                grad_dot_delta.extend(part.grad_dot_delta);
                local_losses.extend(part.local_losses);
                self.telemetry.counter("dist.train_parts").incr();
            }
            let synth = combine_feedback(
                epoch,
                iterations,
                latencies,
                &costs,
                eta_hats,
                grad_dot_delta,
                local_losses,
            );
            drop(merge_span);
            self.ledger.charge(synth.cost);
            self.policy.observe(&ctx, &synth.to_report(epoch, &cohort, iterations));
            self.telemetry.counter("dist.selections").incr();
            self.telemetry.emit(
                "dist.epoch",
                vec![
                    ("epoch", Value::from(epoch)),
                    ("cohort_size", Value::from(cohort.len())),
                    ("iterations", Value::from(iterations)),
                    ("cost", Value::Float(synth.cost)),
                    ("remaining", Value::Float(self.ledger.remaining())),
                ],
            );
            records.push(SelectionRecord { epoch, cohort, iterations });
        }
        let elapsed_secs = started.elapsed().as_secs_f64();
        Ok(DistReport {
            selections: records,
            clients: num_clients,
            workers: self.workers.len(),
            elapsed_secs,
            done,
            recoveries: self.recoveries,
        })
    }

    /// Best-effort shutdown of worker `i` (spawned workers exit their
    /// accept loop); link failures are ignored.
    pub fn shutdown_worker(&mut self, i: usize) {
        let _ = self.rpc(i, &Message::Shutdown);
    }
}

/// Decoded per-member training feedback columns.
struct TrainPart {
    per_client_iter_latency: Vec<f64>,
    costs: Vec<f64>,
    eta_hats: Vec<f32>,
    grad_dot_delta: Vec<f32>,
    local_losses: Vec<f32>,
}

fn parse_context_part(
    i: usize,
    shard: &Range<usize>,
    epoch: usize,
    reply: Message,
) -> Result<ContextPart, String> {
    match reply {
        Message::ShardContextPart {
            epoch: got,
            available,
            costs,
            latency_hint,
            true_latency,
            data_volumes,
        } => {
            if got != epoch {
                return Err(format!("worker {i} answered epoch {got}, asked for {epoch}"));
            }
            let k = available.len();
            if [costs.len(), latency_hint.len(), true_latency.len(), data_volumes.len()]
                .iter()
                .any(|&n| n != k)
            {
                return Err(format!("worker {i} returned misaligned context columns"));
            }
            let ordered = available.windows(2).all(|w| w[0] < w[1]);
            let in_shard = available.iter().all(|id| shard.contains(id));
            if !ordered || !in_shard {
                return Err(format!(
                    "worker {i} returned ids outside its shard {}..{} or out of order",
                    shard.start, shard.end
                ));
            }
            if !costs.iter().chain(&latency_hint).chain(&true_latency).all(|v| v.is_finite()) {
                return Err(format!("worker {i} returned non-finite context columns"));
            }
            Ok(ContextPart { epoch, available, costs, latency_hint, true_latency, data_volumes })
        }
        Message::Error { code, detail } => {
            Err(format!("worker {i} refused the context request ({code}): {detail}"))
        }
        other => Err(format!("worker {i} answered the context request with {other:?}")),
    }
}

fn parse_train_part(
    i: usize,
    epoch: usize,
    expected_members: &[usize],
    reply: Message,
) -> Result<TrainPart, String> {
    match reply {
        Message::ShardTrainPart {
            epoch: got,
            members,
            per_client_iter_latency,
            costs,
            eta_hats,
            grad_dot_delta,
            local_losses,
        } => {
            if got != epoch {
                return Err(format!("worker {i} answered epoch {got}, asked for {epoch}"));
            }
            if members != expected_members {
                return Err(format!("worker {i} echoed a different member list"));
            }
            let k = members.len();
            if [
                per_client_iter_latency.len(),
                costs.len(),
                eta_hats.len(),
                grad_dot_delta.len(),
                local_losses.len(),
            ]
            .iter()
            .any(|&n| n != k)
            {
                return Err(format!("worker {i} returned misaligned feedback columns"));
            }
            // The merged columns flow straight into the ledger (panics
            // on NaN charges) and the policy; refuse poisoned feedback
            // with an error instead.
            let finite = per_client_iter_latency.iter().all(|v| v.is_finite() && *v >= 0.0)
                && costs.iter().all(|v| v.is_finite() && *v >= 0.0)
                && eta_hats.iter().all(|v| v.is_finite())
                && grad_dot_delta.iter().all(|v| v.is_finite())
                && local_losses.iter().all(|v| v.is_finite());
            if !finite {
                return Err(format!("worker {i} returned non-finite training feedback"));
            }
            Ok(TrainPart { per_client_iter_latency, costs, eta_hats, grad_dot_delta, local_losses })
        }
        Message::Error { code, detail } => {
            Err(format!("worker {i} refused the train request ({code}): {detail}"))
        }
        other => Err(format!("worker {i} answered the train request with {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::shard_ranges;
    use fedl_core::policy::PolicyKind;
    use fedl_serve::reference_run;

    fn local_workers(config: &ServeConfig, count: usize) -> Vec<ShardWorker> {
        shard_ranges(config.env.num_clients, count)
            .into_iter()
            .map(|shard| ShardWorker {
                shard,
                link: Box::new(LocalWorkerLink::new(WorkerState::new(Telemetry::disabled()))),
            })
            .collect()
    }

    #[test]
    fn bad_shard_layouts_are_refused() {
        let config = ServeConfig::new(30, 7, 100.0, 3, PolicyKind::FedL);
        let cases: Vec<Vec<Range<usize>>> = vec![
            vec![],
            vec![0..10, 12..30],
            vec![0..10, 10..10, 10..30],
            vec![5..30],
            vec![0..10, 10..29],
        ];
        for shards in cases {
            let workers: Vec<ShardWorker> = shards
                .into_iter()
                .map(|shard| ShardWorker {
                    shard,
                    link: Box::new(LocalWorkerLink::new(WorkerState::new(Telemetry::disabled()))),
                })
                .collect();
            assert!(Coordinator::new(config.clone(), workers, Telemetry::disabled()).is_err());
        }
    }

    #[test]
    fn in_process_sharded_run_matches_the_reference() {
        let config = ServeConfig::new(45, 13, 350.0, 4, PolicyKind::FedL);
        let reference = reference_run(&config, 6);
        let workers = local_workers(&config, 3);
        let mut coordinator =
            Coordinator::new(config.clone(), workers, Telemetry::disabled()).unwrap();
        let report =
            coordinator.run(&DistOptions { epochs: 6, ..Default::default() }).expect("run");
        assert_eq!(report.selections, reference);
        assert_eq!(report.recoveries, 0);
        assert!(report.selections.iter().any(|r| !r.cohort.is_empty()));
    }

    /// Replies with a context part for the wrong epoch — structurally
    /// valid, semantically mismatched — and refuses resets so the run
    /// aborts after counting the bad reply.
    struct WrongEpochLink {
        inner: LocalWorkerLink,
    }

    impl WorkerLink for WrongEpochLink {
        fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
            let shifted = match msg.clone() {
                Message::ShardContext { epoch, trace } => {
                    Message::ShardContext { epoch: epoch + 1, trace }
                }
                other => other,
            };
            self.inner.send(&shifted)
        }

        fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
            self.inner.recv_reply()
        }

        fn reset(&mut self) -> Result<(), String> {
            Err("no recovery in this test".to_string())
        }
    }

    #[test]
    fn mismatched_shard_replies_are_counted_and_emitted() {
        let config = ServeConfig::new(30, 7, 100.0, 3, PolicyKind::FedL);
        let (telemetry, sink) = Telemetry::in_memory();
        let mut workers = local_workers(&config, 2);
        workers[1] = ShardWorker {
            shard: workers[1].shard.clone(),
            link: Box::new(WrongEpochLink {
                inner: LocalWorkerLink::new(WorkerState::new(Telemetry::disabled())),
            }),
        };
        let mut coordinator = Coordinator::new(config, workers, telemetry.clone()).unwrap();
        let err = coordinator
            .run(&DistOptions { epochs: 3, max_resets: 1 })
            .expect_err("a persistently mismatched reply must abort the run");
        assert!(err.contains("epoch"), "error should describe the mismatch: {err}");
        assert!(
            telemetry.registry_snapshot().to_json().contains("\"dist.bad_replies\""),
            "the counter must appear in the live-stats snapshot"
        );
        assert!(
            sink.lines().iter().any(|l| l.contains("\"dist.bad_reply\"")),
            "the event must appear in the run log for telemetry-report --require"
        );
    }
}
