//! Shard geometry: how a population of `M` clients is split across
//! `W` workers.
//!
//! Shards are contiguous, ascending, and cover `0..M` exactly; because
//! cohorts are sorted ascending, concatenating per-shard results in
//! shard order reproduces the global client order with no re-sorting —
//! the property every merge in the coordinator leans on.

use std::ops::Range;

/// Splits `0..num_clients` into `workers` contiguous shards of
/// near-equal size (the first `num_clients % workers` shards take one
/// extra client). Shards are returned in ascending order and cover the
/// population exactly.
///
/// # Panics
/// Panics when `workers` is zero or exceeds `num_clients` (an empty
/// shard would serve no purpose and complicates the merge invariants).
pub fn shard_ranges(num_clients: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers > 0, "at least one worker is required");
    assert!(workers <= num_clients, "more workers ({workers}) than clients ({num_clients})");
    let base = num_clients / workers;
    let extra = num_clients % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, num_clients);
    out
}

/// The cohort members that fall inside `shard`, preserving order.
/// Cohorts are ascending, so per-shard slices concatenated in shard
/// order rebuild the cohort exactly.
pub fn members_in(shard: &Range<usize>, cohort: &[usize]) -> Vec<usize> {
    cohort.iter().copied().filter(|k| shard.contains(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_contiguous_cover_everything_and_balance() {
        for (m, w) in [(10, 1), (10, 3), (100, 7), (5, 5), (1_000_003, 16)] {
            let shards = shard_ranges(m, w);
            assert_eq!(shards.len(), w);
            assert_eq!(shards[0].start, 0);
            assert_eq!(shards[w - 1].end, m);
            for pair in shards.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous ({m}, {w})");
            }
            let sizes: Vec<usize> = shards.iter().map(|r| r.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "near-equal split ({m}, {w}): {sizes:?}");
            assert!(sizes.iter().all(|&s| s > 0));
        }
    }

    #[test]
    #[should_panic(expected = "more workers")]
    fn more_workers_than_clients_is_refused() {
        shard_ranges(3, 4);
    }

    #[test]
    fn shard_slices_concatenate_back_to_the_cohort() {
        let cohort = vec![1, 4, 5, 9, 12, 17, 19];
        let shards = shard_ranges(20, 3);
        let mut rebuilt = Vec::new();
        for shard in &shards {
            rebuilt.extend(members_in(shard, &cohort));
        }
        assert_eq!(rebuilt, cohort);
    }
}
