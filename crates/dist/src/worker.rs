//! The shard worker: a pure function of `(config, shard, epoch)`
//! behind the framed protocol.
//!
//! A worker owns one contiguous shard of the client population. On
//! [`Message::ShardAssign`] it builds the columnar population and
//! answers every subsequent [`Message::ShardContext`] /
//! [`Message::ShardTrain`] by realizing only its shard
//! ([`ClientColumns::epoch_columns_partial`]) — no policy, no ledger,
//! no epoch cursor. Statelessness is the whole fault-tolerance story:
//! a killed worker can be respawned and re-asked for any epoch's
//! partials and must produce the identical bytes, which is what lets
//! the coordinator recover mid-epoch without drift (docs/DIST.md).
//!
//! The only disk state is an S12-style shard checkpoint envelope
//! recording `(fingerprint, shard bounds, epochs served)`; a respawned
//! worker started with `--resume` refuses a [`Message::ShardAssign`]
//! that names a different deployment or shard, so an operator can never
//! silently splice a worker into the wrong federation.

use std::ops::Range;
use std::path::{Path, PathBuf};

use fedl_core::columnar::{nominal_latency, scale_context_part};
use fedl_json::{obj, read_field, Value};
use fedl_net::{ChannelModel, LatencyModel};
use fedl_serve::cli::parse_policy;
use fedl_serve::proto::{
    decode_frame_traced, encode_frame, encode_frame_traced, version_accepted, Message,
    ProtocolError, Trace, PROTOCOL_VERSION,
};
use fedl_serve::transport::FrameTransport;
use fedl_serve::{synth_learning_signals, Control, ServeConfig, ServeExit};
use fedl_sim::{ClientColumns, EpochColumns, EpochRealizeScratch};
use fedl_store::{read_envelope, write_envelope};
use fedl_telemetry::Telemetry;

/// Envelope kind of a worker's shard checkpoint file.
pub const DIST_SHARD_CHECKPOINT_KIND: &str = "dist-shard-checkpoint";

/// Version of the shard checkpoint payload layout.
pub const DIST_SHARD_SCHEMA_VERSION: u32 = 1;

/// What a shard checkpoint records: enough to pin a respawned worker
/// to the deployment and shard it served before dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// [`ServeConfig::fingerprint`] of the assigned deployment.
    pub fingerprint: String,
    /// First owned client id (inclusive).
    pub shard_start: usize,
    /// One past the last owned client id (exclusive).
    pub shard_end: usize,
    /// Highest `epoch + 1` this worker has computed partials for.
    pub epochs_served: usize,
}

impl ShardCheckpoint {
    fn to_payload(&self) -> Value {
        obj(vec![
            ("schema_version", Value::from(DIST_SHARD_SCHEMA_VERSION as usize)),
            ("fingerprint", Value::from(self.fingerprint.as_str())),
            ("shard_start", Value::from(self.shard_start)),
            ("shard_end", Value::from(self.shard_end)),
            ("epochs_served", Value::from(self.epochs_served)),
        ])
    }

    fn from_payload(payload: &Value) -> Result<Self, String> {
        let version: usize = read_field(payload, "schema_version").map_err(|e| e.to_string())?;
        if version != DIST_SHARD_SCHEMA_VERSION as usize {
            return Err(format!(
                "shard checkpoint schema v{version} unsupported \
                 (this build reads v{DIST_SHARD_SCHEMA_VERSION})"
            ));
        }
        Ok(Self {
            fingerprint: read_field(payload, "fingerprint").map_err(|e| e.to_string())?,
            shard_start: read_field(payload, "shard_start").map_err(|e| e.to_string())?,
            shard_end: read_field(payload, "shard_end").map_err(|e| e.to_string())?,
            epochs_served: read_field(payload, "epochs_served").map_err(|e| e.to_string())?,
        })
    }
}

/// A live shard assignment: the deployment plus the built population.
struct Assignment {
    config: ServeConfig,
    channel: ChannelModel,
    latency: LatencyModel,
    cols: ClientColumns,
    shard: Range<usize>,
    fingerprint: String,
    epochs_served: usize,
    /// Reusable epoch-realization buffers: context frames realize two
    /// epochs and train frames one, so steady state refills these in
    /// place instead of allocating full-length columns per frame.
    /// Runtime-only — the shard checkpoint never records them.
    realize: EpochRealizeScratch,
    now: EpochColumns,
    hint: EpochColumns,
}

/// The worker's event-loop state; [`Self::handle_frame`] is the entire
/// loop body, mirroring `fedl_serve::ServerState`.
pub struct WorkerState {
    assignment: Option<Assignment>,
    checkpoint: Option<PathBuf>,
    expected: Option<ShardCheckpoint>,
    telemetry: Telemetry,
}

impl WorkerState {
    /// A fresh, unassigned worker.
    pub fn new(telemetry: Telemetry) -> Self {
        Self { assignment: None, checkpoint: None, expected: None, telemetry }
    }

    /// Enables shard checkpointing: the `(fingerprint, shard, epochs)`
    /// envelope lands in `path` after every handled shard request.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// A respawned worker: loads the shard checkpoint at `path` and
    /// holds every future [`Message::ShardAssign`] to it — a mismatched
    /// fingerprint or shard is refused with a typed error instead of
    /// silently serving the wrong deployment. Checkpointing continues
    /// into the same path.
    pub fn resume(telemetry: Telemetry, path: &Path) -> Result<Self, String> {
        let payload = read_envelope(path, DIST_SHARD_CHECKPOINT_KIND)
            .map_err(|e| format!("cannot read shard checkpoint {}: {e}", path.display()))?;
        let expected = ShardCheckpoint::from_payload(&payload)?;
        telemetry.emit(
            "dist.worker_resumed",
            vec![
                ("path", Value::from(path.display().to_string())),
                ("shard_start", Value::from(expected.shard_start)),
                ("shard_end", Value::from(expected.shard_end)),
                ("epochs_served", Value::from(expected.epochs_served)),
            ],
        );
        Ok(Self {
            assignment: None,
            checkpoint: Some(path.to_path_buf()),
            expected: Some(expected),
            telemetry,
        })
    }

    /// The assigned shard, if any.
    pub fn shard(&self) -> Option<Range<usize>> {
        self.assignment.as_ref().map(|a| a.shard.clone())
    }

    fn save_checkpoint(&self) {
        let (Some(path), Some(a)) = (&self.checkpoint, &self.assignment) else { return };
        let record = ShardCheckpoint {
            fingerprint: a.fingerprint.clone(),
            shard_start: a.shard.start,
            shard_end: a.shard.end,
            epochs_served: a.epochs_served,
        };
        if let Err(e) = write_envelope(path, DIST_SHARD_CHECKPOINT_KIND, &record.to_payload()) {
            eprintln!("fedl-dist worker: shard checkpoint failed: {e}");
        }
    }

    /// Opens a shard-request span under the coordinator's epoch span
    /// when the request carried a trace context; a missing context
    /// (v2 peer, tracing disabled) still gets a local span, and a
    /// malformed one is counted, dropped, and never refuses the
    /// request — trace fields are observability metadata only.
    fn adopt_span(&self, name: &'static str, epoch: usize, trace: Trace) -> fedl_telemetry::Span {
        if trace == Trace::Invalid {
            self.telemetry.counter("proto.bad_trace_ids").incr();
        }
        let mut span = self.telemetry.span_in(name, trace.to_context());
        span.field("epoch", Value::from(epoch));
        span
    }

    fn note_malformed(&mut self, err: &ProtocolError) {
        self.telemetry.counter("dist.worker_malformed_frames").incr();
        self.telemetry.emit(
            "dist.worker_malformed_frame",
            vec![("code", Value::from(err.code())), ("detail", Value::from(err.to_string()))],
        );
    }

    fn refuse(&mut self, err: ProtocolError) -> (Message, Control) {
        self.note_malformed(&err);
        (err.to_wire(), Control::Continue)
    }

    /// Handles one raw frame: decode, dispatch, encode the reply.
    ///
    /// Besides the `proto.*` wire histograms recorded by the traced
    /// codec, every frame leaves a `dist.worker_frame` event carrying
    /// its type, sizes, and per-direction codec nanoseconds — the raw
    /// material for the trace report's wire-time attribution.
    pub fn handle_frame(&mut self, frame: &[u8]) -> (Vec<u8>, Control) {
        let (decoded, decode_ns) = decode_frame_traced(frame, &self.telemetry);
        let (reply, control, kind, epoch) = match decoded {
            Ok(msg) => {
                let kind = type_name(&msg);
                let epoch = frame_epoch(&msg);
                let (reply, control) = self.handle_message(msg);
                (reply, control, kind, epoch)
            }
            Err(err) => {
                self.note_malformed(&err);
                (err.to_wire(), Control::Continue, "Malformed", None)
            }
        };
        let (bytes, encode_ns) = encode_frame_traced(&reply, &self.telemetry);
        let mut fields = vec![
            ("type", Value::from(kind)),
            ("bytes_in", Value::from(frame.len())),
            ("bytes_out", Value::from(bytes.len())),
            ("decode_ns", Value::Int(decode_ns as i64)),
            ("encode_ns", Value::Int(encode_ns as i64)),
        ];
        if let Some(epoch) = epoch {
            fields.push(("epoch", Value::from(epoch)));
        }
        self.telemetry.emit("dist.worker_frame", fields);
        (bytes, control)
    }

    /// Applies one decoded message; the returned message is the reply.
    pub fn handle_message(&mut self, msg: Message) -> (Message, Control) {
        match msg {
            Message::Hello { protocol_version, node: _ } => {
                if !version_accepted(protocol_version) {
                    let err =
                        ProtocolError::Version { ours: PROTOCOL_VERSION, theirs: protocol_version };
                    return self.refuse(err);
                }
                (
                    Message::Hello {
                        protocol_version: PROTOCOL_VERSION,
                        node: "fedl-dist-worker".to_string(),
                    },
                    Control::Continue,
                )
            }
            Message::ShardAssign {
                clients,
                seed,
                budget,
                min_participants,
                policy,
                shard_start,
                shard_end,
            } => self.handle_assign(
                clients,
                seed,
                budget,
                min_participants,
                &policy,
                shard_start,
                shard_end,
            ),
            Message::ShardContext { epoch, trace } => self.handle_context(epoch, trace),
            Message::ShardTrain { epoch, members, iterations: _, trace } => {
                self.handle_train(epoch, members, trace)
            }
            Message::Stats => {
                self.telemetry.counter("dist.worker_stats_requests").incr();
                (
                    Message::StatsSnapshot { registry: self.telemetry.registry_snapshot() },
                    Control::Continue,
                )
            }
            Message::Shutdown => {
                self.save_checkpoint();
                self.telemetry.emit(
                    "dist.worker_shutdown",
                    vec![(
                        "epochs_served",
                        Value::from(self.assignment.as_ref().map_or(0, |a| a.epochs_served)),
                    )],
                );
                self.telemetry.emit_metrics();
                self.telemetry.flush();
                (
                    Message::Hello {
                        protocol_version: PROTOCOL_VERSION,
                        node: "fedl-dist-worker".to_string(),
                    },
                    Control::Shutdown,
                )
            }
            // Everything else belongs to the federation server's
            // protocol, not a shard worker.
            other => {
                let err = ProtocolError::UnexpectedMessage {
                    detail: format!(
                        "a dist worker serves only shard messages, got {:?}",
                        type_name(&other)
                    ),
                };
                self.refuse(err)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_assign(
        &mut self,
        clients: usize,
        seed: u64,
        budget: f64,
        min_participants: usize,
        policy: &str,
        shard_start: usize,
        shard_end: usize,
    ) -> (Message, Control) {
        if clients == 0 || shard_start > shard_end || shard_end > clients {
            let err = ProtocolError::Schema {
                detail: format!(
                    "shard {shard_start}..{shard_end} is not a sub-range of 0..{clients}"
                ),
            };
            return self.refuse(err);
        }
        let policy = match parse_policy(policy) {
            Ok(kind) => kind,
            Err(detail) => return self.refuse(ProtocolError::Schema { detail }),
        };
        let config = ServeConfig::new(clients, seed, budget, min_participants, policy);
        let fingerprint = config.fingerprint();
        let mut epochs_served = 0;
        if let Some(expected) = &self.expected {
            if expected.fingerprint != fingerprint
                || expected.shard_start != shard_start
                || expected.shard_end != shard_end
            {
                let err = ProtocolError::Schema {
                    detail: format!(
                        "assignment does not match the resumed shard checkpoint \
                         (expected shard {}..{} of deployment {}, got {shard_start}..{shard_end} \
                         of {fingerprint})",
                        expected.shard_start, expected.shard_end, expected.fingerprint
                    ),
                };
                return self.refuse(err);
            }
            epochs_served = expected.epochs_served;
        }
        // A re-handshake for the assignment we already hold (coordinator
        // reconnect, recovery retry) reuses the built population — the
        // columns are a pure function of the config, so rebuilding could
        // only waste time, never change bits.
        if let Some(a) = &self.assignment {
            if a.fingerprint == fingerprint && a.shard == (shard_start..shard_end) {
                return (
                    Message::ShardReady { shard_start, shard_end, fingerprint },
                    Control::Continue,
                );
            }
        }
        let channel = ChannelModel::default();
        let latency = config.latency_model();
        let cols = ClientColumns::build(&config.env, &channel);
        self.telemetry.emit(
            "dist.worker_assigned",
            vec![
                ("clients", Value::from(clients)),
                ("shard_start", Value::from(shard_start)),
                ("shard_end", Value::from(shard_end)),
                ("policy", Value::from(config.policy.label())),
            ],
        );
        self.assignment = Some(Assignment {
            config,
            channel,
            latency,
            cols,
            shard: shard_start..shard_end,
            fingerprint: fingerprint.clone(),
            epochs_served,
            realize: EpochRealizeScratch::new(),
            now: EpochColumns::default(),
            hint: EpochColumns::default(),
        });
        self.save_checkpoint();
        (Message::ShardReady { shard_start, shard_end, fingerprint }, Control::Continue)
    }

    fn handle_context(&mut self, epoch: usize, trace: Trace) -> (Message, Control) {
        let span = self.adopt_span("dist.worker_context", epoch, trace);
        let Some(a) = self.assignment.as_mut() else {
            drop(span);
            return self.refuse(ProtocolError::UnexpectedMessage {
                detail: format!("ShardContext for epoch {epoch} before any ShardAssign"),
            });
        };
        a.cols.epoch_columns_partial_into(
            epoch,
            &a.config.env,
            &a.channel,
            a.shard.clone(),
            &mut a.realize,
            &mut a.now,
        );
        // 0-lookahead hints from the previous epoch's realization
        // (epoch 0 hints from its own — re-realized rather than cloned,
        // identical bits either way), exactly like `select_for_epoch`.
        a.cols.epoch_columns_partial_into(
            epoch.saturating_sub(1),
            &a.config.env,
            &a.channel,
            a.shard.clone(),
            &mut a.realize,
            &mut a.hint,
        );
        let part = scale_context_part(
            &a.cols,
            &a.hint,
            &a.now,
            &a.latency,
            a.config.min_participants,
            a.shard.clone(),
        );
        a.epochs_served = a.epochs_served.max(epoch + 1);
        drop(span);
        self.telemetry.counter("dist.worker_context_parts").incr();
        self.save_checkpoint();
        (
            Message::ShardContextPart {
                epoch: part.epoch,
                available: part.available,
                costs: part.costs,
                latency_hint: part.latency_hint,
                true_latency: part.true_latency,
                data_volumes: part.data_volumes,
            },
            Control::Continue,
        )
    }

    fn handle_train(
        &mut self,
        epoch: usize,
        members: Vec<usize>,
        trace: Trace,
    ) -> (Message, Control) {
        let span = self.adopt_span("dist.worker_train", epoch, trace);
        let Some(a) = self.assignment.as_mut() else {
            drop(span);
            return self.refuse(ProtocolError::UnexpectedMessage {
                detail: format!("ShardTrain for epoch {epoch} before any ShardAssign"),
            });
        };
        if let Some(&bad) = members.iter().find(|&&k| !a.shard.contains(&k)) {
            let (start, end) = (a.shard.start, a.shard.end);
            drop(span);
            return self.refuse(ProtocolError::Schema {
                detail: format!(
                    "cohort member {bad} is outside this worker's shard {start}..{end}"
                ),
            });
        }
        a.cols.epoch_columns_partial_into(
            epoch,
            &a.config.env,
            &a.channel,
            a.shard.clone(),
            &mut a.realize,
            &mut a.now,
        );
        let now = &a.now;
        let share = a.config.min_participants.max(1);
        let per_client_iter_latency = nominal_latency(&a.cols, now, &a.latency, share, &members);
        let costs: Vec<f64> = members.iter().map(|&k| now.cost[k]).collect();
        let mut eta_hats = Vec::with_capacity(members.len());
        let mut grad_dot_delta = Vec::with_capacity(members.len());
        let mut local_losses = Vec::with_capacity(members.len());
        for &k in &members {
            let (eta, grad, loss) = synth_learning_signals(a.cols.seed[k], epoch);
            eta_hats.push(eta);
            grad_dot_delta.push(grad);
            local_losses.push(loss);
        }
        a.epochs_served = a.epochs_served.max(epoch + 1);
        drop(span);
        self.telemetry.counter("dist.worker_train_parts").incr();
        self.save_checkpoint();
        (
            Message::ShardTrainPart {
                epoch,
                members,
                per_client_iter_latency,
                costs,
                eta_hats,
                grad_dot_delta,
                local_losses,
            },
            Control::Continue,
        )
    }
}

fn type_name(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "Hello",
        Message::ClientJoin { .. } => "ClientJoin",
        Message::ClientLeave { .. } => "ClientLeave",
        Message::SelectCohort { .. } => "SelectCohort",
        Message::Cohort { .. } => "Cohort",
        Message::TrainResult { .. } => "TrainResult",
        Message::Snapshot { .. } => "Snapshot",
        Message::Shutdown => "Shutdown",
        Message::ShardAssign { .. } => "ShardAssign",
        Message::ShardReady { .. } => "ShardReady",
        Message::ShardContext { .. } => "ShardContext",
        Message::ShardContextPart { .. } => "ShardContextPart",
        Message::ShardTrain { .. } => "ShardTrain",
        Message::ShardTrainPart { .. } => "ShardTrainPart",
        Message::Stats => "Stats",
        Message::StatsSnapshot { .. } => "StatsSnapshot",
        Message::Error { .. } => "Error",
    }
}

/// The epoch a message is about, when it names one — used to tag
/// per-frame wire events so codec time can be charged to an epoch.
fn frame_epoch(msg: &Message) -> Option<usize> {
    match msg {
        Message::SelectCohort { epoch, .. }
        | Message::Cohort { epoch, .. }
        | Message::TrainResult { epoch, .. }
        | Message::ShardContext { epoch, .. }
        | Message::ShardContextPart { epoch, .. }
        | Message::ShardTrain { epoch, .. }
        | Message::ShardTrainPart { epoch, .. } => Some(*epoch),
        _ => None,
    }
}

/// Serves one coordinator connection until shutdown, clean close, or a
/// framing error (reported to the peer best-effort, then surfaced).
pub fn run_worker(
    transport: &mut dyn FrameTransport,
    state: &mut WorkerState,
) -> Result<ServeExit, ProtocolError> {
    loop {
        match transport.recv() {
            Ok(Some(frame)) => {
                let (reply, control) = state.handle_frame(&frame);
                transport.send(&reply)?;
                if control == Control::Shutdown {
                    return Ok(ServeExit::Shutdown);
                }
            }
            Ok(None) => return Ok(ServeExit::PeerClosed),
            Err(err) => {
                state.note_malformed(&err);
                let _ = transport.send(&encode_frame(&err.to_wire()));
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_core::policy::PolicyKind;

    fn assign_msg(clients: usize, seed: u64, shard: Range<usize>) -> Message {
        Message::ShardAssign {
            clients,
            seed,
            budget: 300.0,
            min_participants: 3,
            policy: "fedl".to_string(),
            shard_start: shard.start,
            shard_end: shard.end,
        }
    }

    #[test]
    fn assigned_worker_serves_partials_matching_direct_computation() {
        let mut w = WorkerState::new(Telemetry::disabled());
        let (reply, _) = w.handle_message(assign_msg(50, 19, 10..30));
        let config = ServeConfig::new(50, 19, 300.0, 3, PolicyKind::FedL);
        match reply {
            Message::ShardReady { shard_start: 10, shard_end: 30, fingerprint } => {
                assert_eq!(fingerprint, config.fingerprint());
            }
            other => panic!("expected ShardReady, got {other:?}"),
        }
        // Context partial == direct columnar computation, bit-for-bit.
        let channel = ChannelModel::default();
        let latency = config.latency_model();
        let cols = ClientColumns::build(&config.env, &channel);
        let epoch = 4;
        let now = cols.epoch_columns_partial(epoch, &config.env, &channel, 10..30);
        let hint = cols.epoch_columns_partial(epoch - 1, &config.env, &channel, 10..30);
        let want = scale_context_part(&cols, &hint, &now, &latency, 3, 10..30);
        let (reply, _) = w.handle_message(Message::ShardContext { epoch, trace: Trace::Absent });
        match reply {
            Message::ShardContextPart { epoch: e, available, costs, true_latency, .. } => {
                assert_eq!(e, epoch);
                assert_eq!(available, want.available);
                assert_eq!(costs, want.costs);
                assert_eq!(true_latency, want.true_latency);
            }
            other => panic!("expected ShardContextPart, got {other:?}"),
        }
        // Train partial == direct latency/cost/signal computation.
        let members: Vec<usize> = now.available_ids().into_iter().take(4).collect();
        assert!(!members.is_empty(), "shard 10..30 should have available clients at epoch 4");
        let want_lat = nominal_latency(&cols, &now, &latency, 3, &members);
        let (reply, _) = w.handle_message(Message::ShardTrain {
            epoch,
            members: members.clone(),
            iterations: 5,
            trace: Trace::Absent,
        });
        match reply {
            Message::ShardTrainPart {
                members: got,
                per_client_iter_latency,
                costs,
                eta_hats,
                ..
            } => {
                assert_eq!(got, members);
                assert_eq!(per_client_iter_latency, want_lat);
                for (slot, &k) in members.iter().enumerate() {
                    assert_eq!(costs[slot].to_bits(), now.cost[k].to_bits());
                    let (eta, _, _) = synth_learning_signals(cols.seed[k], epoch);
                    assert_eq!(eta_hats[slot], eta);
                }
            }
            other => panic!("expected ShardTrainPart, got {other:?}"),
        }
    }

    #[test]
    fn misuse_is_refused_with_typed_errors_never_panics() {
        let mut w = WorkerState::new(Telemetry::disabled());
        let expect_code = |reply: Message, want: &str| match reply {
            Message::Error { code, .. } => assert_eq!(code, want),
            other => panic!("expected a wire error, got {other:?}"),
        };
        // Shard requests before assignment.
        let (reply, _) = w.handle_message(Message::ShardContext { epoch: 0, trace: Trace::Absent });
        expect_code(reply, "unexpected-message");
        let (reply, _) = w.handle_message(Message::ShardTrain {
            epoch: 0,
            members: vec![1],
            iterations: 1,
            trace: Trace::Absent,
        });
        expect_code(reply, "unexpected-message");
        // Federation-server messages sent at a worker.
        let (reply, _) = w.handle_message(Message::ClientJoin { client: 3 });
        expect_code(reply, "unexpected-message");
        // Degenerate shard bounds and unknown policy labels.
        let (reply, _) = w.handle_message(assign_msg(10, 7, 4..20));
        expect_code(reply, "schema");
        let (reply, _) = w.handle_message(Message::ShardAssign {
            clients: 10,
            seed: 7,
            budget: 10.0,
            min_participants: 2,
            policy: "magic".to_string(),
            shard_start: 0,
            shard_end: 10,
        });
        expect_code(reply, "schema");
        // Version skew.
        let (reply, _) = w.handle_message(Message::Hello {
            protocol_version: PROTOCOL_VERSION + 1,
            node: "old".to_string(),
        });
        expect_code(reply, "version");
        // Out-of-shard cohort members.
        w.handle_message(assign_msg(20, 7, 0..10));
        let (reply, _) = w.handle_message(Message::ShardTrain {
            epoch: 0,
            members: vec![15],
            iterations: 1,
            trace: Trace::Absent,
        });
        expect_code(reply, "schema");
    }

    #[test]
    fn resumed_worker_pins_the_assignment_to_its_checkpoint() {
        let dir = std::env::temp_dir().join("fedl_dist_worker_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("shard_guard.fedlstore");
        std::fs::remove_file(&ckpt).ok();
        let mut w = WorkerState::new(Telemetry::disabled()).with_checkpoint(&ckpt);
        let (reply, _) = w.handle_message(assign_msg(40, 13, 0..20));
        assert!(matches!(reply, Message::ShardReady { .. }));
        w.handle_message(Message::ShardContext { epoch: 0, trace: Trace::Absent });
        assert!(ckpt.exists(), "assignment and served epochs must checkpoint");
        // Respawn: the same assignment is accepted...
        let mut respawned = WorkerState::resume(Telemetry::disabled(), &ckpt).unwrap();
        let (reply, _) = respawned.handle_message(assign_msg(40, 13, 0..20));
        assert!(matches!(reply, Message::ShardReady { .. }));
        // ...a different deployment (seed) or shard is refused.
        let mut respawned = WorkerState::resume(Telemetry::disabled(), &ckpt).unwrap();
        let (reply, _) = respawned.handle_message(assign_msg(40, 14, 0..20));
        assert!(matches!(reply, Message::Error { ref code, .. } if code == "schema"));
        let (reply, _) = respawned.handle_message(assign_msg(40, 13, 0..21));
        assert!(matches!(reply, Message::Error { ref code, .. } if code == "schema"));
        std::fs::remove_file(&ckpt).ok();
    }
}
