//! Command-line drivers behind `experiments dist` and
//! `experiments dist-worker` (the bench binary routes both subcommands
//! here; see docs/DIST.md for usage).

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use fedl_serve::cli::parse_policy;
use fedl_serve::proto::{
    decode_frame_traced, encode_frame, encode_frame_traced, Message, ProtocolError,
    PROTOCOL_VERSION,
};
use fedl_serve::transport::{FrameTransport, TcpTransport};
use fedl_serve::{reference_run, SelectionRecord, ServeConfig, ServeExit};
use fedl_telemetry::Telemetry;

use crate::coordinator::{Coordinator, DistOptions, ShardWorker, WorkerLink};
use crate::shard::shard_ranges;
use crate::worker::{run_worker, WorkerState};

/// Usage text for both subcommands.
pub const USAGE: &str = "\
experiments dist [options]                        run a sharded federation
experiments dist-worker --addr HOST:PORT [opts]   serve one population shard

shared scenario options (every node must agree):
  --clients N             population size (default 100)
  --seed S                scenario seed (default 7)
  --budget C              total rental budget (default 500)
  --min-participants N    participation floor per epoch (default 3)
  --policy P              fedl | fedavg | fedcs | powd | oracle (default fedl)

dist options:
  --workers N             local worker processes to spawn (default 2);
                          0 with no --worker-addr runs the in-process
                          reference instead (the CI comparison artifact)
  --worker-addr HOST:PORT a pre-started remote worker (repeatable;
                          remote shards come after the spawned ones)
  --epochs E              selection epochs to drive (default 10)
  --out FILE              write selections as JSONL, one line per epoch
  --verify-reference      compare against the in-process reference run
  --io-timeout SECS       per-call socket deadline (default 30)
  --max-resets N          respawn/reconnect attempts per worker failure
                          (default 2)
  --telemetry FILE        write a JSONL run log; spawned workers write
                          sibling logs FILE.worker-N.jsonl, the inputs
                          to `experiments trace-report`
  --shutdown              also shut down remote --worker-addr workers
                          when done (spawned workers always shut down)
  --stats-addr HOST:PORT  answer `experiments stats` polls on this
                          address while the run is in flight
  --stats-port-file FILE  write the stats listener's bound port
                          atomically (for HOST:0)

dist-worker options:
  --port-file FILE        write the bound port atomically (for HOST:0)
  --checkpoint FILE       shard checkpoint envelope path
  --resume                pin assignments to --checkpoint before serving
  --telemetry FILE        write a JSONL run log
  --io-timeout SECS       per-call socket deadline (default: none)
";

#[derive(Debug)]
struct Parsed {
    config: ServeConfig,
    // dist
    workers: usize,
    worker_addrs: Vec<String>,
    epochs: usize,
    out: Option<PathBuf>,
    verify_reference: bool,
    io_timeout: Option<Duration>,
    max_resets: usize,
    telemetry: Option<PathBuf>,
    shutdown_remote: bool,
    stats_addr: Option<String>,
    stats_port_file: Option<PathBuf>,
    // dist-worker
    addr: Option<String>,
    port_file: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

fn parse(args: &[String], default_timeout: Option<Duration>) -> Result<Parsed, String> {
    let mut clients = 100usize;
    let mut seed = 7u64;
    let mut budget = 500.0f64;
    let mut min_participants = 3usize;
    let mut policy = fedl_core::policy::PolicyKind::FedL;
    let mut workers = 2usize;
    let mut worker_addrs = Vec::new();
    let mut epochs = 10usize;
    let mut out = None;
    let mut verify_reference = false;
    let mut io_timeout = default_timeout;
    let mut max_resets = 2usize;
    let mut telemetry = None;
    let mut shutdown_remote = false;
    let mut stats_addr = None;
    let mut stats_port_file = None;
    let mut addr = None;
    let mut port_file = None;
    let mut checkpoint = None;
    let mut resume = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => {
                clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--budget" => {
                budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--min-participants" => {
                min_participants = value("--min-participants")?
                    .parse()
                    .map_err(|e| format!("--min-participants: {e}"))?
            }
            "--policy" => policy = parse_policy(value("--policy")?)?,
            "--workers" => {
                workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--worker-addr" => worker_addrs.push(value("--worker-addr")?.clone()),
            "--epochs" => {
                epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--verify-reference" => verify_reference = true,
            "--io-timeout" => {
                let secs: f64 =
                    value("--io-timeout")?.parse().map_err(|e| format!("--io-timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--io-timeout must be a positive number of seconds".into());
                }
                io_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--max-resets" => {
                max_resets =
                    value("--max-resets")?.parse().map_err(|e| format!("--max-resets: {e}"))?
            }
            "--telemetry" => telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--shutdown" => shutdown_remote = true,
            "--stats-addr" => stats_addr = Some(value("--stats-addr")?.clone()),
            "--stats-port-file" => {
                stats_port_file = Some(PathBuf::from(value("--stats-port-file")?))
            }
            "--addr" => addr = Some(value("--addr")?.clone()),
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file")?)),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => resume = true,
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if clients == 0 {
        return Err("--clients must be positive".into());
    }
    Ok(Parsed {
        config: ServeConfig::new(clients, seed, budget, min_participants, policy),
        workers,
        worker_addrs,
        epochs,
        out,
        verify_reference,
        io_timeout,
        max_resets,
        telemetry,
        shutdown_remote,
        stats_addr,
        stats_port_file,
        addr,
        port_file,
        checkpoint,
        resume,
    })
}

fn open_telemetry(path: &Option<PathBuf>) -> Result<Telemetry, String> {
    match path {
        Some(path) => Telemetry::to_file(path)
            .map_err(|e| format!("cannot open telemetry log {}: {e}", path.display())),
        None => Ok(Telemetry::disabled()),
    }
}

fn connect_retry(addr: &str, attempts: usize) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(format!("cannot connect to {addr} after {attempts} attempts: {last}"))
}

/// Shared TCP half of both worker link kinds. Frames pass through the
/// traced codec, so the coordinator's live stats carry `proto.*` wire
/// histograms for its side of every exchange.
struct TcpLink {
    transport: Option<TcpTransport>,
    telemetry: Telemetry,
}

impl TcpLink {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        match &mut self.transport {
            Some(t) => {
                let (frame, _encode_ns) = encode_frame_traced(msg, &self.telemetry);
                t.send(&frame)
            }
            None => Err(ProtocolError::Io { detail: "worker link is down".to_string() }),
        }
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        let Some(t) = &mut self.transport else {
            return Err(ProtocolError::Io { detail: "worker link is down".to_string() });
        };
        match t.recv()? {
            Some(frame) => decode_frame_traced(&frame, &self.telemetry).0,
            None => Err(ProtocolError::Io { detail: "worker closed the connection".to_string() }),
        }
    }
}

/// A worker process this coordinator spawned and may respawn.
struct ProcessWorker {
    exe: PathBuf,
    scratch: PathBuf,
    index: usize,
    io_timeout: Option<Duration>,
    telemetry_file: Option<PathBuf>,
    child: Option<Child>,
    link: TcpLink,
}

impl ProcessWorker {
    fn spawn(
        exe: PathBuf,
        scratch: PathBuf,
        index: usize,
        io_timeout: Option<Duration>,
        telemetry_file: Option<PathBuf>,
        telemetry: Telemetry,
    ) -> Result<Self, String> {
        let mut worker = Self {
            exe,
            scratch,
            index,
            io_timeout,
            telemetry_file,
            child: None,
            link: TcpLink { transport: None, telemetry },
        };
        worker.start()?;
        Ok(worker)
    }

    fn port_file(&self) -> PathBuf {
        self.scratch.join(format!("worker-{}.port", self.index))
    }

    fn checkpoint_file(&self) -> PathBuf {
        self.scratch.join(format!("worker-{}.fedlstore", self.index))
    }

    fn start(&mut self) -> Result<(), String> {
        let port_file = self.port_file();
        std::fs::remove_file(&port_file).ok();
        let checkpoint = self.checkpoint_file();
        let mut cmd = Command::new(&self.exe);
        cmd.arg("dist-worker")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .arg("--checkpoint")
            .arg(&checkpoint);
        if let Some(telemetry_file) = &self.telemetry_file {
            cmd.arg("--telemetry").arg(telemetry_file);
        }
        // A respawned worker resumes against its shard checkpoint, so a
        // coordinator bug can never splice it into the wrong shard.
        if checkpoint.exists() {
            cmd.arg("--resume");
        }
        let child = cmd.spawn().map_err(|e| format!("cannot spawn worker {}: {e}", self.index))?;
        self.child = Some(child);
        let deadline = Instant::now() + Duration::from_secs(30);
        let port: u16 = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if !text.trim().is_empty() {
                    break text
                        .trim()
                        .parse()
                        .map_err(|e| format!("worker {} wrote a bad port: {e}", self.index))?;
                }
            }
            if let Some(child) = &mut self.child {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(format!("worker {} exited during startup: {status}", self.index));
                }
            }
            if Instant::now() > deadline {
                return Err(format!("worker {} never wrote its port file", self.index));
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let stream = connect_retry(&format!("127.0.0.1:{port}"), 50)?;
        self.link.transport = Some(TcpTransport::with_timeout(stream, self.io_timeout));
        Ok(())
    }

    fn stop(&mut self) {
        self.link.transport = None;
        if let Some(mut child) = self.child.take() {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

impl WorkerLink for ProcessWorker {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.link.send(msg)
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        self.link.recv_reply()
    }

    fn reset(&mut self) -> Result<(), String> {
        self.stop();
        self.start()
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A pre-started worker at a fixed address; reset reconnects.
struct RemoteWorker {
    addr: String,
    io_timeout: Option<Duration>,
    link: TcpLink,
}

impl RemoteWorker {
    fn connect(
        addr: String,
        io_timeout: Option<Duration>,
        telemetry: Telemetry,
    ) -> Result<Self, String> {
        let mut worker = Self { addr, io_timeout, link: TcpLink { transport: None, telemetry } };
        worker.reset()?;
        Ok(worker)
    }
}

impl WorkerLink for RemoteWorker {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.link.send(msg)
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        self.link.recv_reply()
    }

    fn reset(&mut self) -> Result<(), String> {
        self.link.transport = None;
        let stream = connect_retry(&self.addr, 50)?;
        self.link.transport = Some(TcpTransport::with_timeout(stream, self.io_timeout));
        Ok(())
    }
}

/// Sibling run-log path for spawned worker `i` of a coordinator whose
/// own log is `base`: `trace.jsonl` → `trace.worker-0.jsonl`. These are
/// exactly the extra inputs `experiments trace-report` expects.
fn worker_telemetry_path(base: &Path, i: usize) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("telemetry");
    base.with_file_name(format!("{stem}.worker-{i}.jsonl"))
}

/// Binds the live-stats endpoint and answers `experiments stats` polls
/// from a detached thread: `Stats` gets a fresh registry snapshot,
/// `Hello` a handshake, anything else a typed wire error. The thread
/// holds only a [`Telemetry`] handle and dies with the process.
fn start_stats_listener(
    addr: &str,
    port_file: Option<&Path>,
    telemetry: Telemetry,
) -> Result<(), String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot bind stats listener {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(port_file) = port_file {
        fedl_store::write_atomic(port_file, &local.port().to_string())
            .map_err(|e| format!("cannot write {}: {e}", port_file.display()))?;
    }
    eprintln!("fedl-dist stats: listening on {local}");
    std::thread::spawn(move || {
        for incoming in listener.incoming() {
            let Ok(stream) = incoming else { continue };
            let mut transport = TcpTransport::with_timeout(stream, Some(Duration::from_secs(10)));
            while let Ok(Some(frame)) = transport.recv() {
                let (decoded, _decode_ns) = decode_frame_traced(&frame, &telemetry);
                let reply = match decoded {
                    Ok(Message::Stats) => {
                        Message::StatsSnapshot { registry: telemetry.registry_snapshot() }
                    }
                    Ok(Message::Hello { .. }) => Message::Hello {
                        protocol_version: PROTOCOL_VERSION,
                        node: "fedl-dist".to_string(),
                    },
                    Ok(_) => ProtocolError::UnexpectedMessage {
                        detail: "the dist stats endpoint answers only hello/stats".to_string(),
                    }
                    .to_wire(),
                    Err(err) => err.to_wire(),
                };
                if transport.send(&encode_frame(&reply)).is_err() {
                    break;
                }
            }
        }
    });
    Ok(())
}

fn write_selections(path: &Path, records: &[SelectionRecord]) -> Result<(), String> {
    let mut text = String::new();
    for record in records {
        text.push_str(&record.to_json_line());
        text.push('\n');
    }
    fedl_store::write_atomic(path, &text)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// `experiments dist`: spawn/connect the workers, shard the population,
/// drive the distributed epoch loop, and (optionally) verify the
/// outcome against the in-process reference. `--workers 0` with no
/// `--worker-addr` runs the reference itself, writing the identical
/// `--out` artifact — the comparison base for the `dist` CI stage.
pub fn run_dist(args: &[String]) -> Result<(), String> {
    let parsed = parse(args, Some(Duration::from_secs(30)))?;
    let telemetry = open_telemetry(&parsed.telemetry)?;
    if let Some(stats_addr) = &parsed.stats_addr {
        start_stats_listener(stats_addr, parsed.stats_port_file.as_deref(), telemetry.clone())?;
    }
    let total = parsed.workers + parsed.worker_addrs.len();
    if total == 0 {
        let records = reference_run(&parsed.config, parsed.epochs);
        println!(
            "dist reference: {} epochs over {} clients (single process)",
            records.len(),
            parsed.config.env.num_clients,
        );
        if let Some(out) = &parsed.out {
            write_selections(out, &records)?;
            println!("wrote selections: {}", out.display());
        }
        return Ok(());
    }
    if total > parsed.config.env.num_clients {
        return Err(format!(
            "{total} workers for {} clients: every shard must own at least one client",
            parsed.config.env.num_clients
        ));
    }
    let shards = shard_ranges(parsed.config.env.num_clients, total);
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let scratch = std::env::temp_dir().join(format!("fedl-dist-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("cannot create {}: {e}", scratch.display()))?;
    let mut workers: Vec<ShardWorker> = Vec::with_capacity(total);
    for (i, shard) in shards.iter().enumerate() {
        let link: Box<dyn WorkerLink> = if i < parsed.workers {
            let worker_log = parsed.telemetry.as_deref().map(|base| worker_telemetry_path(base, i));
            Box::new(ProcessWorker::spawn(
                exe.clone(),
                scratch.clone(),
                i,
                parsed.io_timeout,
                worker_log,
                telemetry.clone(),
            )?)
        } else {
            let addr = parsed.worker_addrs[i - parsed.workers].clone();
            Box::new(RemoteWorker::connect(addr, parsed.io_timeout, telemetry.clone())?)
        };
        workers.push(ShardWorker { shard: shard.clone(), link });
    }
    let mut coordinator = Coordinator::new(parsed.config.clone(), workers, telemetry.clone())?;
    let opts = DistOptions { epochs: parsed.epochs, max_resets: parsed.max_resets };
    let report = coordinator.run(&opts)?;
    for i in 0..total {
        if i < parsed.workers || parsed.shutdown_remote {
            coordinator.shutdown_worker(i);
        }
    }
    drop(coordinator);
    std::fs::remove_dir_all(&scratch).ok();
    println!(
        "dist: {} epochs over {} clients across {} workers in {:.3} s — {:.1} epochs/sec, \
         {} recoveries{}",
        report.selections.len(),
        report.clients,
        report.workers,
        report.elapsed_secs,
        report.selections.len() as f64 / report.elapsed_secs.max(1e-9),
        report.recoveries,
        if report.done { " (budget exhausted)" } else { "" },
    );
    if let Some(out) = &parsed.out {
        write_selections(out, &report.selections)?;
        println!("wrote selections: {}", out.display());
    }
    if parsed.verify_reference {
        let reference = reference_run(&parsed.config, parsed.epochs);
        if report.selections != reference {
            return Err(format!(
                "distributed selections diverge from the in-process reference \
                 ({} distributed vs {} reference records)",
                report.selections.len(),
                reference.len(),
            ));
        }
        println!("verified: distributed selections match the in-process reference bit-for-bit");
    }
    telemetry.emit_metrics();
    telemetry.flush();
    Ok(())
}

/// `experiments dist-worker`: bind, publish the port, then serve shard
/// requests over sequential connections until a `Shutdown` arrives.
pub fn run_dist_worker(args: &[String]) -> Result<(), String> {
    let parsed = parse(args, None)?;
    let addr = parsed.addr.ok_or_else(|| format!("--addr is required\n\n{USAGE}"))?;
    let telemetry = open_telemetry(&parsed.telemetry)?;
    let mut state = if parsed.resume {
        let path = parsed
            .checkpoint
            .as_deref()
            .ok_or_else(|| "--resume requires --checkpoint FILE".to_string())?;
        WorkerState::resume(telemetry, path)?
    } else {
        let state = WorkerState::new(telemetry);
        match &parsed.checkpoint {
            Some(path) => state.with_checkpoint(path),
            None => state,
        }
    };
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(port_file) = &parsed.port_file {
        fedl_store::write_atomic(port_file, &local.port().to_string())
            .map_err(|e| format!("cannot write {}: {e}", port_file.display()))?;
    }
    eprintln!("fedl-dist worker: listening on {local}");
    for incoming in listener.incoming() {
        let stream = incoming.map_err(|e| format!("accept failed: {e}"))?;
        let mut transport = TcpTransport::with_timeout(stream, parsed.io_timeout);
        match run_worker(&mut transport, &mut state) {
            Ok(ServeExit::Shutdown) => {
                eprintln!("fedl-dist worker: shutdown");
                return Ok(());
            }
            Ok(ServeExit::PeerClosed) => continue,
            Err(err) => {
                // One desynced connection; the worker is stateless per
                // request, keep accepting (the coordinator reconnects).
                eprintln!("fedl-dist worker: connection dropped: {err}");
                continue;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_dist_flags() {
        let p = parse(
            &strs(&[
                "--clients",
                "40",
                "--seed",
                "11",
                "--workers",
                "4",
                "--worker-addr",
                "10.0.0.5:4000",
                "--worker-addr",
                "10.0.0.6:4000",
                "--epochs",
                "12",
                "--io-timeout",
                "5",
                "--max-resets",
                "3",
            ]),
            Some(Duration::from_secs(30)),
        )
        .unwrap();
        assert_eq!(p.config.env.num_clients, 40);
        assert_eq!(p.config.env.seed, 11);
        assert_eq!(p.workers, 4);
        assert_eq!(p.worker_addrs, vec!["10.0.0.5:4000", "10.0.0.6:4000"]);
        assert_eq!(p.epochs, 12);
        assert_eq!(p.io_timeout, Some(Duration::from_secs(5)));
        assert_eq!(p.max_resets, 3);
    }

    #[test]
    fn bad_flags_are_errors() {
        assert!(parse(&strs(&["--bogus"]), None).unwrap_err().contains("--bogus"));
        assert!(parse(&strs(&["--clients", "0"]), None).unwrap_err().contains("positive"));
        assert!(parse(&strs(&["--io-timeout", "-1"]), None).unwrap_err().contains("positive"));
        assert!(parse(&strs(&["--workers"]), None).unwrap_err().contains("needs a value"));
    }
}
