//! Multi-process sharded execution for the FedL reproduction
//! (DESIGN.md row **S16**, docs/DIST.md).
//!
//! `fedl-serve` (S15) made the coordinator a long-running process;
//! this crate splits the *population* across worker processes. Each
//! worker owns a contiguous shard of the columnar clients, realizes
//! epochs for its shard only, and ships per-client partial columns
//! back over the same framed envelope protocol (`Shard*` messages,
//! protocol v2). The coordinator — which keeps the policy, the budget
//! ledger, and the epoch cursor — concatenates partials in fixed shard
//! order and applies the identical scalar combination code as the
//! single-process path, so an N-worker run reproduces the in-process
//! outcome **bit-for-bit** for every N, including through worker
//! crashes (workers are pure functions of `(config, shard, epoch)`;
//! recovery is respawn + re-ask).
//!
//! * [`shard`] — contiguous shard geometry and cohort splitting.
//! * [`worker`] — [`WorkerState`] + [`run_worker`], the stateless
//!   shard servant with S12-style shard checkpoints.
//! * [`coordinator`] — [`Coordinator`], the [`WorkerLink`] trait, and
//!   the in-process [`LocalWorkerLink`].
//! * [`cli`] — the `experiments dist` / `experiments dist-worker`
//!   subcommands.
//!
//! ```
//! use fedl_core::policy::PolicyKind;
//! use fedl_dist::{
//!     shard_ranges, Coordinator, DistOptions, LocalWorkerLink, ShardWorker, WorkerState,
//! };
//! use fedl_serve::{reference_run, ServeConfig};
//! use fedl_telemetry::Telemetry;
//!
//! let config = ServeConfig::new(30, 7, 200.0, 3, PolicyKind::FedL);
//! let workers = shard_ranges(30, 2)
//!     .into_iter()
//!     .map(|shard| ShardWorker {
//!         shard,
//!         link: Box::new(LocalWorkerLink::new(WorkerState::new(Telemetry::disabled()))),
//!     })
//!     .collect();
//! let mut coordinator = Coordinator::new(config.clone(), workers, Telemetry::disabled()).unwrap();
//! let report = coordinator.run(&DistOptions { epochs: 4, ..Default::default() }).unwrap();
//! assert_eq!(report.selections, reference_run(&config, 4));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod coordinator;
pub mod shard;
pub mod worker;

pub use coordinator::{
    Coordinator, DistOptions, DistReport, LocalWorkerLink, ShardWorker, WorkerLink,
};
pub use shard::{members_in, shard_ranges};
pub use worker::{
    run_worker, ShardCheckpoint, WorkerState, DIST_SHARD_CHECKPOINT_KIND, DIST_SHARD_SCHEMA_VERSION,
};
