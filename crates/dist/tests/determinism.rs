//! The tentpole contract: a distributed run over real transports is
//! byte-identical to the in-process reference — for 2 and 4 workers,
//! and through a worker kill + respawn + checkpoint-resume mid-run —
//! and every transport failure surfaces as a typed error, never a
//! panic or a hang.

use std::ops::Range;
use std::path::PathBuf;
use std::thread::JoinHandle;

use fedl_core::policy::PolicyKind;
use fedl_dist::{
    run_worker, shard_ranges, Coordinator, DistOptions, LocalWorkerLink, ShardWorker, WorkerLink,
    WorkerState,
};
use fedl_serve::proto::{decode_frame, encode_frame, Message, ProtocolError};
use fedl_serve::transport::{DuplexTransport, FrameTransport};
use fedl_serve::{reference_run, SelectionRecord, ServeConfig};
use fedl_telemetry::Telemetry;

fn to_jsonl(records: &[SelectionRecord]) -> Vec<u8> {
    let mut text = String::new();
    for record in records {
        text.push_str(&record.to_json_line());
        text.push('\n');
    }
    text.into_bytes()
}

/// A worker living on its own thread behind a [`DuplexTransport`] —
/// the in-repo stand-in for a worker process over TCP. `reset`
/// tears the thread down and spawns a fresh one, the same recovery a
/// process respawn performs.
struct ThreadWorker {
    endpoint: Option<DuplexTransport>,
    handle: Option<JoinHandle<()>>,
    make_state: Box<dyn Fn() -> WorkerState + Send>,
}

impl ThreadWorker {
    fn spawn(make_state: Box<dyn Fn() -> WorkerState + Send>) -> Self {
        let mut worker = Self { endpoint: None, handle: None, make_state };
        worker.start();
        worker
    }

    fn start(&mut self) {
        let (coordinator_end, worker_end) = DuplexTransport::pair();
        let mut state = (self.make_state)();
        self.handle = Some(std::thread::spawn(move || {
            let mut transport = worker_end;
            let _ = run_worker(&mut transport, &mut state);
        }));
        self.endpoint = Some(coordinator_end);
    }

    /// Simulates the worker process dying: its thread exits, while the
    /// coordinator keeps holding a now-dead link (send errors, recv
    /// sees end-of-stream).
    fn kill_peer(&mut self) {
        let (dead, other_end) = DuplexTransport::pair();
        drop(other_end);
        // Dropping the old endpoint closes the worker thread's stream.
        self.endpoint = Some(dead);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

impl WorkerLink for ThreadWorker {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.endpoint.as_mut().expect("endpoint exists between resets").send(&encode_frame(msg))
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        let frame =
            self.endpoint.as_mut().expect("endpoint exists between resets").recv()?.ok_or_else(
                || ProtocolError::Io { detail: "worker closed the stream".to_string() },
            )?;
        decode_frame(&frame)
    }

    fn reset(&mut self) -> Result<(), String> {
        self.endpoint = None;
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        self.start();
        Ok(())
    }
}

impl Drop for ThreadWorker {
    fn drop(&mut self) {
        self.endpoint = None;
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

/// Kills the inner worker right before its `die_at`-th request is
/// sent, exactly once — a deterministic mid-run crash.
struct FlakyWorker {
    inner: ThreadWorker,
    sends: usize,
    die_at: usize,
}

impl WorkerLink for FlakyWorker {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.sends += 1;
        if self.sends == self.die_at {
            self.inner.kill_peer();
        }
        self.inner.send(msg)
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        self.inner.recv_reply()
    }

    fn reset(&mut self) -> Result<(), String> {
        self.inner.reset()
    }
}

/// A worker that dies mid-run and whose resets keep failing — the
/// unrecoverable-disconnect case.
struct DoomedWorker {
    inner: FlakyWorker,
}

impl WorkerLink for DoomedWorker {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.inner.send(msg)
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        self.inner.recv_reply()
    }

    fn reset(&mut self) -> Result<(), String> {
        Err("the worker host is gone".to_string())
    }
}

fn config() -> ServeConfig {
    ServeConfig::new(81, 17, 500.0, 4, PolicyKind::FedL)
}

fn thread_workers(config: &ServeConfig, count: usize) -> Vec<ShardWorker> {
    shard_ranges(config.env.num_clients, count)
        .into_iter()
        .map(|shard| ShardWorker {
            shard,
            link: Box::new(ThreadWorker::spawn(Box::new(|| {
                WorkerState::new(Telemetry::disabled())
            }))),
        })
        .collect()
}

fn run(config: &ServeConfig, workers: Vec<ShardWorker>, epochs: usize) -> fedl_dist::DistReport {
    let mut coordinator =
        Coordinator::new(config.clone(), workers, Telemetry::disabled()).expect("layout is valid");
    coordinator.run(&DistOptions { epochs, ..Default::default() }).expect("run succeeds")
}

#[test]
fn two_and_four_worker_runs_are_byte_identical_to_the_reference() {
    let config = config();
    let epochs = 8;
    let reference = to_jsonl(&reference_run(&config, epochs));
    assert!(!reference.is_empty());
    for count in [2, 4] {
        let report = run(&config, thread_workers(&config, count), epochs);
        assert_eq!(report.recoveries, 0);
        assert!(report.selections.iter().any(|r| !r.cohort.is_empty()));
        assert_eq!(
            to_jsonl(&report.selections),
            reference,
            "{count}-worker run must byte-match the single-process reference"
        );
    }
    // And the zero-socket local links the bench kernel uses.
    let locals: Vec<ShardWorker> = shard_ranges(config.env.num_clients, 3)
        .into_iter()
        .map(|shard| ShardWorker {
            shard,
            link: Box::new(LocalWorkerLink::new(WorkerState::new(Telemetry::disabled()))),
        })
        .collect();
    assert_eq!(to_jsonl(&run(&config, locals, epochs).selections), reference);
}

fn checkpointed_state(path: PathBuf) -> WorkerState {
    // A respawned worker finds the checkpoint its predecessor wrote and
    // resumes against it — the S12 shard-checkpoint path.
    if path.exists() {
        WorkerState::resume(Telemetry::disabled(), &path).expect("checkpoint is readable")
    } else {
        WorkerState::new(Telemetry::disabled()).with_checkpoint(path)
    }
}

#[test]
fn killed_worker_respawns_from_its_shard_checkpoint_and_the_run_still_matches() {
    let config = config();
    let epochs = 8;
    let reference = to_jsonl(&reference_run(&config, epochs));
    let dir = std::env::temp_dir().join(format!("fedl_dist_respawn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let shards: Vec<Range<usize>> = shard_ranges(config.env.num_clients, 3);
    let workers: Vec<ShardWorker> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let ckpt = dir.join(format!("worker-{i}.fedlstore"));
            std::fs::remove_file(&ckpt).ok();
            let inner = ThreadWorker::spawn(Box::new(move || checkpointed_state(ckpt.clone())));
            // Worker 1 dies just before its 7th request: two handshake
            // rpcs plus two per epoch puts the crash mid-epoch 2.
            let link: Box<dyn WorkerLink> = if i == 1 {
                Box::new(FlakyWorker { inner, sends: 0, die_at: 7 })
            } else {
                Box::new(inner)
            };
            ShardWorker { shard, link }
        })
        .collect();
    let report = run(&config, workers, epochs);
    assert!(report.recoveries >= 1, "the killed worker must have been recovered");
    assert_eq!(
        to_jsonl(&report.selections),
        reference,
        "a kill + respawn + checkpoint-resume mid-run must not change a single byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecoverable_worker_death_is_a_typed_error_not_a_hang() {
    let config = config();
    let mut workers = thread_workers(&config, 3);
    // Worker 1 disconnects mid-epoch and every reset fails.
    let inner = ThreadWorker::spawn(Box::new(|| WorkerState::new(Telemetry::disabled())));
    workers[1] = ShardWorker {
        shard: workers[1].shard.clone(),
        link: Box::new(DoomedWorker { inner: FlakyWorker { inner, sends: 0, die_at: 5 } }),
    };
    let mut coordinator = Coordinator::new(config, workers, Telemetry::disabled()).unwrap();
    let err = coordinator
        .run(&DistOptions { epochs: 8, max_resets: 2 })
        .expect_err("a dead worker with failing resets must abort the run");
    assert!(err.contains("worker 1"), "error should name the worker: {err}");
    assert!(err.contains("unrecoverable"), "error should say recovery was exhausted: {err}");
}

/// Simulates a protocol-v2 peer on the wire: outgoing shard requests
/// lose their trace fields (v2 frames never carry them) and the
/// worker's hello is rewritten to advertise version 2. Selections must
/// not notice — tracing is observability metadata, never an input.
struct V2PeerLink {
    inner: ThreadWorker,
}

impl WorkerLink for V2PeerLink {
    fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        let stripped = match msg.clone() {
            Message::ShardContext { epoch, .. } => {
                Message::ShardContext { epoch, trace: fedl_serve::Trace::Absent }
            }
            Message::ShardTrain { epoch, members, iterations, .. } => {
                Message::ShardTrain { epoch, members, iterations, trace: fedl_serve::Trace::Absent }
            }
            other => other,
        };
        self.inner.send(&stripped)
    }

    fn recv_reply(&mut self) -> Result<Message, ProtocolError> {
        match self.inner.recv_reply()? {
            Message::Hello { node, .. } => Ok(Message::Hello { protocol_version: 2, node }),
            other => Ok(other),
        }
    }

    fn reset(&mut self) -> Result<(), String> {
        self.inner.reset()
    }
}

#[test]
fn tracing_and_v2_peers_never_change_a_selection_byte() {
    let config = config();
    let epochs = 8;
    let reference = to_jsonl(&reference_run(&config, epochs));

    // Tracing fully on at both ends: coordinator spans ride the wire,
    // workers adopt them — and the selections stay bit-identical.
    let (coord_tel, coord_sink) = Telemetry::in_memory();
    let workers: Vec<ShardWorker> = shard_ranges(config.env.num_clients, 2)
        .into_iter()
        .map(|shard| ShardWorker {
            shard,
            link: Box::new(ThreadWorker::spawn(Box::new(|| {
                WorkerState::new(Telemetry::in_memory().0)
            }))),
        })
        .collect();
    let mut coordinator = Coordinator::new(config.clone(), workers, coord_tel).unwrap();
    let report = coordinator.run(&DistOptions { epochs, ..Default::default() }).unwrap();
    assert_eq!(
        to_jsonl(&report.selections),
        reference,
        "tracing enabled must be bit-identical to tracing disabled"
    );
    assert!(
        coord_sink.lines().iter().any(|l| l.contains("\"dist.epoch\"")),
        "the traced run must actually have emitted epoch spans"
    );

    // A v2 peer that never sees trace fields selects identically too.
    let workers: Vec<ShardWorker> = shard_ranges(config.env.num_clients, 2)
        .into_iter()
        .map(|shard| ShardWorker {
            shard,
            link: Box::new(V2PeerLink {
                inner: ThreadWorker::spawn(Box::new(|| WorkerState::new(Telemetry::disabled()))),
            }),
        })
        .collect();
    assert_eq!(
        to_jsonl(&run(&config, workers, epochs).selections),
        reference,
        "a v2 peer (no trace fields on the wire) must select identically"
    );
}

#[test]
fn dropped_duplex_sender_surfaces_as_a_typed_error_at_the_coordinator() {
    let (mut coordinator_end, worker_end) = DuplexTransport::pair();
    drop(worker_end);
    // Sending into the dropped peer is a typed Io error...
    let msg = Message::ShardContext { epoch: 0, trace: fedl_serve::Trace::Absent };
    match coordinator_end.send(&encode_frame(&msg)) {
        Err(ProtocolError::Io { .. }) => {}
        other => panic!("expected a typed Io error, got {other:?}"),
    }
    // ...and receiving reports clean end-of-stream, which the link
    // layer turns into a typed error rather than blocking forever.
    assert!(matches!(coordinator_end.recv(), Ok(None)));
}
