//! Hand-rolled JSON for the FedL workspace.
//!
//! A tiny reader/writer replacing `serde`/`serde_json` so the workspace
//! builds with zero registry dependencies (see `docs/BUILD.md`). It
//! covers exactly what the repo needs — learner checkpoints, run traces
//! (JSON lines), and the figure results pipeline — while keeping the
//! emitted bytes compatible with what `serde_json` produced:
//!
//! * objects preserve insertion order (serde emits struct fields in
//!   declaration order);
//! * [`Value::to_json_pretty`](Value::to_json_pretty) uses serde_json's pretty layout
//!   (two-space indent, `": "` separators);
//! * floats print in shortest-roundtrip form with a trailing `.0` for
//!   integral values, integers print without a fraction, and non-finite
//!   floats serialize as `null` — all serde_json behaviors.
//!
//! The conversion traits [`ToJson`]/[`FromJson`] play the role of
//! `Serialize`/`Deserialize`; types implement them by hand (the structs
//! involved are small and change rarely).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects are stored as insertion-ordered `(key, value)` pairs rather
/// than a map: the workspace writes small fixed-shape objects where
/// field order carries the serde struct-field order we want to
/// reproduce, and linear key lookup is faster than hashing at these
/// sizes anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent, e.g. `42`.
    Int(i64),
    /// Any other number, e.g. `0.5` or `1e-3`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

/// Error produced by [`Value::parse`] or a [`FromJson`] conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input for parse errors; `None` for shape
    /// errors raised during conversion.
    offset: Option<usize>,
}

impl Error {
    /// A conversion ("wrong shape") error.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into(), offset: None }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Self { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Construction and access helpers
// ---------------------------------------------------------------------------

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object by key (first match), or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object member, as an [`Error`] when absent.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key).ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// Numeric value as `f64` (`Int` and `Float` both qualify; `null`
    /// reads as NaN, the inverse of writing non-finite floats as null).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Integer value, if the number is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Non-negative integer as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::Int(u as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Writes a float the way serde_json does: shortest-roundtrip digits,
/// a trailing `.0` for integral finite values, `null` for NaN/inf.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    use fmt::Write as _;
    write!(out, "{v}").expect("write to String cannot fail");
    if !out[start..].bytes().any(|b| b == b'.' || b == b'e' || b == b'E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact serialization (serde_json `to_string` layout: no spaces).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty serialization (serde_json `to_string_pretty` layout:
    /// two-space indent, `": "` after keys, one element per line).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::at(format!("unexpected byte `{}`", b as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::at("bad escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::at("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP subset the
                            // writer emits is needed, but decode pairs
                            // anyway for robustness.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::at("lone surrogate", self.pos));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error::at("bad \\u escape", self.pos))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::at("invalid codepoint", self.pos))?,
                            );
                        }
                        _ => return Err(Error::at("unknown escape", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at(format!("bad number `{text}`"), start))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Out-of-range integers degrade to float, as serde_json
                // does with arbitrary_precision off.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::at(format!("bad number `{text}`"), start)),
            }
        }
    }
}

impl Value {
    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::at("trailing characters", p.pos));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Value`] (the workspace's `Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json_value(&self) -> Value;
}

/// Conversion out of a [`Value`] (the workspace's `Deserialize`).
pub trait FromJson: Sized {
    /// Reconstructs `Self`, with an [`Error`] on shape mismatch.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

impl ToJson for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl FromJson for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}
impl ToJson for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl FromJson for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::msg("expected number"))
    }
}
impl ToJson for usize {
    fn to_json_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl FromJson for usize {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_usize().ok_or_else(|| Error::msg("expected non-negative integer"))
    }
}
impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}
impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}
impl<K: Ord + ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json_value())).collect())
    }
}

/// Free-function form of [`Value::obj`] for terse call sites.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::obj(pairs)
}

/// Reads a required struct field of a [`FromJson`] type.
pub fn read_field<T: FromJson>(obj: &Value, key: &str) -> Result<T, Error> {
    T::from_json_value(obj.field(key)?).map_err(|e| Error::msg(format!("field `{key}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact() {
        let text = r#"{"a":1,"b":[true,null,-2.5],"c":"x\"y","d":{"e":0.1}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = Value::obj([
            ("policy", Value::from("FedL")),
            ("iid", Value::from(true)),
            ("budget", Value::Float(30000.0)),
            ("epochs", Value::Arr(vec![Value::obj([("epoch", Value::from(0usize))])])),
            ("empty", Value::Arr(vec![])),
        ]);
        let want = "{\n  \"policy\": \"FedL\",\n  \"iid\": true,\n  \"budget\": 30000.0,\n  \"epochs\": [\n    {\n      \"epoch\": 0\n    }\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_json_pretty(), want);
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        let mut out = String::new();
        write_f64(&mut out, 30000.0);
        assert_eq!(out, "30000.0");
        out.clear();
        write_f64(&mut out, 0.653145042139057);
        assert_eq!(out, "0.653145042139057");
        out.clear();
        write_f64(&mut out, -2.0);
        assert_eq!(out, "-2.0");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn integers_stay_integers() {
        let v = Value::parse("[0, 42, -7, 9223372036854775807]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Value::Int(0));
        assert_eq!(items[3], Value::Int(i64::MAX));
        assert_eq!(v.to_json(), "[0,42,-7,9223372036854775807]");
    }

    #[test]
    fn floats_parse_with_exponents() {
        let v = Value::parse("[1e3, -2.5E-2, 0.0]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64().unwrap(), 1000.0);
        assert_eq!(items[1].as_f64().unwrap(), -0.025);
        assert_eq!(items[2], Value::Float(0.0));
    }

    #[test]
    fn null_reads_as_nan() {
        let v = Value::parse("null").unwrap();
        assert!(v.as_f64().unwrap().is_nan());
        assert_eq!(Option::<f64>::from_json_value(&v).unwrap(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} \u{1}";
        let v = Value::Str(original.to_string());
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Value::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Value::parse("not json").is_err());
        assert!(Value::parse("{\"a\":1,}").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn object_order_and_lookup() {
        let v = Value::parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        // First match wins on lookup; order is preserved on write.
        assert_eq!(v.get("z").unwrap(), &Value::Int(1));
        assert_eq!(v.to_json(), r#"{"z":1,"a":2,"z":3}"#);
        assert!(v.get("missing").is_none());
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn conversion_traits_round_trip() {
        let xs = vec![1.5f64, -0.25, 3.0];
        let back = Vec::<f64>::from_json_value(&xs.to_json_value()).unwrap();
        assert_eq!(xs, back);
        let opt: Vec<Option<usize>> = vec![Some(3), None, Some(0)];
        let back = Vec::<Option<usize>>::from_json_value(&opt.to_json_value()).unwrap();
        assert_eq!(opt, back);
    }

    #[test]
    fn read_field_reports_key() {
        let v = Value::parse(r#"{"good": 1}"#).unwrap();
        let err = read_field::<f64>(&v, "bad").unwrap_err();
        assert!(err.to_string().contains("bad"));
        assert_eq!(read_field::<usize>(&v, "good").unwrap(), 1);
    }

    #[test]
    fn deep_nesting_parses() {
        let mut text = String::new();
        for _ in 0..64 {
            text.push('[');
        }
        text.push('1');
        for _ in 0..64 {
            text.push(']');
        }
        assert!(Value::parse(&text).is_ok());
    }
}
