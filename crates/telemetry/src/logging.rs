//! Console logging for the workspace binaries.
//!
//! The bench/report binaries used to call `println!` directly. Routing
//! them through [`log_line!`](crate::log_line) keeps the console
//! output but adds a single global switch: set `FEDL_QUIET=1` (or any
//! non-empty value other than `0`) to silence progress chatter, e.g.
//! when the JSONL telemetry log is the output that matters.

use std::fmt;
use std::sync::OnceLock;

static QUIET: OnceLock<bool> = OnceLock::new();

/// `true` when `FEDL_QUIET` asks for silence on stdout.
pub fn quiet() -> bool {
    *QUIET.get_or_init(|| {
        std::env::var("FEDL_QUIET").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Prints one line to stdout unless [`quiet`] is set. Prefer the
/// [`log_line!`](crate::log_line) macro, which forwards here.
pub fn log(args: fmt::Arguments<'_>) {
    if !quiet() {
        println!("{args}");
    }
}

/// `println!` that respects the `FEDL_QUIET` environment switch.
///
/// ```
/// fedl_telemetry::log_line!("epoch {} done in {:.2}s", 3, 0.25);
/// ```
#[macro_export]
macro_rules! log_line {
    ($($arg:tt)*) => {
        $crate::logging::log(::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn log_line_formats_without_panicking() {
        // The quiet flag is process-global (env + OnceLock), so the
        // test only exercises the formatting path.
        crate::log_line!("value {} and {:>5.1}", 1, 2.0);
        let _ = super::quiet();
    }
}
