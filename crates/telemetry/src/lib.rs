//! # fedl-telemetry
//!
//! Zero-dependency observability for the FedL workspace, in three
//! layers sharing one [`Telemetry`] handle:
//!
//! * **Metrics** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (~6% relative error on quantiles),
//!   cheap enough for the per-epoch hot path: recording a sample is a
//!   bucket-index computation plus a handful of atomic adds.
//! * **Spans** — RAII [`Span`] timers with parent/child nesting, used
//!   to time the training phases (`epoch` → `select` / `train` →
//!   `round` → `local-train` / `aggregate` → `evaluate`). Each closed
//!   span feeds a `span.<name>` histogram and emits a `span` event.
//! * **Events** — a structured JSONL log streamed through a pluggable
//!   [`EventSink`]: [`MemorySink`] for tests, [`FileSink`] for runs.
//!   Event payloads are `fedl-json` [`Value`]s, so everything the
//!   simulator already serialises can go straight into the log.
//!
//! The handle is [`Clone`] + `Send` + `Sync`: the runner hands clones
//! to the environment, server, and ledger, and worker threads record
//! metrics through the same shared state.
//!
//! ## Disabled mode
//!
//! [`Telemetry::disabled`] (also [`Default`]) is a true no-op: the
//! handle holds no allocation, metric handles it vends are empty, and
//! every call is a branch on an `Option` — a few nanoseconds, so
//! instrumented code paths need no `if telemetry.enabled()` guards.
//!
//! ```
//! use fedl_telemetry::Telemetry;
//! use fedl_json::Value;
//!
//! let (tel, handle) = Telemetry::in_memory();
//! {
//!     let _epoch = tel.span("epoch");
//!     tel.counter("epochs").incr();
//!     tel.emit("note", vec![("msg", Value::from("hello"))]);
//! }
//! tel.emit_metrics();
//! let kinds: Vec<String> = handle
//!     .events()
//!     .unwrap()
//!     .iter()
//!     .map(|e| e.get("kind").unwrap().as_str().unwrap().to_string())
//!     .collect();
//! assert_eq!(kinds, vec!["note", "span", "metrics"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dashboard;
pub mod event;
pub mod logging;
pub mod metrics;
pub mod report;
mod span;
pub mod trace;

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fedl_json::Value;

/// Version of the run-log event schema (docs/TELEMETRY.md). Emitters
/// stamp it into `run_start.schema_version`; readers that combine
/// several logs — the multi-run dashboard overlay — refuse to mix
/// logs whose versions differ. Logs without the field predate the
/// stamp and are treated as legacy version 0.
pub const RUN_LOG_SCHEMA_VERSION: u32 = 1;

pub use event::{EventSink, FileSink, MemoryHandle, MemorySink};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use report::{ClientUsage, PhaseStats, RunLog};
pub use span::{Span, SpanContext};
pub use trace::{merge_traces, render_trace_html, render_trace_report, TraceModel};

use metrics::lock;

/// Shared state behind an enabled [`Telemetry`] handle.
pub(crate) struct Inner {
    pub(crate) registry: Registry,
    sink: Mutex<Box<dyn EventSink>>,
    seq: AtomicU64,
    trace_id: u64,
    next_span_id: AtomicU64,
    write_errors: AtomicU64,
}

/// One FNV-1a round over the little-endian bytes of `v`.
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A fresh process-unique trace id: FNV-1a over the wall clock, the
/// process id, and a per-process counter (so two handles created in
/// the same nanosecond still differ). Never zero.
fn fresh_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let mut h = 0xcbf2_9ce4_8422_2325;
    h = fnv1a(h, nanos);
    h = fnv1a(h, u64::from(std::process::id()));
    h = fnv1a(h, COUNTER.fetch_add(1, Ordering::Relaxed));
    if h == 0 {
        1
    } else {
        h
    }
}

impl Inner {
    /// Allocates a span id unique within this trace and, with high
    /// probability, across cooperating processes (the sequential
    /// counter is mixed with this handle's trace id, so two processes
    /// never hand out the same small integers).
    pub(crate) fn alloc_span_id(&self) -> u64 {
        let n = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let id = fnv1a(fnv1a(0xcbf2_9ce4_8422_2325, self.trace_id), n);
        if id == 0 {
            1
        } else {
            id
        }
    }
    /// Serialises one event and appends it to the sink. The `kind`
    /// field leads the object and a monotonically increasing `seq`
    /// closes it, so logs merge and re-sort deterministically. Write
    /// failures are counted, never propagated: telemetry must not take
    /// down a training run (and `Span` emits from `Drop`).
    pub(crate) fn emit(&self, kind: &str, fields: Vec<(String, Value)>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut pairs = Vec::with_capacity(fields.len() + 2);
        pairs.push(("kind".to_string(), Value::from(kind)));
        pairs.extend(fields);
        pairs.push(("seq".to_string(), Value::Int(seq as i64)));
        let line = Value::Obj(pairs).to_json();
        if lock(&self.sink).write_line(&line).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Handle to the observability pipeline; clone it freely.
///
/// See the [crate docs](crate) for the three layers it fronts. A
/// disabled handle (from [`Telemetry::disabled`] or [`Default`]) turns
/// every operation into a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: records nothing, emits nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle streaming events into `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                sink: Mutex::new(sink),
                seq: AtomicU64::new(0),
                trace_id: fresh_trace_id(),
                next_span_id: AtomicU64::new(1),
                write_errors: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled handle capturing events in memory, plus the handle
    /// that reads them back. Meant for tests.
    pub fn in_memory() -> (Self, MemoryHandle) {
        let (sink, handle) = MemorySink::new();
        (Self::with_sink(Box::new(sink)), handle)
    }

    /// An enabled handle streaming JSONL to `path` (truncates; creates
    /// parent directories).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::with_sink(Box::new(FileSink::create(path)?)))
    }

    /// `true` when this handle actually records.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Named monotonic counter (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Named gauge (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Named histogram (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::default(),
        }
    }

    /// Opens a root phase timer; the measurement lands when the
    /// returned [`Span`] drops. Nest further phases under it with
    /// [`Span::child`] — parentage is recorded explicitly, never
    /// inferred from call order or thread state.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            Some(inner) => {
                let ctx = SpanContext { trace_id: inner.trace_id, span_id: inner.alloc_span_id() };
                Span::start(Arc::clone(inner), ctx, None, None, 0, name)
            }
            None => Span::noop(),
        }
    }

    /// Opens a span under a parent identified only by its
    /// [`SpanContext`] — the cross-boundary variant of [`Span::child`]
    /// for parents living in another thread or another process. The
    /// span adopts the parent's trace id and records its span id as
    /// `parent_id`; the parent's *name* is unknown here, so the `parent`
    /// field stays null. With `parent == None` (a peer that sent no
    /// trace context) the span is still emitted, just unlinked.
    pub fn span_in(&self, name: &'static str, parent: Option<SpanContext>) -> Span {
        match &self.inner {
            Some(inner) => match parent {
                Some(p) => {
                    let ctx = SpanContext { trace_id: p.trace_id, span_id: inner.alloc_span_id() };
                    Span::start(Arc::clone(inner), ctx, Some(p), None, 1, name)
                }
                None => self.span(name),
            },
            None => Span::noop(),
        }
    }

    /// Appends one structured event to the log. `kind` is prepended as
    /// the leading field; a sequence number is appended.
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.inner {
            inner.emit(kind, fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
        }
    }

    /// The full registry snapshot as a JSON value — the same shape the
    /// `metrics` event carries (`{"counters":…,"gauges":…,"histograms":…}`).
    /// This is what a live `Stats` protocol request answers with. A
    /// disabled handle returns an empty object.
    pub fn registry_snapshot(&self) -> Value {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => Value::Obj(Vec::new()),
        }
    }

    /// Emits a `metrics` event carrying the full registry snapshot
    /// (counters, gauges, histogram summaries).
    pub fn emit_metrics(&self) {
        if let Some(inner) = &self.inner {
            let snapshot = inner.registry.snapshot();
            inner.emit("metrics", vec![("registry".to_string(), snapshot)]);
        }
    }

    /// Flushes the sink (file sinks buffer). Errors are absorbed into
    /// [`write_errors`](Self::write_errors).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if lock(&inner.sink).flush().is_err() {
                inner.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of sink writes/flushes that failed since creation.
    pub fn write_errors(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.write_errors.load(Ordering::Relaxed),
            None => 0,
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_kind_and_sequence() {
        let (tel, handle) = Telemetry::in_memory();
        tel.emit("alpha", vec![("x", Value::Int(1))]);
        tel.emit("beta", vec![("y", Value::from("z"))]);
        let events = handle.events().unwrap();
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("alpha"));
        assert_eq!(events[0].get("seq").unwrap().as_i64(), Some(0));
        assert_eq!(events[1].get("kind").unwrap().as_str(), Some("beta"));
        assert_eq!(events[1].get("seq").unwrap().as_i64(), Some(1));
        // "kind" is the leading field in the serialised line.
        assert!(handle.lines()[0].starts_with(r#"{"kind":"alpha""#));
    }

    #[test]
    fn metrics_event_snapshots_the_registry() {
        let (tel, handle) = Telemetry::in_memory();
        tel.counter("c").add(3);
        tel.gauge("g").set(2.5);
        tel.histogram("h").record(1.0);
        tel.emit_metrics();
        let events = handle.events().unwrap();
        let registry = events[0].get("registry").unwrap();
        assert_eq!(registry.get("counters").unwrap().get("c").unwrap().as_i64(), Some(3));
        assert_eq!(registry.get("gauges").unwrap().get("g").unwrap().as_f64(), Some(2.5));
        let h = registry.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.counter("c").incr();
        tel.gauge("g").set(1.0);
        tel.histogram("h").record(1.0);
        tel.emit("kind", vec![("f", Value::Int(1))]);
        tel.emit_metrics();
        tel.flush();
        assert_eq!(tel.counter("c").value(), 0);
        assert_eq!(tel.write_errors(), 0);
        assert_eq!(format!("{tel:?}"), "Telemetry { enabled: false }");
    }

    #[test]
    fn clones_share_state() {
        let (tel, handle) = Telemetry::in_memory();
        let clone = tel.clone();
        clone.counter("shared").incr();
        tel.counter("shared").incr();
        assert_eq!(tel.counter("shared").value(), 2);
        clone.emit("from-clone", vec![]);
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn failing_sink_is_counted_not_fatal() {
        struct Broken;
        impl EventSink for Broken {
            fn write_line(&mut self, _line: &str) -> io::Result<()> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk gone"))
            }
        }
        let tel = Telemetry::with_sink(Box::new(Broken));
        tel.emit("e", vec![]);
        tel.flush();
        assert_eq!(tel.write_errors(), 2);
    }
}
