//! Offline analysis of a telemetry run log.
//!
//! [`RunLog`] parses a JSONL event stream (from [`crate::FileSink`] or
//! a [`crate::MemoryHandle`]) back into `fedl-json` values and answers
//! the questions the `experiments telemetry-report` subcommand asks:
//! which event kinds appeared, and how long each phase took. Phase
//! quantiles here are exact (computed from the raw per-span durations
//! in the log), unlike the ~6% bucketed estimates the live
//! [`crate::Histogram`] gives.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use fedl_json::Value;

/// A parsed telemetry event stream.
#[derive(Debug, Clone)]
pub struct RunLog {
    events: Vec<Value>,
}

/// Timing summary for one span name (a training phase).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Span name, e.g. `local-train`.
    pub name: String,
    /// Number of times the phase ran.
    pub count: usize,
    /// Total seconds across all runs.
    pub total_secs: f64,
    /// Median duration in seconds.
    pub p50: f64,
    /// 90th-percentile duration in seconds.
    pub p90: f64,
    /// 99th-percentile duration in seconds.
    pub p99: f64,
    /// Longest single run in seconds.
    pub max: f64,
}

impl RunLog {
    /// Parses JSONL text: one event object per non-blank line.
    pub fn parse(text: &str) -> Result<Self, fedl_json::Error> {
        let events = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(Value::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { events })
    }

    /// Reads and parses a JSONL log file.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The parsed events, in log order.
    pub fn events(&self) -> &[Value] {
        &self.events
    }

    /// How many events of each `kind` the log holds, sorted by kind.
    pub fn kind_counts(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for event in &self.events {
            let kind = event
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("<missing kind>");
            *counts.entry(kind.to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// The subset of `required` kinds absent from the log.
    pub fn missing_kinds(&self, required: &[&str]) -> Vec<String> {
        let present: Vec<_> =
            self.kind_counts().into_iter().map(|(kind, _)| kind).collect();
        required
            .iter()
            .filter(|kind| !present.iter().any(|p| p == *kind))
            .map(|kind| kind.to_string())
            .collect()
    }

    /// Per-phase timing statistics from the `span` events, with exact
    /// quantiles, sorted by total time descending.
    pub fn phase_stats(&self) -> Vec<PhaseStats> {
        let mut durations: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for event in &self.events {
            if event.get("kind").and_then(Value::as_str) != Some("span") {
                continue;
            }
            let (Some(name), Some(secs)) = (
                event.get("name").and_then(Value::as_str),
                event.get("secs").and_then(Value::as_f64),
            ) else {
                continue;
            };
            durations.entry(name.to_string()).or_default().push(secs);
        }
        let mut stats: Vec<PhaseStats> = durations
            .into_iter()
            .map(|(name, mut secs)| {
                secs.sort_by(|a, b| a.total_cmp(b));
                PhaseStats {
                    name,
                    count: secs.len(),
                    total_secs: secs.iter().sum(),
                    p50: exact_quantile(&secs, 0.50),
                    p90: exact_quantile(&secs, 0.90),
                    p99: exact_quantile(&secs, 0.99),
                    max: *secs.last().expect("entry implies at least one sample"),
                }
            })
            .collect();
        stats.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
        stats
    }

    /// Renders the human-readable report: event-kind counts followed by
    /// the per-phase timing table.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("events: {}\n", self.events.len()));
        for (kind, count) in self.kind_counts() {
            out.push_str(&format!("  {kind:<12} {count:>6}\n"));
        }
        let stats = self.phase_stats();
        if stats.is_empty() {
            out.push_str("no span events in log\n");
            return out;
        }
        out.push_str(&format!(
            "\n{:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total", "p50", "p90", "p99", "max"
        ));
        for s in &stats {
            out.push_str(&format!(
                "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                s.name,
                s.count,
                fmt_secs(s.total_secs),
                fmt_secs(s.p50),
                fmt_secs(s.p90),
                fmt_secs(s.p99),
                fmt_secs(s.max),
            ));
        }
        out
    }
}

/// Linear-interpolated quantile over an ascending-sorted slice.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    match sorted {
        [] => f64::NAN,
        [only] => *only,
        _ => {
            let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// Scales seconds to a readable unit (s / ms / µs).
fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, secs: f64) -> String {
        format!(r#"{{"kind":"span","name":"{name}","parent":null,"depth":0,"secs":{secs}}}"#)
    }

    #[test]
    fn parses_and_counts_kinds() {
        let text = format!(
            "{}\n{}\n\n{}\n",
            r#"{"kind":"run_start","seed":7}"#,
            span_line("epoch", 0.5),
            r#"{"kind":"run_end","epochs":1}"#
        );
        let log = RunLog::parse(&text).unwrap();
        assert_eq!(log.events().len(), 3);
        assert_eq!(
            log.kind_counts(),
            vec![
                ("run_end".to_string(), 1),
                ("run_start".to_string(), 1),
                ("span".to_string(), 1)
            ]
        );
        assert_eq!(log.missing_kinds(&["run_start", "ledger"]), vec!["ledger".to_string()]);
    }

    #[test]
    fn phase_stats_are_exact_and_sorted_by_total() {
        let mut text = String::new();
        for i in 1..=100 {
            text.push_str(&span_line("fast", i as f64 / 1000.0));
            text.push('\n');
        }
        text.push_str(&span_line("slow", 60.0));
        text.push('\n');
        let log = RunLog::parse(&text).unwrap();
        let stats = log.phase_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "slow", "sorted by total time descending");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[0].p50, 60.0);
        let fast = &stats[1];
        assert_eq!(fast.count, 100);
        assert!((fast.p50 - 0.0505).abs() < 1e-9, "p50 was {}", fast.p50);
        assert!((fast.p90 - 0.0901).abs() < 1e-9, "p90 was {}", fast.p90);
        assert!((fast.max - 0.1).abs() < 1e-12);
    }

    #[test]
    fn report_renders_counts_and_table() {
        let text = format!("{}\n{}\n", span_line("epoch", 1.5), span_line("epoch", 0.5));
        let log = RunLog::parse(&text).unwrap();
        let report = log.render_report();
        assert!(report.contains("events: 2"));
        assert!(report.contains("span"));
        assert!(report.contains("epoch"));
        assert!(report.contains("2.000s"), "total column: {report}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(RunLog::parse("{\"kind\":\"x\"}\nnot json\n").is_err());
    }
}
