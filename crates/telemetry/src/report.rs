//! Offline analysis of a telemetry run log.
//!
//! [`RunLog`] parses a JSONL event stream (from [`crate::FileSink`] or
//! a [`crate::MemoryHandle`]) back into `fedl-json` values and answers
//! the questions the `experiments telemetry-report` subcommand asks:
//! which event kinds appeared, and how long each phase took. Phase
//! quantiles here are exact (computed from the raw per-span durations
//! in the log), unlike the ~6% bucketed estimates the live
//! [`crate::Histogram`] gives.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use fedl_json::Value;

/// A parsed telemetry event stream.
#[derive(Debug, Clone)]
pub struct RunLog {
    events: Vec<Value>,
    skipped: usize,
}

/// Everything the log attributes to one client: how often it was
/// rented, what it was paid, where its time went, and the policy's
/// latest quality estimate for it. Aggregated by
/// [`RunLog::client_usage`] from the `select` and `train` events
/// (see docs/TELEMETRY.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUsage {
    /// Client id `k`.
    pub client: usize,
    /// Epochs in which the policy committed to renting this client
    /// (pre-dropout, from `select.cohort`, falling back to
    /// `train.charged` for logs predating the `select` event).
    pub selections: usize,
    /// Epochs in which the client was rented but dropped out mid-epoch.
    pub failures: usize,
    /// Cumulative rent paid to the client (`train.per_client_cost`).
    pub payment: f64,
    /// Cumulative busy time in simulated seconds
    /// (`per_client_iter_latency × iterations` over surviving epochs).
    pub total_secs: f64,
    /// Compute share of [`ClientUsage::total_secs`] (absent under the
    /// min-makespan bandwidth allocator, which interleaves phases).
    pub compute_secs: f64,
    /// Upload share of [`ClientUsage::total_secs`].
    pub upload_secs: f64,
    /// The policy's most recent quality estimate for this client
    /// (FedL's smoothed η̂ₖ); `None` for policies without per-client
    /// memory.
    pub last_estimate: Option<f64>,
}

/// Timing summary for one span name (a training phase).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Span name, e.g. `local-train`.
    pub name: String,
    /// Number of times the phase ran.
    pub count: usize,
    /// Total seconds across all runs.
    pub total_secs: f64,
    /// Median duration in seconds.
    pub p50: f64,
    /// 90th-percentile duration in seconds.
    pub p90: f64,
    /// 99th-percentile duration in seconds.
    pub p99: f64,
    /// Longest single run in seconds.
    pub max: f64,
}

impl RunLog {
    /// Parses JSONL text: one event object per non-blank line.
    ///
    /// Malformed lines — a truncated tail from a killed run, an
    /// interleaved write — are skipped and counted
    /// ([`RunLog::skipped_lines`]), never fatal: a crash report is
    /// exactly when the rest of the log matters most.
    pub fn parse(text: &str) -> Self {
        let mut events = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Value::parse(line) {
                Ok(event) => events.push(event),
                Err(_) => skipped += 1,
            }
        }
        Self { events, skipped }
    }

    /// Reads and parses a JSONL log file.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::parse(&text))
    }

    /// The parsed events, in log order.
    pub fn events(&self) -> &[Value] {
        &self.events
    }

    /// Number of malformed (unparseable) lines [`RunLog::parse`]
    /// skipped.
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// The first `run_start` event, if the log holds one.
    fn run_start(&self) -> Option<&Value> {
        self.events.iter().find(|e| e.get("kind").and_then(Value::as_str) == Some("run_start"))
    }

    /// The run-log schema version stamped into `run_start`
    /// (`crate::RUN_LOG_SCHEMA_VERSION` at emit time); `None` for
    /// legacy logs that predate the stamp (or hold no `run_start`).
    pub fn schema_version(&self) -> Option<u64> {
        self.run_start()?.get("schema_version")?.as_i64().map(|v| v as u64)
    }

    /// The policy that produced this run (`run_start.policy`), if
    /// recorded.
    pub fn policy_name(&self) -> Option<&str> {
        self.run_start()?.get("policy")?.as_str()
    }

    /// How many events of each `kind` the log holds, sorted by kind.
    pub fn kind_counts(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for event in &self.events {
            let kind = event.get("kind").and_then(Value::as_str).unwrap_or("<missing kind>");
            *counts.entry(kind.to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// The subset of `required` kinds absent from the log.
    pub fn missing_kinds(&self, required: &[&str]) -> Vec<String> {
        let present: Vec<_> = self.kind_counts().into_iter().map(|(kind, _)| kind).collect();
        required
            .iter()
            .filter(|kind| !present.iter().any(|p| p == *kind))
            .map(|kind| kind.to_string())
            .collect()
    }

    /// Per-phase timing statistics from the `span` events, with exact
    /// quantiles, sorted by total time descending.
    pub fn phase_stats(&self) -> Vec<PhaseStats> {
        let mut durations: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for event in &self.events {
            if event.get("kind").and_then(Value::as_str) != Some("span") {
                continue;
            }
            let (Some(name), Some(secs)) = (
                event.get("name").and_then(Value::as_str),
                event.get("secs").and_then(Value::as_f64),
            ) else {
                continue;
            };
            durations.entry(name.to_string()).or_default().push(secs);
        }
        let mut stats: Vec<PhaseStats> = durations
            .into_iter()
            .map(|(name, mut secs)| {
                secs.sort_by(|a, b| a.total_cmp(b));
                PhaseStats {
                    name,
                    count: secs.len(),
                    total_secs: secs.iter().sum(),
                    p50: exact_quantile(&secs, 0.50),
                    p90: exact_quantile(&secs, 0.90),
                    p99: exact_quantile(&secs, 0.99),
                    max: *secs.last().expect("entry implies at least one sample"),
                }
            })
            .collect();
        stats.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
        stats
    }

    /// Per-client aggregation of the `select` / `train` events, sorted
    /// by cumulative payment descending (budget attribution order),
    /// ties by client id. Clients the log never mentions do not appear.
    pub fn client_usage(&self) -> Vec<ClientUsage> {
        let mut usage: BTreeMap<usize, ClientUsage> = BTreeMap::new();
        fn entry(usage: &mut BTreeMap<usize, ClientUsage>, k: usize) -> &mut ClientUsage {
            usage.entry(k).or_insert(ClientUsage {
                client: k,
                selections: 0,
                failures: 0,
                payment: 0.0,
                total_secs: 0.0,
                compute_secs: 0.0,
                upload_secs: 0.0,
                last_estimate: None,
            })
        }
        let ids = |event: &Value, field: &str| -> Vec<usize> {
            event
                .get(field)
                .and_then(Value::as_arr)
                .map(|arr| arr.iter().filter_map(Value::as_usize).collect())
                .unwrap_or_default()
        };
        let floats = |event: &Value, field: &str| -> Vec<f64> {
            event
                .get(field)
                .and_then(Value::as_arr)
                .map(|arr| arr.iter().map(|v| v.as_f64().unwrap_or(f64::NAN)).collect())
                .unwrap_or_default()
        };
        let has_select_events =
            self.events.iter().any(|e| e.get("kind").and_then(Value::as_str) == Some("select"));
        for event in &self.events {
            match event.get("kind").and_then(Value::as_str) {
                Some("select") => {
                    let cohort = ids(event, "cohort");
                    let estimates = floats(event, "estimates");
                    for (slot, &k) in cohort.iter().enumerate() {
                        let u = entry(&mut usage, k);
                        u.selections += 1;
                        if let Some(&est) = estimates.get(slot) {
                            if est.is_finite() {
                                u.last_estimate = Some(est);
                            }
                        }
                    }
                }
                Some("train") => {
                    // Rent: owed for the full commitment (`charged`),
                    // survivor or not.
                    let charged = ids(event, "charged");
                    let costs = floats(event, "per_client_cost");
                    for (slot, &k) in charged.iter().enumerate() {
                        let u = entry(&mut usage, k);
                        u.payment += costs.get(slot).copied().unwrap_or(0.0);
                        // Older logs have no `select` events; count the
                        // rental itself as the selection then.
                        if !has_select_events {
                            u.selections += 1;
                        }
                    }
                    for k in ids(event, "failed") {
                        entry(&mut usage, k).failures += 1;
                    }
                    // Time: survivors only (`cohort`), per-iteration
                    // latencies × iterations.
                    let iters = event.get("iterations").and_then(Value::as_f64).unwrap_or(1.0);
                    let cohort = ids(event, "cohort");
                    let latency = floats(event, "per_client_iter_latency");
                    let compute = floats(event, "per_client_compute_secs");
                    let upload = floats(event, "per_client_upload_secs");
                    for (slot, &k) in cohort.iter().enumerate() {
                        let u = entry(&mut usage, k);
                        if let Some(&l) = latency.get(slot) {
                            if l.is_finite() {
                                u.total_secs += l * iters;
                            }
                        }
                        if let Some(&c) = compute.get(slot) {
                            if c.is_finite() {
                                u.compute_secs += c * iters;
                            }
                        }
                        if let Some(&up) = upload.get(slot) {
                            if up.is_finite() {
                                u.upload_secs += up * iters;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let mut usage: Vec<ClientUsage> = usage.into_values().collect();
        usage.sort_by(|a, b| b.payment.total_cmp(&a.payment).then(a.client.cmp(&b.client)));
        usage
    }

    /// Renders the per-client attribution table (the `experiments
    /// dashboard` ASCII output).
    pub fn render_client_table(&self) -> String {
        let usage = self.client_usage();
        let mut out = String::new();
        // Always printed, even at zero, so multi-log output lines up
        // with `experiments trace-report`'s per-input summaries.
        out.push_str(&format!("skipped {} malformed line(s)\n", self.skipped));
        if usage.is_empty() {
            out.push_str("no select/train events in log — nothing to attribute\n");
            return out;
        }
        let total_paid: f64 = usage.iter().map(|u| u.payment).sum();
        out.push_str(&format!(
            "per-client attribution: {} clients, {:.2} paid\n",
            usage.len(),
            total_paid
        ));
        out.push_str(&format!(
            "{:>7} {:>9} {:>7} {:>10} {:>12} {:>12} {:>12} {:>10}\n",
            "client", "selected", "failed", "paid", "busy", "compute", "upload", "est"
        ));
        for u in &usage {
            let est = u.last_estimate.map_or("—".to_string(), |e| format!("{e:.4}"));
            out.push_str(&format!(
                "{:>7} {:>9} {:>7} {:>10.2} {:>12} {:>12} {:>12} {:>10}\n",
                u.client,
                u.selections,
                u.failures,
                u.payment,
                fmt_secs(u.total_secs),
                fmt_secs(u.compute_secs),
                fmt_secs(u.upload_secs),
                est,
            ));
        }
        out
    }

    /// Renders the human-readable report: event-kind counts followed by
    /// the per-phase timing table.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("events: {}\n", self.events.len()));
        // Always printed, even at zero, so multi-log output lines up
        // with `experiments trace-report`'s per-input summaries.
        out.push_str(&format!("skipped {} malformed line(s)\n", self.skipped));
        for (kind, count) in self.kind_counts() {
            out.push_str(&format!("  {kind:<12} {count:>6}\n"));
        }
        let stats = self.phase_stats();
        if stats.is_empty() {
            out.push_str("no span events in log\n");
            return out;
        }
        out.push_str(&format!(
            "\n{:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total", "p50", "p90", "p99", "max"
        ));
        for s in &stats {
            out.push_str(&format!(
                "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                s.name,
                s.count,
                fmt_secs(s.total_secs),
                fmt_secs(s.p50),
                fmt_secs(s.p90),
                fmt_secs(s.p99),
                fmt_secs(s.max),
            ));
        }
        out
    }
}

/// Linear-interpolated quantile over an ascending-sorted slice.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    match sorted {
        [] => f64::NAN,
        [only] => *only,
        _ => {
            let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

/// Scales seconds to a readable unit (s / ms / µs).
pub(crate) fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, secs: f64) -> String {
        format!(r#"{{"kind":"span","name":"{name}","parent":null,"depth":0,"secs":{secs}}}"#)
    }

    #[test]
    fn parses_and_counts_kinds() {
        let text = format!(
            "{}\n{}\n\n{}\n",
            r#"{"kind":"run_start","seed":7}"#,
            span_line("epoch", 0.5),
            r#"{"kind":"run_end","epochs":1}"#
        );
        let log = RunLog::parse(&text);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.skipped_lines(), 0);
        assert_eq!(
            log.kind_counts(),
            vec![("run_end".to_string(), 1), ("run_start".to_string(), 1), ("span".to_string(), 1)]
        );
        assert_eq!(log.missing_kinds(&["run_start", "ledger"]), vec!["ledger".to_string()]);
    }

    #[test]
    fn phase_stats_are_exact_and_sorted_by_total() {
        let mut text = String::new();
        for i in 1..=100 {
            text.push_str(&span_line("fast", i as f64 / 1000.0));
            text.push('\n');
        }
        text.push_str(&span_line("slow", 60.0));
        text.push('\n');
        let log = RunLog::parse(&text);
        let stats = log.phase_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "slow", "sorted by total time descending");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[0].p50, 60.0);
        let fast = &stats[1];
        assert_eq!(fast.count, 100);
        assert!((fast.p50 - 0.0505).abs() < 1e-9, "p50 was {}", fast.p50);
        assert!((fast.p90 - 0.0901).abs() < 1e-9, "p90 was {}", fast.p90);
        assert!((fast.max - 0.1).abs() < 1e-12);
    }

    #[test]
    fn report_renders_counts_and_table() {
        let text = format!("{}\n{}\n", span_line("epoch", 1.5), span_line("epoch", 0.5));
        let log = RunLog::parse(&text);
        let report = log.render_report();
        assert!(report.contains("events: 2"));
        assert!(report.contains("span"));
        assert!(report.contains("epoch"));
        assert!(report.contains("2.000s"), "total column: {report}");
    }

    #[test]
    fn skips_and_counts_malformed_lines() {
        let log = RunLog::parse("{\"kind\":\"x\"}\nnot json\n{\"kind\":\"y\"}\n");
        assert_eq!(log.events().len(), 2, "good lines around the bad one survive");
        assert_eq!(log.skipped_lines(), 1);
        assert!(log.render_report().contains("skipped 1 malformed line"));
        assert!(log.render_client_table().contains("skipped 1 malformed line"));
    }

    #[test]
    fn truncated_tail_is_skipped_not_fatal() {
        // A run killed mid-write leaves a partial final line.
        let text = format!("{}\n{}", span_line("epoch", 0.5), r#"{"kind":"epoch","coh"#);
        let log = RunLog::parse(&text);
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.skipped_lines(), 1);
        assert_eq!(log.phase_stats().len(), 1, "analysis still works on the rest");
    }

    fn select_line(epoch: usize, cohort: &str, estimates: &str) -> String {
        format!(r#"{{"kind":"select","epoch":{epoch},"cohort":{cohort},"estimates":{estimates}}}"#)
    }

    fn train_line(epoch: usize) -> String {
        // Clients 3 and 7 rented; 7 drops out mid-epoch (pays rent,
        // contributes no time). Two iterations each.
        format!(
            concat!(
                r#"{{"kind":"train","epoch":{},"cohort":[3],"failed":[7],"iterations":2,"#,
                r#""per_client_iter_latency":[0.5],"cost":3.0,"charged":[3,7],"#,
                r#""per_client_cost":[1.0,2.0],"per_client_compute_secs":[0.4],"#,
                r#""per_client_upload_secs":[0.1]}}"#
            ),
            epoch
        )
    }

    #[test]
    fn client_usage_aggregates_rent_time_and_estimates() {
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            select_line(0, "[3,7]", "[0.2,0.3]"),
            train_line(0),
            select_line(1, "[3,7]", "[0.25,null]"),
            train_line(1),
        );
        let log = RunLog::parse(&text);
        let usage = log.client_usage();
        assert_eq!(usage.len(), 2);
        // Sorted by payment descending: 7 paid 4.0, 3 paid 2.0.
        let seven = &usage[0];
        assert_eq!((seven.client, seven.selections, seven.failures), (7, 2, 2));
        assert!((seven.payment - 4.0).abs() < 1e-12);
        assert_eq!(seven.total_secs, 0.0, "dropouts contribute no time");
        // null estimate (NaN at emit time) keeps the last finite one.
        assert_eq!(seven.last_estimate, Some(0.3));
        let three = &usage[1];
        assert_eq!((three.client, three.selections, three.failures), (3, 2, 0));
        assert!((three.payment - 2.0).abs() < 1e-12);
        assert!((three.total_secs - 2.0).abs() < 1e-12, "0.5 × 2 iters × 2 epochs");
        assert!((three.compute_secs - 1.6).abs() < 1e-12);
        assert!((three.upload_secs - 0.4).abs() < 1e-12);
        assert_eq!(three.last_estimate, Some(0.25));

        let table = log.render_client_table();
        assert!(table.contains("per-client attribution: 2 clients"));
        assert!(table.contains("0.2500"), "estimate column: {table}");
    }

    #[test]
    fn client_usage_falls_back_to_charged_without_select_events() {
        let log = RunLog::parse(&format!("{}\n", train_line(0)));
        let usage = log.client_usage();
        assert_eq!(usage.len(), 2);
        assert!(usage.iter().all(|u| u.selections == 1));
        assert!(usage.iter().all(|u| u.last_estimate.is_none()));
    }

    #[test]
    fn run_start_surfaces_policy_and_schema_version() {
        let log =
            RunLog::parse(r#"{"kind":"run_start","policy":"FedL","schema_version":1,"seed":7}"#);
        assert_eq!(log.policy_name(), Some("FedL"));
        assert_eq!(log.schema_version(), Some(1));
        // Legacy logs (no stamp / no run_start) report None.
        let legacy = RunLog::parse(r#"{"kind":"run_start","policy":"FedAvg"}"#);
        assert_eq!(legacy.policy_name(), Some("FedAvg"));
        assert_eq!(legacy.schema_version(), None);
        assert_eq!(RunLog::parse("").policy_name(), None);
    }

    #[test]
    fn empty_log_renders_an_explanation() {
        let log = RunLog::parse("");
        assert!(log.client_usage().is_empty());
        assert!(log.render_client_table().contains("nothing to attribute"));
    }
}
