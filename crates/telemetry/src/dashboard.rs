//! Self-contained HTML dashboard for a telemetry run log.
//!
//! [`render_html`] turns a parsed [`RunLog`] into a single HTML file
//! with **no external assets** — styles are inline and every chart is
//! an inline SVG — so the file can be attached to a CI run or mailed
//! around and still render. Four panels (each with a stable `id` that
//! `scripts/ci.sh` asserts on):
//!
//! * `regret-curve` — cumulative regret vs epoch (`epoch.regret`);
//! * `budget-burndown` — remaining budget vs epoch
//!   (`epoch.budget_remaining`);
//! * `selection-heatmap` — client × epoch selection frequency
//!   (`select.cohort`);
//! * `phase-breakdown` — total seconds per phase (`span` events).
//!
//! Below the charts sits the same per-client attribution table the
//! `experiments dashboard` subcommand prints as ASCII
//! ([`RunLog::client_usage`]).

use fedl_json::Value;

use crate::report::RunLog;

/// Chart plot-area geometry (pixels).
const PLOT_W: f64 = 560.0;
const PLOT_H: f64 = 200.0;
/// Margins: left for y tick labels, bottom for x tick labels.
const M_LEFT: f64 = 70.0;
const M_TOP: f64 = 10.0;
const M_RIGHT: f64 = 10.0;
const M_BOTTOM: f64 = 30.0;
/// Heatmap caps: more rows/columns than this are bucketed so the SVG
/// stays small no matter how long the campaign ran.
const HEAT_MAX_ROWS: usize = 64;
const HEAT_MAX_COLS: usize = 120;

fn svg_open(id: &str) -> String {
    let w = M_LEFT + PLOT_W + M_RIGHT;
    let h = M_TOP + PLOT_H + M_BOTTOM;
    format!(
        r#"<svg id="{id}" viewBox="0 0 {w} {h}" width="{w}" height="{h}" xmlns="http://www.w3.org/2000/svg">"#
    )
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// A line chart over `(x, y)` points (non-finite points dropped).
/// Returns a placeholder panel when fewer than two finite points exist.
fn line_chart(id: &str, color: &str, points: &[(f64, f64)]) -> String {
    let pts: Vec<(f64, f64)> =
        points.iter().copied().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
    if pts.len() < 2 {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no data</text></svg>",
            svg_open(id),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    let sx = |x: f64| M_LEFT + (x - x_min) / (x_max - x_min) * PLOT_W;
    let sy = |y: f64| M_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * PLOT_H;
    let path: Vec<String> =
        pts.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
    let mut out = svg_open(id);
    // Frame + the polyline + min/max tick labels on both axes.
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    out.push_str(&format!(
        r#"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"#,
        path.join(" ")
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + 10.0,
        fmt_tick(y_max)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + PLOT_H,
        fmt_tick(y_min)
    ));
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">{}</text>"#,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_min)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_max)
    ));
    out.push_str("</svg>");
    out
}

/// Pulls `(epoch, field)` series from the `epoch` events.
fn epoch_series(log: &RunLog, field: &str) -> Vec<(f64, f64)> {
    log.events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("epoch"))
        .filter_map(|e| {
            let x = e.get("epoch")?.as_f64()?;
            let y = e.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
            Some((x, y))
        })
        .collect()
}

/// The client × epoch selection-frequency heatmap. Rows are clients in
/// attribution (payment-descending) order, columns are epoch buckets;
/// cell intensity is the fraction of the bucket's epochs in which the
/// client was selected.
fn selection_heatmap(log: &RunLog) -> String {
    // (epoch, cohort) pairs from the select events.
    let selections: Vec<(usize, Vec<usize>)> = log
        .events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("select"))
        .filter_map(|e| {
            let epoch = e.get("epoch")?.as_usize()?;
            let cohort = e
                .get("cohort")?
                .as_arr()?
                .iter()
                .filter_map(Value::as_usize)
                .collect();
            Some((epoch, cohort))
        })
        .collect();
    if selections.is_empty() {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no select events</text></svg>",
            svg_open("selection-heatmap"),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let max_epoch = selections.iter().map(|(e, _)| *e).max().unwrap_or(0);
    let n_cols = (max_epoch + 1).min(HEAT_MAX_COLS);
    let epochs_per_col = (max_epoch + 1).div_ceil(n_cols);
    let rows: Vec<usize> = log
        .client_usage()
        .iter()
        .map(|u| u.client)
        .take(HEAT_MAX_ROWS)
        .collect();
    let truncated = log.client_usage().len() > rows.len();
    let row_of = |k: usize| rows.iter().position(|&r| r == k);

    // counts[row][col] = number of selections; denominator is the
    // bucket width in epochs.
    let mut counts = vec![vec![0usize; n_cols]; rows.len()];
    for (epoch, cohort) in &selections {
        let col = (epoch / epochs_per_col).min(n_cols - 1);
        for &k in cohort {
            if let Some(row) = row_of(k) {
                counts[row][col] += 1;
            }
        }
    }
    let cell_w = PLOT_W / n_cols as f64;
    let cell_h = PLOT_H / rows.len() as f64;
    let mut out = svg_open("selection-heatmap");
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    for (row, row_counts) in counts.iter().enumerate() {
        for (col, &count) in row_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let opacity = (count as f64 / epochs_per_col as f64).min(1.0);
            out.push_str(&format!(
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#2563eb" fill-opacity="{opacity:.2}"/>"##,
                M_LEFT + col as f64 * cell_w,
                M_TOP + row as f64 * cell_h,
                cell_w.max(1.0),
                cell_h.max(1.0),
            ));
        }
    }
    // Row labels: first and last client id shown (rows follow the
    // attribution table order).
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">k={first}</text>"#,
            M_LEFT - 4.0,
            M_TOP + 10.0
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">k={last}{}</text>"#,
            M_LEFT - 4.0,
            M_TOP + PLOT_H,
            if truncated { "…" } else { "" }
        ));
    }
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">epoch 0</text>"#,
        M_TOP + PLOT_H + 16.0
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{max_epoch}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0
    ));
    out.push_str("</svg>");
    out
}

/// Horizontal bars of total seconds per phase (descending, as in the
/// `telemetry-report` table).
fn phase_breakdown(log: &RunLog) -> String {
    let stats = log.phase_stats();
    if stats.is_empty() {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no span events</text></svg>",
            svg_open("phase-breakdown"),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let max_total = stats.iter().map(|s| s.total_secs).fold(0.0f64, f64::max).max(1e-12);
    let bar_h = (PLOT_H / stats.len() as f64).min(28.0);
    let mut out = svg_open("phase-breakdown");
    for (i, s) in stats.iter().enumerate() {
        let y = M_TOP + i as f64 * bar_h;
        let w = s.total_secs / max_total * PLOT_W;
        out.push_str(&format!(
            r##"<rect x="{M_LEFT}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#059669"/>"##,
            y + 2.0,
            w.max(1.0),
            bar_h - 4.0,
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
            M_LEFT - 4.0,
            y + bar_h / 2.0 + 4.0,
            escape(&s.name)
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" class="tick">{:.3}s ×{}</text>"#,
            M_LEFT + w.max(1.0) + 6.0,
            y + bar_h / 2.0 + 4.0,
            s.total_secs,
            s.count
        ));
    }
    out.push_str("</svg>");
    out
}

/// The per-client attribution table as HTML rows.
fn client_table(log: &RunLog) -> String {
    let usage = log.client_usage();
    if usage.is_empty() {
        return "<p>no select/train events in log — nothing to attribute</p>".to_string();
    }
    let mut out = String::from(
        "<table><thead><tr><th>client</th><th>selected</th><th>failed</th>\
         <th>paid</th><th>busy&nbsp;s</th><th>compute&nbsp;s</th>\
         <th>upload&nbsp;s</th><th>est</th></tr></thead><tbody>",
    );
    for u in &usage {
        let est = u.last_estimate.map_or("—".to_string(), |e| format!("{e:.4}"));
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.2}</td>\
             <td>{:.3}</td><td>{:.3}</td><td>{:.3}</td><td>{est}</td></tr>",
            u.client, u.selections, u.failures, u.payment, u.total_secs,
            u.compute_secs, u.upload_secs,
        ));
    }
    out.push_str("</tbody></table>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the complete self-contained dashboard document.
pub fn render_html(log: &RunLog) -> String {
    let mut body = String::new();
    if log.skipped_lines() > 0 {
        body.push_str(&format!(
            "<p class=\"warn\">skipped {} malformed line(s) while parsing the log</p>",
            log.skipped_lines()
        ));
    }
    body.push_str(&format!("<p>{} events</p>", log.events().len()));
    for (title, chart) in [
        ("Cumulative regret", line_chart("regret-curve", "#dc2626", &epoch_series(log, "regret"))),
        (
            "Budget burn-down",
            line_chart("budget-burndown", "#7c3aed", &epoch_series(log, "budget_remaining")),
        ),
        ("Client-selection frequency", selection_heatmap(log)),
        ("Phase-time breakdown", phase_breakdown(log)),
    ] {
        body.push_str(&format!("<section><h2>{title}</h2>{chart}</section>"));
    }
    body.push_str(&format!(
        "<section><h2>Per-client attribution</h2>{}</section>",
        client_table(log)
    ));
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>FedL run dashboard</title><style>\
         body{{font-family:system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#111}}\
         h2{{font-size:1rem;margin:1.2rem 0 0.3rem}}\
         .frame{{fill:none;stroke:#9ca3af;stroke-width:1}}\
         .tick{{font-size:10px;fill:#6b7280}}\
         .empty{{font-size:12px;fill:#6b7280}}\
         .warn{{color:#b45309}}\
         table{{border-collapse:collapse;font-size:0.85rem}}\
         th,td{{border:1px solid #d1d5db;padding:2px 8px;text-align:right}}\
         </style></head><body><h1>FedL run dashboard</h1>{body}</body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> RunLog {
        let mut text = String::new();
        for epoch in 0..6 {
            text.push_str(&format!(
                r#"{{"kind":"select","epoch":{epoch},"cohort":[0,2],"estimates":[0.3,0.5]}}"#
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"train","epoch":{},"cohort":[0,2],"failed":[],"iterations":2,"#,
                    r#""per_client_iter_latency":[0.4,0.6],"cost":3.0,"charged":[0,2],"#,
                    r#""per_client_cost":[1.0,2.0],"per_client_compute_secs":[0.3,0.5],"#,
                    r#""per_client_upload_secs":[0.1,0.1]}}"#
                ),
                epoch
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"epoch","epoch":{},"cohort":[0,2],"cost":3.0,"#,
                    r#""budget_remaining":{},"regret":{}}}"#
                ),
                epoch,
                100.0 - 3.0 * (epoch + 1) as f64,
                0.5 * (epoch + 1) as f64,
            ));
            text.push('\n');
            text.push_str(&format!(
                r#"{{"kind":"span","name":"train","parent":"epoch","depth":1,"secs":0.0{epoch}1}}"#
            ));
            text.push('\n');
        }
        RunLog::parse(&text)
    }

    #[test]
    fn dashboard_contains_all_four_charts_and_the_table() {
        let html = render_html(&demo_log());
        for id in ["regret-curve", "budget-burndown", "selection-heatmap", "phase-breakdown"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing chart {id}");
        }
        assert!(html.contains("<table>"));
        assert!(html.contains("Per-client attribution"));
        // Self-contained: no external references of any kind.
        for needle in ["http://", "https://", "<script", "<link", "src="] {
            let allowed = needle == "http://" && html.contains("http://www.w3.org/2000/svg");
            if allowed {
                assert_eq!(html.matches("http://").count(), 4, "only the SVG xmlns");
                continue;
            }
            assert!(!html.contains(needle), "external reference via {needle}");
        }
        // The polylines carry real data points.
        assert!(html.contains("polyline"));
    }

    #[test]
    fn empty_log_renders_placeholders_not_panics() {
        let html = render_html(&RunLog::parse(""));
        for id in ["regret-curve", "budget-burndown", "selection-heatmap", "phase-breakdown"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing chart {id}");
        }
        assert!(html.contains("no data") || html.contains("no select events"));
        assert!(html.contains("nothing to attribute"));
    }

    #[test]
    fn long_campaigns_are_bucketed_to_bounded_svg_size() {
        // 1000 epochs × 80 clients must not emit 80 000 cells.
        let mut text = String::new();
        for epoch in 0..1000usize {
            let k = epoch % 80;
            text.push_str(&format!(
                r#"{{"kind":"select","epoch":{epoch},"cohort":[{k}],"estimates":[0.1]}}"#
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"train","epoch":{},"cohort":[{}],"failed":[],"iterations":1,"#,
                    r#""per_client_iter_latency":[0.1],"cost":1.0,"charged":[{}],"#,
                    r#""per_client_cost":[1.0],"per_client_compute_secs":[0.05],"#,
                    r#""per_client_upload_secs":[0.05]}}"#
                ),
                epoch, k, k
            ));
            text.push('\n');
        }
        let html = render_html(&RunLog::parse(&text));
        let cells = html.matches("fill=\"#2563eb\"").count();
        assert!(cells <= HEAT_MAX_ROWS * HEAT_MAX_COLS, "{cells} cells");
        assert!(html.contains("…"), "row truncation must be visible");
    }
}
