//! Self-contained HTML dashboard for a telemetry run log.
//!
//! [`render_html`] turns a parsed [`RunLog`] into a single HTML file
//! with **no external assets** — styles are inline and every chart is
//! an inline SVG — so the file can be attached to a CI run or mailed
//! around and still render. Four panels (each with a stable `id` that
//! `scripts/ci.sh` asserts on):
//!
//! * `regret-curve` — cumulative regret vs epoch (`epoch.regret`);
//! * `budget-burndown` — remaining budget vs epoch
//!   (`epoch.budget_remaining`);
//! * `selection-heatmap` — client × epoch selection frequency
//!   (`select.cohort`);
//! * `phase-breakdown` — total seconds per phase (`span` events).
//!
//! Below the charts sits the same per-client attribution table the
//! `experiments dashboard` subcommand prints as ASCII
//! ([`RunLog::client_usage`]).
//!
//! [`render_overlay_html`] is the **multi-run** mode: given two or
//! more run logs (one per policy, identical seeds — the paper's §6
//! comparison protocol), it aligns the runs by epoch and overlays
//! their regret curves (`regret-overlay`) and budget burn-down
//! (`budget-overlay`) in one SVG each, with a legend, plus a
//! per-policy summary table. Logs with mismatched
//! `run_start.schema_version` stamps are refused.

use fedl_json::Value;

use crate::report::RunLog;

/// Chart plot-area geometry (pixels).
const PLOT_W: f64 = 560.0;
const PLOT_H: f64 = 200.0;
/// Margins: left for y tick labels, bottom for x tick labels.
const M_LEFT: f64 = 70.0;
const M_TOP: f64 = 10.0;
const M_RIGHT: f64 = 10.0;
const M_BOTTOM: f64 = 30.0;
/// Heatmap caps: more rows/columns than this are bucketed so the SVG
/// stays small no matter how long the campaign ran.
const HEAT_MAX_ROWS: usize = 64;
const HEAT_MAX_COLS: usize = 120;
/// Series colors for the multi-run overlay charts, cycled when more
/// runs than colors are overlaid.
const SERIES_COLORS: [&str; 6] = ["#dc2626", "#2563eb", "#059669", "#7c3aed", "#d97706", "#0891b2"];

fn svg_open(id: &str) -> String {
    let w = M_LEFT + PLOT_W + M_RIGHT;
    let h = M_TOP + PLOT_H + M_BOTTOM;
    format!(
        r#"<svg id="{id}" viewBox="0 0 {w} {h}" width="{w}" height="{h}" xmlns="http://www.w3.org/2000/svg">"#
    )
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// A line chart over `(x, y)` points (non-finite points dropped).
/// Returns a placeholder panel when fewer than two finite points exist.
fn line_chart(id: &str, color: &str, points: &[(f64, f64)]) -> String {
    let pts: Vec<(f64, f64)> =
        points.iter().copied().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
    if pts.len() < 2 {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no data</text></svg>",
            svg_open(id),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    let sx = |x: f64| M_LEFT + (x - x_min) / (x_max - x_min) * PLOT_W;
    let sy = |y: f64| M_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * PLOT_H;
    let path: Vec<String> =
        pts.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
    let mut out = svg_open(id);
    // Frame + the polyline + min/max tick labels on both axes.
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    out.push_str(&format!(
        r#"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"#,
        path.join(" ")
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + 10.0,
        fmt_tick(y_max)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + PLOT_H,
        fmt_tick(y_min)
    ));
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">{}</text>"#,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_min)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_max)
    ));
    out.push_str("</svg>");
    out
}

/// Pulls `(epoch, field)` series from the `epoch` events.
fn epoch_series(log: &RunLog, field: &str) -> Vec<(f64, f64)> {
    log.events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("epoch"))
        .filter_map(|e| {
            let x = e.get("epoch")?.as_f64()?;
            let y = e.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
            Some((x, y))
        })
        .collect()
}

/// One overlay series: display label, stroke color, `(x, y)` points.
type Series<'a> = (String, &'a str, Vec<(f64, f64)>);

/// A multi-series line chart with a legend — the overlay-mode panel.
/// Series with fewer than two finite points contribute only their
/// legend entry; a chart with no drawable series renders a
/// placeholder.
fn multi_line_chart(id: &str, series: &[Series<'_>]) -> String {
    let cleaned: Vec<Series<'_>> = series
        .iter()
        .map(|(label, color, pts)| {
            let finite: Vec<(f64, f64)> =
                pts.iter().copied().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
            (label.clone(), *color, finite)
        })
        .collect();
    let mut out = svg_open(id);
    if !cleaned.iter().any(|(_, _, pts)| pts.len() >= 2) {
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no data</text></svg>",
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        ));
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, _, pts) in &cleaned {
        for &(x, y) in pts {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    let sx = |x: f64| M_LEFT + (x - x_min) / (x_max - x_min) * PLOT_W;
    let sy = |y: f64| M_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * PLOT_H;
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    for (_, color, pts) in &cleaned {
        if pts.len() < 2 {
            continue;
        }
        let path: Vec<String> =
            pts.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
        out.push_str(&format!(
            r#"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"#,
            path.join(" ")
        ));
    }
    // Legend: swatch + label per series, top-right inside the frame.
    for (i, (label, color, _)) in cleaned.iter().enumerate() {
        let y = M_TOP + 8.0 + 14.0 * i as f64;
        out.push_str(&format!(
            r#"<rect x="{:.1}" y="{:.1}" width="10" height="3" fill="{color}"/>"#,
            M_LEFT + PLOT_W - 120.0,
            y,
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" class="legend">{}</text>"#,
            M_LEFT + PLOT_W - 106.0,
            y + 4.0,
            escape(label)
        ));
    }
    // Axis extent ticks, as in the single-run charts.
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + 10.0,
        fmt_tick(y_max)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + PLOT_H,
        fmt_tick(y_min)
    ));
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">{}</text>"#,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_min)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0,
        fmt_tick(x_max)
    ));
    out.push_str("</svg>");
    out
}

/// Refuses to overlay logs whose `run_start.schema_version` stamps
/// differ (a log without the stamp counts as legacy version 0 — two
/// legacy logs still overlay).
fn check_overlay_schemas(runs: &[(String, RunLog)]) -> Result<(), String> {
    let versions: Vec<u64> =
        runs.iter().map(|(_, log)| log.schema_version().unwrap_or(0)).collect();
    if versions.windows(2).any(|w| w[0] != w[1]) {
        let detail: Vec<String> = runs
            .iter()
            .zip(&versions)
            .map(|((name, _), v)| {
                if *v == 0 {
                    format!("{name}: legacy (no stamp)")
                } else {
                    format!("{name}: v{v}")
                }
            })
            .collect();
        return Err(format!(
            "refusing to overlay run logs with mismatched schema versions — {}",
            detail.join(", ")
        ));
    }
    Ok(())
}

/// Display label per run: the recorded policy name when available
/// (the run's identity in the paper's comparisons), else the given
/// fallback (the file stem); duplicates are numbered.
fn overlay_labels(runs: &[(String, RunLog)]) -> Vec<String> {
    let mut labels: Vec<String> = runs
        .iter()
        .map(|(fallback, log)| log.policy_name().map_or_else(|| fallback.clone(), str::to_string))
        .collect();
    for i in 0..labels.len() {
        let dupes = labels[..i].iter().filter(|l| **l == labels[i]).count();
        if dupes > 0 {
            labels[i] = format!("{} #{}", labels[i], dupes + 1);
        }
    }
    labels
}

/// Per-run summary metrics for the overlay table.
struct OverlaySummary {
    epochs: usize,
    final_loss: Option<f64>,
    total_paid: f64,
    selections: usize,
    failures: usize,
}

fn overlay_summary(log: &RunLog) -> OverlaySummary {
    let epochs = log
        .events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("epoch"))
        .count();
    let final_loss = log
        .events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("epoch"))
        .filter_map(|e| {
            e.get("global_loss")
                .and_then(Value::as_f64)
                .or_else(|| e.get("test_loss").and_then(Value::as_f64))
        })
        .next_back();
    let usage = log.client_usage();
    OverlaySummary {
        epochs,
        final_loss,
        total_paid: usage.iter().map(|u| u.payment).sum(),
        selections: usage.iter().map(|u| u.selections).sum(),
        failures: usage.iter().map(|u| u.failures).sum(),
    }
}

/// The overlay-mode ASCII summary: one row per run (policy), with the
/// same columns as the HTML summary table.
pub fn render_overlay_table(runs: &[(String, RunLog)]) -> Result<String, String> {
    check_overlay_schemas(runs)?;
    let labels = overlay_labels(runs);
    let mut out = String::new();
    for ((_, log), label) in runs.iter().zip(&labels) {
        if log.skipped_lines() > 0 {
            out.push_str(&format!("{label}: skipped {} malformed line(s)\n", log.skipped_lines()));
        }
    }
    out.push_str(&format!(
        "{:<14} {:>7} {:>12} {:>12} {:>10} {:>9} {:>10}\n",
        "policy", "epochs", "final loss", "total paid", "selected", "dropouts", "drop rate"
    ));
    for ((_, log), label) in runs.iter().zip(&labels) {
        let s = overlay_summary(log);
        out.push_str(&format!(
            "{:<14} {:>7} {:>12} {:>12.2} {:>10} {:>9} {:>10}\n",
            label,
            s.epochs,
            s.final_loss.map_or("—".to_string(), |l| format!("{l:.4}")),
            s.total_paid,
            s.selections,
            s.failures,
            if s.selections > 0 {
                format!("{:.1}%", 100.0 * s.failures as f64 / s.selections as f64)
            } else {
                "—".to_string()
            },
        ));
    }
    Ok(out)
}

/// Renders the multi-run overlay dashboard: runs aligned by epoch,
/// regret curves overlaid in one SVG (`regret-overlay`), budget
/// burn-down in another (`budget-overlay`), each with a per-policy
/// legend, above a per-policy summary table. Same self-containment
/// contract as [`render_html`]. Errs when the logs' schema versions
/// differ.
pub fn render_overlay_html(runs: &[(String, RunLog)]) -> Result<String, String> {
    check_overlay_schemas(runs)?;
    let labels = overlay_labels(runs);
    let series_for = |field: &str| -> Vec<Series<'static>> {
        runs.iter()
            .zip(&labels)
            .enumerate()
            .map(|(i, ((_, log), label))| {
                (label.clone(), SERIES_COLORS[i % SERIES_COLORS.len()], epoch_series(log, field))
            })
            .collect()
    };
    let mut body = String::new();
    for ((_, log), label) in runs.iter().zip(&labels) {
        if log.skipped_lines() > 0 {
            body.push_str(&format!(
                "<p class=\"warn\">{}: skipped {} malformed line(s)</p>",
                escape(label),
                log.skipped_lines()
            ));
        }
    }
    for (title, chart) in [
        ("Cumulative regret (overlay)", multi_line_chart("regret-overlay", &series_for("regret"))),
        (
            "Budget burn-down (overlay)",
            multi_line_chart("budget-overlay", &series_for("budget_remaining")),
        ),
    ] {
        body.push_str(&format!("<section><h2>{title}</h2>{chart}</section>"));
    }
    // Per-policy summary table.
    body.push_str(
        "<section><h2>Per-policy summary</h2><table><thead><tr><th>policy</th>\
         <th>epochs</th><th>final loss</th><th>total paid</th><th>selected</th>\
         <th>dropouts</th><th>drop rate</th></tr></thead><tbody>",
    );
    for ((_, log), label) in runs.iter().zip(&labels) {
        let s = overlay_summary(log);
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.2}</td><td>{}</td>\
             <td>{}</td><td>{}</td></tr>",
            escape(label),
            s.epochs,
            s.final_loss.map_or("—".to_string(), |l| format!("{l:.4}")),
            s.total_paid,
            s.selections,
            s.failures,
            if s.selections > 0 {
                format!("{:.1}%", 100.0 * s.failures as f64 / s.selections as f64)
            } else {
                "—".to_string()
            },
        ));
    }
    body.push_str("</tbody></table></section>");
    Ok(format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>FedL run overlay</title><style>\
         body{{font-family:system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#111}}\
         h2{{font-size:1rem;margin:1.2rem 0 0.3rem}}\
         .frame{{fill:none;stroke:#9ca3af;stroke-width:1}}\
         .tick{{font-size:10px;fill:#6b7280}}\
         .legend{{font-size:10px;fill:#374151}}\
         .empty{{font-size:12px;fill:#6b7280}}\
         .warn{{color:#b45309}}\
         table{{border-collapse:collapse;font-size:0.85rem}}\
         th,td{{border:1px solid #d1d5db;padding:2px 8px;text-align:right}}\
         </style></head><body><h1>FedL run overlay — {} runs</h1>{body}</body></html>",
        runs.len()
    ))
}

/// The client × epoch selection-frequency heatmap. Rows are clients in
/// attribution (payment-descending) order, columns are epoch buckets;
/// cell intensity is the fraction of the bucket's epochs in which the
/// client was selected.
fn selection_heatmap(log: &RunLog) -> String {
    // (epoch, cohort) pairs from the select events.
    let selections: Vec<(usize, Vec<usize>)> = log
        .events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("select"))
        .filter_map(|e| {
            let epoch = e.get("epoch")?.as_usize()?;
            let cohort = e.get("cohort")?.as_arr()?.iter().filter_map(Value::as_usize).collect();
            Some((epoch, cohort))
        })
        .collect();
    if selections.is_empty() {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no select events</text></svg>",
            svg_open("selection-heatmap"),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let max_epoch = selections.iter().map(|(e, _)| *e).max().unwrap_or(0);
    let n_cols = (max_epoch + 1).min(HEAT_MAX_COLS);
    let epochs_per_col = (max_epoch + 1).div_ceil(n_cols);
    let rows: Vec<usize> =
        log.client_usage().iter().map(|u| u.client).take(HEAT_MAX_ROWS).collect();
    let truncated = log.client_usage().len() > rows.len();
    let row_of = |k: usize| rows.iter().position(|&r| r == k);

    // counts[row][col] = number of selections; denominator is the
    // bucket width in epochs.
    let mut counts = vec![vec![0usize; n_cols]; rows.len()];
    for (epoch, cohort) in &selections {
        let col = (epoch / epochs_per_col).min(n_cols - 1);
        for &k in cohort {
            if let Some(row) = row_of(k) {
                counts[row][col] += 1;
            }
        }
    }
    let cell_w = PLOT_W / n_cols as f64;
    let cell_h = PLOT_H / rows.len() as f64;
    let mut out = svg_open("selection-heatmap");
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    for (row, row_counts) in counts.iter().enumerate() {
        for (col, &count) in row_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let opacity = (count as f64 / epochs_per_col as f64).min(1.0);
            out.push_str(&format!(
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#2563eb" fill-opacity="{opacity:.2}"/>"##,
                M_LEFT + col as f64 * cell_w,
                M_TOP + row as f64 * cell_h,
                cell_w.max(1.0),
                cell_h.max(1.0),
            ));
        }
    }
    // Row labels: first and last client id shown (rows follow the
    // attribution table order).
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">k={first}</text>"#,
            M_LEFT - 4.0,
            M_TOP + 10.0
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">k={last}{}</text>"#,
            M_LEFT - 4.0,
            M_TOP + PLOT_H,
            if truncated { "…" } else { "" }
        ));
    }
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">epoch 0</text>"#,
        M_TOP + PLOT_H + 16.0
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{max_epoch}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0
    ));
    out.push_str("</svg>");
    out
}

/// Horizontal bars of total seconds per phase (descending, as in the
/// `telemetry-report` table).
fn phase_breakdown(log: &RunLog) -> String {
    let stats = log.phase_stats();
    if stats.is_empty() {
        return format!(
            "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">no span events</text></svg>",
            svg_open("phase-breakdown"),
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        );
    }
    let max_total = stats.iter().map(|s| s.total_secs).fold(0.0f64, f64::max).max(1e-12);
    let bar_h = (PLOT_H / stats.len() as f64).min(28.0);
    let mut out = svg_open("phase-breakdown");
    for (i, s) in stats.iter().enumerate() {
        let y = M_TOP + i as f64 * bar_h;
        let w = s.total_secs / max_total * PLOT_W;
        out.push_str(&format!(
            r##"<rect x="{M_LEFT}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#059669"/>"##,
            y + 2.0,
            w.max(1.0),
            bar_h - 4.0,
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
            M_LEFT - 4.0,
            y + bar_h / 2.0 + 4.0,
            escape(&s.name)
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" class="tick">{:.3}s ×{}</text>"#,
            M_LEFT + w.max(1.0) + 6.0,
            y + bar_h / 2.0 + 4.0,
            s.total_secs,
            s.count
        ));
    }
    out.push_str("</svg>");
    out
}

/// The per-client attribution table as HTML rows.
fn client_table(log: &RunLog) -> String {
    let usage = log.client_usage();
    if usage.is_empty() {
        return "<p>no select/train events in log — nothing to attribute</p>".to_string();
    }
    let mut out = String::from(
        "<table><thead><tr><th>client</th><th>selected</th><th>failed</th>\
         <th>paid</th><th>busy&nbsp;s</th><th>compute&nbsp;s</th>\
         <th>upload&nbsp;s</th><th>est</th></tr></thead><tbody>",
    );
    for u in &usage {
        let est = u.last_estimate.map_or("—".to_string(), |e| format!("{e:.4}"));
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.2}</td>\
             <td>{:.3}</td><td>{:.3}</td><td>{:.3}</td><td>{est}</td></tr>",
            u.client,
            u.selections,
            u.failures,
            u.payment,
            u.total_secs,
            u.compute_secs,
            u.upload_secs,
        ));
    }
    out.push_str("</tbody></table>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the complete self-contained dashboard document.
pub fn render_html(log: &RunLog) -> String {
    let mut body = String::new();
    if log.skipped_lines() > 0 {
        body.push_str(&format!(
            "<p class=\"warn\">skipped {} malformed line(s) while parsing the log</p>",
            log.skipped_lines()
        ));
    }
    body.push_str(&format!("<p>{} events</p>", log.events().len()));
    for (title, chart) in [
        ("Cumulative regret", line_chart("regret-curve", "#dc2626", &epoch_series(log, "regret"))),
        (
            "Budget burn-down",
            line_chart("budget-burndown", "#7c3aed", &epoch_series(log, "budget_remaining")),
        ),
        ("Client-selection frequency", selection_heatmap(log)),
        ("Phase-time breakdown", phase_breakdown(log)),
    ] {
        body.push_str(&format!("<section><h2>{title}</h2>{chart}</section>"));
    }
    body.push_str(&format!(
        "<section><h2>Per-client attribution</h2>{}</section>",
        client_table(log)
    ));
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>FedL run dashboard</title><style>\
         body{{font-family:system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#111}}\
         h2{{font-size:1rem;margin:1.2rem 0 0.3rem}}\
         .frame{{fill:none;stroke:#9ca3af;stroke-width:1}}\
         .tick{{font-size:10px;fill:#6b7280}}\
         .empty{{font-size:12px;fill:#6b7280}}\
         .warn{{color:#b45309}}\
         table{{border-collapse:collapse;font-size:0.85rem}}\
         th,td{{border:1px solid #d1d5db;padding:2px 8px;text-align:right}}\
         </style></head><body><h1>FedL run dashboard</h1>{body}</body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> RunLog {
        let mut text = String::new();
        for epoch in 0..6 {
            text.push_str(&format!(
                r#"{{"kind":"select","epoch":{epoch},"cohort":[0,2],"estimates":[0.3,0.5]}}"#
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"train","epoch":{},"cohort":[0,2],"failed":[],"iterations":2,"#,
                    r#""per_client_iter_latency":[0.4,0.6],"cost":3.0,"charged":[0,2],"#,
                    r#""per_client_cost":[1.0,2.0],"per_client_compute_secs":[0.3,0.5],"#,
                    r#""per_client_upload_secs":[0.1,0.1]}}"#
                ),
                epoch
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"epoch","epoch":{},"cohort":[0,2],"cost":3.0,"#,
                    r#""budget_remaining":{},"regret":{}}}"#
                ),
                epoch,
                100.0 - 3.0 * (epoch + 1) as f64,
                0.5 * (epoch + 1) as f64,
            ));
            text.push('\n');
            text.push_str(&format!(
                r#"{{"kind":"span","name":"train","parent":"epoch","depth":1,"secs":0.0{epoch}1}}"#
            ));
            text.push('\n');
        }
        RunLog::parse(&text)
    }

    #[test]
    fn dashboard_contains_all_four_charts_and_the_table() {
        let html = render_html(&demo_log());
        for id in ["regret-curve", "budget-burndown", "selection-heatmap", "phase-breakdown"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing chart {id}");
        }
        assert!(html.contains("<table>"));
        assert!(html.contains("Per-client attribution"));
        // Self-contained: no external references of any kind.
        for needle in ["http://", "https://", "<script", "<link", "src="] {
            let allowed = needle == "http://" && html.contains("http://www.w3.org/2000/svg");
            if allowed {
                assert_eq!(html.matches("http://").count(), 4, "only the SVG xmlns");
                continue;
            }
            assert!(!html.contains(needle), "external reference via {needle}");
        }
        // The polylines carry real data points.
        assert!(html.contains("polyline"));
    }

    #[test]
    fn empty_log_renders_placeholders_not_panics() {
        let html = render_html(&RunLog::parse(""));
        for id in ["regret-curve", "budget-burndown", "selection-heatmap", "phase-breakdown"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing chart {id}");
        }
        assert!(html.contains("no data") || html.contains("no select events"));
        assert!(html.contains("nothing to attribute"));
    }

    /// A minimal run log for one policy: a `run_start` stamp plus a
    /// few epoch/train events, with per-policy regret slopes so the
    /// overlaid polylines differ.
    fn policy_log(policy: &str, schema: Option<u32>, slope: f64) -> RunLog {
        let mut text = String::new();
        let version = schema.map_or(String::new(), |v| format!(r#""schema_version":{v},"#));
        text.push_str(&format!(
            r#"{{"kind":"run_start",{version}"policy":"{policy}","budget":100.0,"seed":7}}"#
        ));
        text.push('\n');
        for epoch in 0..5 {
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"train","epoch":{},"cohort":[0],"failed":[],"iterations":1,"#,
                    r#""per_client_iter_latency":[0.5],"cost":2.0,"charged":[0],"#,
                    r#""per_client_cost":[2.0],"per_client_compute_secs":[0.4],"#,
                    r#""per_client_upload_secs":[0.1]}}"#
                ),
                epoch
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"epoch","epoch":{},"cohort":[0],"cost":2.0,"#,
                    r#""budget_remaining":{},"regret":{},"global_loss":{}}}"#
                ),
                epoch,
                100.0 - 2.0 * (epoch + 1) as f64,
                slope * (epoch + 1) as f64,
                1.0 / (epoch + 1) as f64,
            ));
            text.push('\n');
        }
        RunLog::parse(&text)
    }

    #[test]
    fn overlay_charts_both_policies_with_legends_and_summary() {
        let runs = vec![
            ("a_run".to_string(), policy_log("FedL", Some(1), 0.5)),
            ("b_run".to_string(), policy_log("FedAvg", Some(1), 1.5)),
        ];
        let html = render_overlay_html(&runs).unwrap();
        for id in ["regret-overlay", "budget-overlay"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing chart {id}");
        }
        // Legend entries carry the policy names from run_start, not
        // the file stems, and each chart draws one polyline per run.
        for policy in ["FedL", "FedAvg"] {
            assert!(html.contains(&format!("class=\"legend\">{policy}<")), "legend {policy}");
            assert!(!html.contains("a_run"), "file stem leaked into output");
        }
        assert_eq!(html.matches("<polyline").count(), 4, "2 charts × 2 runs");
        // Summary table: final loss (1/5), total paid (5 × 2), rows
        // per policy.
        assert!(html.contains("Per-policy summary"));
        assert!(html.contains("0.2000"));
        assert!(html.contains("10.00"));
        // Still self-contained: no scripts or external assets.
        for needle in ["<script", "<link", "src="] {
            assert!(!html.contains(needle), "external reference via {needle}");
        }
    }

    #[test]
    fn overlay_refuses_mismatched_schema_versions() {
        let runs = vec![
            ("a".to_string(), policy_log("FedL", Some(1), 0.5)),
            ("b".to_string(), policy_log("FedAvg", Some(2), 1.5)),
        ];
        let err = render_overlay_html(&runs).unwrap_err();
        assert!(err.contains("mismatched schema versions"), "{err}");
        assert!(err.contains("a: v1") && err.contains("b: v2"), "{err}");
        assert!(render_overlay_table(&runs).is_err());
        // A stamped log never overlays a legacy (unstamped) one either.
        let runs = vec![
            ("a".to_string(), policy_log("FedL", Some(1), 0.5)),
            ("b".to_string(), policy_log("FedAvg", None, 1.5)),
        ];
        let err = render_overlay_html(&runs).unwrap_err();
        assert!(err.contains("b: legacy (no stamp)"), "{err}");
        // Two legacy logs still overlay.
        let runs = vec![
            ("a".to_string(), policy_log("FedL", None, 0.5)),
            ("b".to_string(), policy_log("FedAvg", None, 1.5)),
        ];
        assert!(render_overlay_html(&runs).is_ok());
    }

    #[test]
    fn overlay_table_summarises_each_run_and_dedupes_labels() {
        let runs = vec![
            ("x".to_string(), policy_log("FedL", Some(1), 0.5)),
            ("y".to_string(), policy_log("FedL", Some(1), 1.5)),
        ];
        let table = render_overlay_table(&runs).unwrap();
        assert!(table.contains("policy"), "{table}");
        assert!(table.contains("FedL") && table.contains("FedL #2"), "{table}");
        // 5 epochs, 5 selections, 0 dropouts, 10.00 paid.
        assert!(table.contains("10.00"), "{table}");
        assert!(table.contains("0.0%"), "{table}");
    }

    #[test]
    fn long_campaigns_are_bucketed_to_bounded_svg_size() {
        // 1000 epochs × 80 clients must not emit 80 000 cells.
        let mut text = String::new();
        for epoch in 0..1000usize {
            let k = epoch % 80;
            text.push_str(&format!(
                r#"{{"kind":"select","epoch":{epoch},"cohort":[{k}],"estimates":[0.1]}}"#
            ));
            text.push('\n');
            text.push_str(&format!(
                concat!(
                    r#"{{"kind":"train","epoch":{},"cohort":[{}],"failed":[],"iterations":1,"#,
                    r#""per_client_iter_latency":[0.1],"cost":1.0,"charged":[{}],"#,
                    r#""per_client_cost":[1.0],"per_client_compute_secs":[0.05],"#,
                    r#""per_client_upload_secs":[0.05]}}"#
                ),
                epoch, k, k
            ));
            text.push('\n');
        }
        let html = render_html(&RunLog::parse(&text));
        let cells = html.matches("fill=\"#2563eb\"").count();
        assert!(cells <= HEAT_MAX_ROWS * HEAT_MAX_COLS, "{cells} cells");
        assert!(html.contains("…"), "row truncation must be visible");
    }
}
