//! RAII span timers with explicit parent/child linkage and a
//! cross-process trace context.
//!
//! A [`Span`] measures the wall-clock time between its creation
//! (via [`crate::Telemetry::span`], [`crate::Telemetry::span_in`], or
//! [`Span::child`]) and its drop. On close it records the duration into
//! the histogram `span.<name>` and emits a `span` event carrying the
//! parent span's name, the nesting depth, and the trace context
//! (`trace_id`/`span_id`/`parent_id`), so run logs from several
//! processes merge into one causal tree (docs/TELEMETRY.md).
//!
//! Parentage is **passed, not inferred**: a child span records the
//! identity of the span it was created under. There is no thread-local
//! or global stack, so spans opened concurrently on pool threads can
//! never nest under an unrelated thread's span.

use std::sync::Arc;
use std::time::Instant;

use fedl_json::Value;

use crate::Inner;

/// The cross-process identity of a span: which trace it belongs to and
/// which span it is. Serialised as zero-padded 16-digit lowercase hex
/// in `span` events and protocol trace fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Identifies one logical run across every participating process.
    /// Remote spans adopt the originator's trace id.
    pub trace_id: u64,
    /// Identifies this span within the trace.
    pub span_id: u64,
}

impl SpanContext {
    /// Renders an id the way the wire and the run log carry it:
    /// zero-padded 16-digit lowercase hex.
    pub fn fmt_id(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Parses an id rendered by [`SpanContext::fmt_id`]. Accepts 1–16
    /// ASCII hex digits; anything else — empty, overlong, stray signs
    /// or whitespace — is `None`, never a panic.
    pub fn parse_id(s: &str) -> Option<u64> {
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

/// A live phase timer; the measurement is taken when it drops.
#[must_use = "a span measures until it is dropped; binding it to _ closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    ctx: SpanContext,
    parent: Option<SpanContext>,
    parent_name: Option<&'static str>,
    depth: u64,
    name: &'static str,
    fields: Vec<(String, Value)>,
    start: Instant,
}

impl Span {
    /// A span that records nothing (what a disabled
    /// [`crate::Telemetry`] hands out).
    pub fn noop() -> Self {
        Self { active: None }
    }

    pub(crate) fn start(
        inner: Arc<Inner>,
        ctx: SpanContext,
        parent: Option<SpanContext>,
        parent_name: Option<&'static str>,
        depth: u64,
        name: &'static str,
    ) -> Self {
        Self {
            active: Some(ActiveSpan {
                inner,
                ctx,
                parent,
                parent_name,
                depth,
                name,
                fields: Vec::new(),
                start: Instant::now(),
            }),
        }
    }

    /// Opens a child span under this one: same trace, this span as the
    /// recorded parent, depth one deeper. A noop span hands out noop
    /// children.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.active {
            Some(span) => {
                let ctx = SpanContext {
                    trace_id: span.ctx.trace_id,
                    span_id: span.inner.alloc_span_id(),
                };
                Span::start(
                    Arc::clone(&span.inner),
                    ctx,
                    Some(span.ctx),
                    Some(span.name),
                    span.depth + 1,
                    name,
                )
            }
            None => Span::noop(),
        }
    }

    /// This span's trace context, for threading across a process
    /// boundary (`None` for a noop span).
    pub fn ctx(&self) -> Option<SpanContext> {
        self.active.as_ref().map(|span| span.ctx)
    }

    /// Attaches an extra field to the `span` event this span will emit
    /// on close (e.g. the epoch or worker index it covers).
    pub fn field(&mut self, key: &'static str, value: Value) {
        if let Some(span) = &mut self.active {
            span.fields.push((key.to_string(), value));
        }
    }

    /// Discards the span without recording it (used when the phase it
    /// was opened for turns out not to happen).
    pub fn cancel(mut self) {
        self.active.take();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let secs = span.start.elapsed().as_secs_f64();
        span.inner.registry.histogram(&format!("span.{}", span.name)).record(secs);
        let mut fields = vec![
            ("name".to_string(), Value::from(span.name)),
            ("parent".to_string(), span.parent_name.map_or(Value::Null, Value::from)),
            ("depth".to_string(), Value::Int(span.depth as i64)),
            ("trace_id".to_string(), Value::from(SpanContext::fmt_id(span.ctx.trace_id))),
            ("span_id".to_string(), Value::from(SpanContext::fmt_id(span.ctx.span_id))),
            (
                "parent_id".to_string(),
                span.parent.map_or(Value::Null, |p| Value::from(SpanContext::fmt_id(p.span_id))),
            ),
            ("secs".to_string(), Value::Float(secs)),
        ];
        fields.extend(span.fields);
        span.inner.emit("span", fields);
    }
}

#[cfg(test)]
mod tests {
    use super::SpanContext;
    use crate::Telemetry;

    #[test]
    fn spans_nest_and_report_parents() {
        let (tel, handle) = Telemetry::in_memory();
        {
            let outer = tel.span("outer");
            {
                let _inner = outer.child("inner");
            }
        }
        let events = handle.events().unwrap();
        assert_eq!(events.len(), 2, "inner closes first, then outer");
        let inner = &events[0];
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(inner.get("parent").unwrap().as_str(), Some("outer"));
        assert_eq!(inner.get("depth").unwrap().as_i64(), Some(1));
        let outer = &events[1];
        assert_eq!(outer.get("name").unwrap().as_str(), Some("outer"));
        assert!(outer.get("parent").unwrap().is_null());
        assert_eq!(outer.get("depth").unwrap().as_i64(), Some(0));
        // Ids link the child to its parent and share a trace.
        let outer_span = outer.get("span_id").unwrap().as_str().unwrap();
        assert_eq!(inner.get("parent_id").unwrap().as_str(), Some(outer_span));
        assert_eq!(
            inner.get("trace_id").unwrap().as_str(),
            outer.get("trace_id").unwrap().as_str()
        );
        assert!(outer.get("parent_id").unwrap().is_null());
        // Durations recorded into span histograms, outer >= inner.
        let outer_h = tel.histogram("span.outer");
        let inner_h = tel.histogram("span.inner");
        assert_eq!(outer_h.count(), 1);
        assert_eq!(inner_h.count(), 1);
        assert!(outer_h.sum() >= inner_h.sum());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let (tel, handle) = Telemetry::in_memory();
        {
            let epoch = tel.span("epoch");
            epoch.child("select").cancel();
            {
                let _a = epoch.child("select");
            }
            {
                let _b = epoch.child("evaluate");
            }
        }
        let events = handle.events().unwrap();
        let names: Vec<_> =
            events.iter().map(|e| e.get("name").unwrap().as_str().unwrap().to_string()).collect();
        assert_eq!(names, vec!["select", "evaluate", "epoch"]);
        assert_eq!(events[0].get("parent").unwrap().as_str(), Some("epoch"));
        assert_eq!(events[1].get("parent").unwrap().as_str(), Some("epoch"));
        let epoch_span = events[2].get("span_id").unwrap().as_str().unwrap();
        assert_eq!(events[0].get("parent_id").unwrap().as_str(), Some(epoch_span));
        assert_eq!(events[1].get("parent_id").unwrap().as_str(), Some(epoch_span));
        // The cancelled span left no event and no histogram sample.
        assert_eq!(tel.histogram("span.select").count(), 1);
    }

    #[test]
    fn custom_fields_ride_on_the_span_event() {
        let (tel, handle) = Telemetry::in_memory();
        {
            let mut span = tel.span("phase");
            span.field("epoch", fedl_json::Value::Int(4));
            span.field("worker", fedl_json::Value::Int(1));
        }
        let events = handle.events().unwrap();
        assert_eq!(events[0].get("epoch").unwrap().as_i64(), Some(4));
        assert_eq!(events[0].get("worker").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn remote_parents_link_by_id_not_name() {
        let (tel, handle) = Telemetry::in_memory();
        let remote = SpanContext { trace_id: 0xabc, span_id: 0x123 };
        {
            let _adopted = tel.span_in("worker-phase", Some(remote));
        }
        {
            let _unlinked = tel.span_in("worker-phase", None);
        }
        let events = handle.events().unwrap();
        let adopted = &events[0];
        assert_eq!(adopted.get("trace_id").unwrap().as_str(), Some("0000000000000abc"));
        assert_eq!(adopted.get("parent_id").unwrap().as_str(), Some("0000000000000123"));
        // The remote parent's name is unknown to this process.
        assert!(adopted.get("parent").unwrap().is_null());
        assert_eq!(adopted.get("depth").unwrap().as_i64(), Some(1));
        // No context supplied: the span is still emitted, just unlinked.
        let unlinked = &events[1];
        assert!(unlinked.get("parent_id").unwrap().is_null());
        assert_eq!(unlinked.get("depth").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn cross_thread_spans_keep_their_recorded_parents() {
        // The regression this pins: a global span stack would let a
        // pool thread's span nest under whatever span another thread
        // happened to have open. With pass-the-parent, every child
        // records the parent it was created under, concurrency be
        // damned.
        let (tel, handle) = Telemetry::in_memory();
        let root = tel.span("root");
        let root_ctx = root.ctx();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let tel = tel.clone();
                std::thread::spawn(move || {
                    let mut worker = tel.span_in("worker", root_ctx);
                    worker.field("thread", fedl_json::Value::Int(i));
                    let _step = worker.child("step");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(root);
        let events = handle.events().unwrap();
        let root_id = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("root"))
            .unwrap()
            .get("span_id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let workers: Vec<_> =
            events.iter().filter(|e| e.get("name").unwrap().as_str() == Some("worker")).collect();
        assert_eq!(workers.len(), 4);
        for w in &workers {
            assert_eq!(w.get("parent_id").unwrap().as_str(), Some(root_id.as_str()));
        }
        // Each step span links to *its own* thread's worker span.
        let steps: Vec<_> =
            events.iter().filter(|e| e.get("name").unwrap().as_str() == Some("step")).collect();
        assert_eq!(steps.len(), 4);
        let worker_ids: std::collections::HashSet<&str> =
            workers.iter().map(|w| w.get("span_id").unwrap().as_str().unwrap()).collect();
        let step_parents: std::collections::HashSet<&str> =
            steps.iter().map(|s| s.get("parent_id").unwrap().as_str().unwrap()).collect();
        assert_eq!(step_parents, worker_ids);
        assert_eq!(
            steps.iter().map(|s| s.get("parent").unwrap().as_str()).collect::<Vec<_>>(),
            vec![Some("worker"); 4]
        );
    }

    #[test]
    fn ids_round_trip_through_hex() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(SpanContext::parse_id(&SpanContext::fmt_id(id)), Some(id));
        }
        for bad in ["", "  12", "12 ", "+12", "-12", "0x12", "12345678901234567", "zz"] {
            assert_eq!(SpanContext::parse_id(bad), None, "{bad:?} must not parse");
        }
        assert_eq!(SpanContext::parse_id("ff"), Some(255));
        assert_eq!(SpanContext::parse_id("FF"), Some(255));
    }

    #[test]
    fn disabled_spans_do_nothing() {
        let tel = Telemetry::disabled();
        let span = tel.span("phase");
        assert!(span.ctx().is_none());
        assert!(span.child("sub").ctx().is_none());
        drop(span);
        tel.span("phase").cancel();
        tel.span_in("phase", None).cancel();
        assert!(!tel.enabled());
    }
}
