//! RAII span timers with parent/child nesting.
//!
//! A [`Span`] measures the wall-clock time between its creation
//! (via [`crate::Telemetry::span`]) and its drop. On close it records
//! the duration into the histogram `span.<name>` and emits a `span`
//! event carrying the parent span's name and the nesting depth, so a
//! run log reconstructs the phase tree
//! (`epoch` → `select` / `train` → `round` → `local-train` /
//! `aggregate`).
//!
//! Nesting is tracked on a per-[`crate::Telemetry`] stack: the
//! orchestration path that opens spans is single-threaded in this
//! workspace (worker threads record plain metrics instead), and a span
//! closed out of order simply removes itself from wherever it sits in
//! the stack.

use std::sync::Arc;
use std::time::Instant;

use fedl_json::Value;

use crate::metrics::lock;
use crate::Inner;

/// A live phase timer; the measurement is taken when it drops.
#[must_use = "a span measures until it is dropped; binding it to _ closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// A span that records nothing (what a disabled
    /// [`crate::Telemetry`] hands out).
    pub fn noop() -> Self {
        Self { active: None }
    }

    pub(crate) fn start(inner: Arc<Inner>, id: u64, name: &'static str) -> Self {
        Self { active: Some(ActiveSpan { inner, id, name, start: Instant::now() }) }
    }

    /// Discards the span without recording it (used when the phase it
    /// was opened for turns out not to happen).
    pub fn cancel(mut self) {
        if let Some(span) = self.active.take() {
            let mut stack = lock(&span.inner.span_stack);
            if let Some(pos) = stack.iter().position(|(id, _)| *id == span.id) {
                stack.remove(pos);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let secs = span.start.elapsed().as_secs_f64();
        let (depth, parent) = {
            let mut stack = lock(&span.inner.span_stack);
            match stack.iter().position(|(id, _)| *id == span.id) {
                Some(pos) => {
                    let parent = (pos > 0).then(|| stack[pos - 1].1.clone());
                    stack.remove(pos);
                    (pos, parent)
                }
                None => (0, None), // already cancelled elsewhere; still record
            }
        };
        span.inner.registry.histogram(&format!("span.{}", span.name)).record(secs);
        span.inner.emit(
            "span",
            vec![
                ("name".to_string(), Value::from(span.name)),
                ("parent".to_string(), parent.map_or(Value::Null, Value::from)),
                ("depth".to_string(), Value::from(depth)),
                ("secs".to_string(), Value::Float(secs)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn spans_nest_and_report_parents() {
        let (tel, handle) = Telemetry::in_memory();
        {
            let _outer = tel.span("outer");
            {
                let _inner = tel.span("inner");
            }
        }
        let events = handle.events().unwrap();
        assert_eq!(events.len(), 2, "inner closes first, then outer");
        let inner = &events[0];
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(inner.get("parent").unwrap().as_str(), Some("outer"));
        assert_eq!(inner.get("depth").unwrap().as_i64(), Some(1));
        let outer = &events[1];
        assert_eq!(outer.get("name").unwrap().as_str(), Some("outer"));
        assert!(outer.get("parent").unwrap().is_null());
        assert_eq!(outer.get("depth").unwrap().as_i64(), Some(0));
        // Durations recorded into span histograms, outer >= inner.
        let outer_h = tel.histogram("span.outer");
        let inner_h = tel.histogram("span.inner");
        assert_eq!(outer_h.count(), 1);
        assert_eq!(inner_h.count(), 1);
        assert!(outer_h.sum() >= inner_h.sum());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let (tel, handle) = Telemetry::in_memory();
        {
            let _epoch = tel.span("epoch");
            tel.span("select").cancel();
            {
                let _a = tel.span("select");
            }
            {
                let _b = tel.span("evaluate");
            }
        }
        let events = handle.events().unwrap();
        let names: Vec<_> =
            events.iter().map(|e| e.get("name").unwrap().as_str().unwrap().to_string()).collect();
        assert_eq!(names, vec!["select", "evaluate", "epoch"]);
        assert_eq!(events[0].get("parent").unwrap().as_str(), Some("epoch"));
        assert_eq!(events[1].get("parent").unwrap().as_str(), Some("epoch"));
        // The cancelled span left no event and no histogram sample.
        assert_eq!(tel.histogram("span.select").count(), 1);
    }

    #[test]
    fn disabled_spans_do_nothing() {
        let tel = Telemetry::disabled();
        let span = tel.span("phase");
        drop(span);
        tel.span("phase").cancel();
        assert!(!tel.enabled());
    }
}
