//! Cross-process distributed-trace merging and reporting.
//!
//! A distributed run leaves one run log per process: the coordinator's
//! (`--telemetry trace.jsonl`) plus one per spawned worker
//! (`trace.worker-N.jsonl`). Each log alone is a flat event stream;
//! what links them is the trace context every span event carries
//! (`trace_id`/`span_id`/`parent_id`, see [`crate::SpanContext`]) and
//! the protocol's v3 trace fields, which parent every worker-side
//! `dist.worker_context` / `dist.worker_train` span under the
//! coordinator's `dist.epoch` span for the same epoch.
//!
//! [`merge_traces`] resolves those links into one causally-ordered
//! per-epoch timeline; [`render_trace_report`] prints it as ASCII
//! (waterfall + critical-path attribution) and [`render_trace_html`]
//! as a self-contained HTML document with two inline-SVG panels
//! (`trace-waterfall`, `trace-critical-path`) in the `experiments
//! dashboard` idiom. This is what `experiments trace-report` runs.
//!
//! The critical-path split answers "which worker gated this epoch, and
//! where did the wait go": per epoch the coordinator's per-worker wait
//! spans (`dist.context` / `dist.train`) are charged to the worker's
//! own shard **realize** time, its reply **encode** and request
//! **decode** codec time (from `dist.worker_frame` events), the
//! residual **wire** time (framing, kernel buffers, scheduling), and
//! the coordinator's **merge** time (`dist.merge` spans).

use std::collections::BTreeMap;

use fedl_json::Value;

use crate::report::{fmt_secs, RunLog};
use crate::SpanContext;

/// Chart plot-area geometry (pixels) — the dashboard's layout, carried
/// privately so the two modules can evolve independently.
const PLOT_W: f64 = 560.0;
const PLOT_H: f64 = 200.0;
const M_LEFT: f64 = 70.0;
const M_TOP: f64 = 10.0;
const M_RIGHT: f64 = 10.0;
const M_BOTTOM: f64 = 30.0;
/// Epoch rows drawn per SVG panel; later epochs are dropped with a
/// visible note so the file stays bounded for long campaigns.
const MAX_EPOCH_ROWS: usize = 24;
/// Segment colors: realize, encode, wire, decode, merge.
const SEGMENT_COLORS: [&str; 5] = ["#2563eb", "#059669", "#9ca3af", "#d97706", "#7c3aed"];
const SEGMENT_NAMES: [&str; 5] = ["realize", "encode", "wire", "decode", "merge"];

/// One input's parse summary, reported for every input unconditionally
/// so multi-log output stays line-for-line comparable across runs.
#[derive(Debug, Clone)]
pub struct InputSummary {
    /// Display label (the file stem).
    pub label: String,
    /// Parsed events.
    pub events: usize,
    /// Malformed lines skipped by the lenient JSONL parser.
    pub skipped: usize,
}

/// A worker's merged view of one epoch.
#[derive(Debug, Clone, Default)]
pub struct WorkerEpoch {
    /// Coordinator-side wait for this worker's context reply (secs).
    pub context_wait: f64,
    /// Coordinator-side wait for this worker's train reply (secs).
    pub train_wait: f64,
    /// Worker-side shard realize time (resolved `dist.worker_*` spans).
    pub realize_secs: f64,
    /// Worker-side reply encode time (from `dist.worker_frame`).
    pub encode_secs: f64,
    /// Worker-side request decode time (from `dist.worker_frame`).
    pub decode_secs: f64,
}

impl WorkerEpoch {
    /// Total coordinator-side wait charged to this worker.
    pub fn wait(&self) -> f64 {
        self.context_wait + self.train_wait
    }

    /// Residual wait not explained by realize or codec time: framing,
    /// kernel buffers, scheduling — the wire share.
    pub fn wire_secs(&self) -> f64 {
        (self.wait() - self.realize_secs - self.encode_secs - self.decode_secs).max(0.0)
    }
}

/// One epoch of the merged cross-process timeline.
#[derive(Debug, Clone)]
pub struct EpochTrace {
    /// Epoch index.
    pub epoch: usize,
    /// The coordinator's `dist.epoch` span duration.
    pub total_secs: f64,
    /// Per-worker breakdown, indexed like the worker log inputs.
    pub workers: Vec<WorkerEpoch>,
    /// Coordinator-side merge time (`dist.merge` spans).
    pub merge_secs: f64,
}

impl EpochTrace {
    /// The worker the epoch waited on longest, if any wait was seen.
    pub fn gate(&self) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.wait() > 0.0)
            .max_by(|a, b| a.1.wait().total_cmp(&b.1.wait()))
            .map(|(i, _)| i)
    }
}

/// The merged model [`merge_traces`] produces.
#[derive(Debug, Clone)]
pub struct TraceModel {
    /// Per-input parse summaries: coordinator first, then workers.
    pub inputs: Vec<InputSummary>,
    /// Epochs in order.
    pub epochs: Vec<EpochTrace>,
    /// Worker shard spans whose `(trace_id, parent_id)` resolved to a
    /// coordinator `dist.epoch` span.
    pub resolved_spans: usize,
    /// All worker shard spans (`dist.worker_context` / `_train`).
    pub worker_spans: usize,
}

impl TraceModel {
    /// The linkage line `scripts/ci.sh` asserts on, e.g.
    /// `worker span linkage: 24/24 resolved (100%)`.
    pub fn linkage_line(&self) -> String {
        let pct = if self.worker_spans == 0 {
            100.0
        } else {
            100.0 * self.resolved_spans as f64 / self.worker_spans as f64
        };
        format!(
            "worker span linkage: {}/{} resolved ({:.0}%)",
            self.resolved_spans, self.worker_spans, pct
        )
    }
}

/// A span event lifted out of a run log.
struct SpanRow {
    name: String,
    trace_id: Option<u64>,
    parent_id: Option<u64>,
    span_id: Option<u64>,
    secs: f64,
    epoch: Option<usize>,
    worker: Option<usize>,
}

fn hex_id(event: &Value, key: &str) -> Option<u64> {
    event.get(key).and_then(Value::as_str).and_then(SpanContext::parse_id)
}

fn span_rows(log: &RunLog) -> Vec<SpanRow> {
    log.events()
        .iter()
        .filter(|e| e.get("kind").and_then(Value::as_str) == Some("span"))
        .filter_map(|e| {
            Some(SpanRow {
                name: e.get("name")?.as_str()?.to_string(),
                trace_id: hex_id(e, "trace_id"),
                parent_id: hex_id(e, "parent_id"),
                span_id: hex_id(e, "span_id"),
                secs: e.get("secs").and_then(Value::as_f64).unwrap_or(0.0),
                epoch: e.get("epoch").and_then(Value::as_usize),
                worker: e.get("worker").and_then(Value::as_usize),
            })
        })
        .collect()
}

/// Merges one coordinator log plus any number of worker logs into the
/// per-epoch cross-process timeline. The first input is the
/// coordinator; worker inputs follow in shard order (worker `N` of a
/// spawned run writes `<base>.worker-N.jsonl`).
pub fn merge_traces(runs: &[(String, RunLog)]) -> Result<TraceModel, String> {
    let Some(((_, coord), worker_runs)) = runs.split_first() else {
        return Err("trace-report needs at least a coordinator log".to_string());
    };
    let inputs = runs
        .iter()
        .map(|(label, log)| InputSummary {
            label: label.clone(),
            events: log.events().len(),
            skipped: log.skipped_lines(),
        })
        .collect();

    let coord_spans = span_rows(coord);
    // (trace_id, span_id) of every coordinator epoch span → its epoch.
    let mut epoch_of: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut epochs: BTreeMap<usize, EpochTrace> = BTreeMap::new();
    let blank = |epoch: usize| EpochTrace {
        epoch,
        total_secs: 0.0,
        workers: vec![WorkerEpoch::default(); worker_runs.len()],
        merge_secs: 0.0,
    };
    for row in &coord_spans {
        let Some(epoch) = row.epoch else { continue };
        match row.name.as_str() {
            "dist.epoch" => {
                if let (Some(t), Some(s)) = (row.trace_id, row.span_id) {
                    epoch_of.insert((t, s), epoch);
                }
                epochs.entry(epoch).or_insert_with(|| blank(epoch)).total_secs += row.secs;
            }
            "dist.context" | "dist.train" => {
                let entry = epochs.entry(epoch).or_insert_with(|| blank(epoch));
                if let Some(w) = row.worker.filter(|&w| w < worker_runs.len()) {
                    if row.name == "dist.context" {
                        entry.workers[w].context_wait += row.secs;
                    } else {
                        entry.workers[w].train_wait += row.secs;
                    }
                }
            }
            _ => {}
        }
    }
    // Merge spans are children of the epoch span; resolve by parent id
    // (their own `epoch` field is absent — they carry no custom
    // fields), falling back to nothing if unlinked.
    for row in &coord_spans {
        if row.name != "dist.merge" {
            continue;
        }
        let Some((t, p)) = row.trace_id.zip(row.parent_id) else { continue };
        if let Some(&epoch) = epoch_of.get(&(t, p)) {
            if let Some(entry) = epochs.get_mut(&epoch) {
                entry.merge_secs += row.secs;
            }
        }
    }

    let mut resolved_spans = 0usize;
    let mut worker_spans = 0usize;
    for (w, (_, log)) in worker_runs.iter().enumerate() {
        for row in span_rows(log) {
            if !row.name.starts_with("dist.worker_") {
                continue;
            }
            worker_spans += 1;
            let resolved = row
                .trace_id
                .zip(row.parent_id)
                .and_then(|key| epoch_of.get(&key))
                .copied()
                .or(row.epoch.filter(|_| false)); // ids only — never guess from fields
            let Some(epoch) = resolved else { continue };
            resolved_spans += 1;
            if let Some(entry) = epochs.get_mut(&epoch) {
                entry.workers[w].realize_secs += row.secs;
            }
        }
        // Codec time from the per-frame wire events, charged to the
        // epoch the frame was about.
        for event in log.events() {
            if event.get("kind").and_then(Value::as_str) != Some("dist.worker_frame") {
                continue;
            }
            let Some(epoch) = event.get("epoch").and_then(Value::as_usize) else { continue };
            let ns =
                |key: &str| event.get(key).and_then(Value::as_f64).unwrap_or(0.0).max(0.0) / 1e9;
            if let Some(entry) = epochs.get_mut(&epoch) {
                entry.workers[w].decode_secs += ns("decode_ns");
                entry.workers[w].encode_secs += ns("encode_ns");
            }
        }
    }
    Ok(TraceModel { inputs, epochs: epochs.into_values().collect(), resolved_spans, worker_spans })
}

/// A 24-cell ASCII bar: `share` of it filled with `#`.
fn ascii_bar(share: f64) -> String {
    let cells = 24usize;
    let filled = ((share.clamp(0.0, 1.0)) * cells as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), " ".repeat(cells - filled))
}

/// Renders the ASCII trace report: per-input parse summaries (always,
/// including zero-skip inputs), the linkage line, the per-epoch
/// waterfall, and the critical-path attribution table.
pub fn render_trace_report(runs: &[(String, RunLog)]) -> Result<String, String> {
    let model = merge_traces(runs)?;
    let mut out = format!(
        "cross-process trace: 1 coordinator + {} worker log(s)\n",
        model.inputs.len().saturating_sub(1)
    );
    for input in &model.inputs {
        out.push_str(&format!(
            "  {}: {} events, skipped {} malformed line(s)\n",
            input.label, input.events, input.skipped
        ));
    }
    out.push_str(&model.linkage_line());
    out.push('\n');
    if model.epochs.is_empty() {
        out.push_str("no dist.epoch spans in the coordinator log — nothing to trace\n");
        return Ok(out);
    }
    out.push_str("\nper-epoch waterfall (bar = share of the epoch's wall time):\n");
    for e in &model.epochs {
        let total = e.total_secs.max(1e-12);
        out.push_str(&format!("epoch {:>3}  total {}\n", e.epoch, fmt_secs(e.total_secs)));
        for (w, we) in e.workers.iter().enumerate() {
            out.push_str(&format!(
                "  worker {w} {} wait {} (realize {}, codec {}, wire {})\n",
                ascii_bar(we.wait() / total),
                fmt_secs(we.wait()),
                fmt_secs(we.realize_secs),
                fmt_secs(we.encode_secs + we.decode_secs),
                fmt_secs(we.wire_secs()),
            ));
        }
        out.push_str(&format!(
            "  merge    {} {}\n",
            ascii_bar(e.merge_secs / total),
            fmt_secs(e.merge_secs)
        ));
    }
    out.push_str(&format!(
        "\ncritical-path attribution (gating worker per epoch):\n\
         {:>6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "epoch", "gate", "wait", "realize", "encode", "wire", "decode", "merge"
    ));
    for e in &model.epochs {
        let (gate, w) = match e.gate() {
            Some(i) => (format!("worker-{i}"), e.workers[i].clone()),
            None => ("—".to_string(), WorkerEpoch::default()),
        };
        out.push_str(&format!(
            "{:>6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            e.epoch,
            gate,
            fmt_secs(w.wait()),
            fmt_secs(w.realize_secs),
            fmt_secs(w.encode_secs),
            fmt_secs(w.wire_secs()),
            fmt_secs(w.decode_secs),
            fmt_secs(e.merge_secs),
        ));
    }
    Ok(out)
}

fn svg_open(id: &str) -> String {
    let w = M_LEFT + PLOT_W + M_RIGHT;
    let h = M_TOP + PLOT_H + M_BOTTOM;
    format!(
        r#"<svg id="{id}" viewBox="0 0 {w} {h}" width="{w}" height="{h}" xmlns="http://www.w3.org/2000/svg">"#
    )
}

fn empty_panel(id: &str, note: &str) -> String {
    format!(
        "{}<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" class=\"empty\">{note}</text></svg>",
        svg_open(id),
        M_LEFT + PLOT_W / 2.0,
        M_TOP + PLOT_H / 2.0
    )
}

/// The five-way split of one epoch's critical path, in
/// [`SEGMENT_NAMES`] order.
fn gate_segments(e: &EpochTrace) -> [f64; 5] {
    let w = match e.gate() {
        Some(i) => e.workers[i].clone(),
        None => WorkerEpoch::default(),
    };
    [w.realize_secs, w.encode_secs, w.wire_secs(), w.decode_secs, e.merge_secs]
}

/// Stacked horizontal bars, one row per epoch: the `trace-waterfall`
/// panel stacks every worker's wait (worker share in blue, residual
/// grey); the `trace-critical-path` panel stacks the gate's five-way
/// split. Both share this renderer, differing only in the segments.
fn stacked_bars(id: &str, rows: &[(String, Vec<(f64, &str)>)]) -> String {
    if rows.is_empty() || !rows.iter().any(|(_, segs)| segs.iter().any(|(v, _)| *v > 0.0)) {
        return empty_panel(id, "no trace data");
    }
    let shown = &rows[..rows.len().min(MAX_EPOCH_ROWS)];
    let max_total: f64 = shown
        .iter()
        .map(|(_, segs)| segs.iter().map(|(v, _)| v).sum::<f64>())
        .fold(0.0, f64::max)
        .max(1e-12);
    let bar_h = (PLOT_H / shown.len() as f64).min(22.0);
    let mut out = svg_open(id);
    for (i, (label, segs)) in shown.iter().enumerate() {
        let y = M_TOP + i as f64 * bar_h;
        let mut x = M_LEFT;
        for (value, color) in segs {
            if *value <= 0.0 {
                continue;
            }
            let w = value / max_total * PLOT_W;
            out.push_str(&format!(
                r#"<rect x="{x:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}"/>"#,
                y + 2.0,
                w.max(0.5),
                bar_h - 4.0,
            ));
            x += w.max(0.5);
        }
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
            M_LEFT - 4.0,
            y + bar_h / 2.0 + 4.0,
            escape(label)
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" class="tick">{}</text>"#,
            x + 6.0,
            y + bar_h / 2.0 + 4.0,
            fmt_secs(segs.iter().map(|(v, _)| v).sum()),
        ));
    }
    if rows.len() > shown.len() {
        out.push_str(&format!(
            r#"<text x="{M_LEFT}" y="{:.1}" class="tick">… {} more epoch(s) not drawn</text>"#,
            M_TOP + PLOT_H + 16.0,
            rows.len() - shown.len()
        ));
    }
    out.push_str("</svg>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the self-contained HTML trace report: the same parse
/// summaries and linkage line as the ASCII report, the
/// `trace-waterfall` panel (per-epoch per-worker wait, realize share
/// in blue), the `trace-critical-path` panel (the gate's five-way
/// split with a legend), and the attribution table. No external
/// assets, same contract as the dashboard.
pub fn render_trace_html(runs: &[(String, RunLog)]) -> Result<String, String> {
    let model = merge_traces(runs)?;
    let mut body = String::new();
    body.push_str("<ul>");
    for input in &model.inputs {
        body.push_str(&format!(
            "<li>{}: {} events, skipped {} malformed line(s)</li>",
            escape(&input.label),
            input.events,
            input.skipped
        ));
    }
    body.push_str("</ul>");
    body.push_str(&format!("<p>{}</p>", model.linkage_line()));

    let waterfall_rows: Vec<(String, Vec<(f64, &str)>)> = model
        .epochs
        .iter()
        .map(|e| {
            let mut segs: Vec<(f64, &str)> = Vec::new();
            for we in &e.workers {
                segs.push((we.realize_secs, SEGMENT_COLORS[0]));
                segs.push((we.wire_secs() + we.encode_secs + we.decode_secs, SEGMENT_COLORS[2]));
            }
            segs.push((e.merge_secs, SEGMENT_COLORS[4]));
            (format!("epoch {}", e.epoch), segs)
        })
        .collect();
    let critical_rows: Vec<(String, Vec<(f64, &str)>)> = model
        .epochs
        .iter()
        .map(|e| {
            let segs =
                gate_segments(e).into_iter().zip(SEGMENT_COLORS).collect::<Vec<(f64, &str)>>();
            let gate = e.gate().map_or("—".to_string(), |i| format!("w{i}"));
            (format!("epoch {} ({gate})", e.epoch), segs)
        })
        .collect();
    let legend: String = SEGMENT_NAMES
        .iter()
        .zip(SEGMENT_COLORS)
        .map(|(name, color)| {
            format!("<span class=\"swatch\" style=\"background:{color}\"></span>{name}&nbsp;&nbsp;")
        })
        .collect();
    body.push_str(&format!(
        "<section><h2>Per-epoch waterfall</h2>{}</section>",
        stacked_bars("trace-waterfall", &waterfall_rows)
    ));
    body.push_str(&format!(
        "<section><h2>Critical path (gating worker per epoch)</h2><p>{legend}</p>{}</section>",
        stacked_bars("trace-critical-path", &critical_rows)
    ));
    body.push_str(
        "<section><h2>Critical-path attribution</h2><table><thead><tr><th>epoch</th>\
         <th>gate</th><th>wait</th><th>realize</th><th>encode</th><th>wire</th>\
         <th>decode</th><th>merge</th></tr></thead><tbody>",
    );
    for e in &model.epochs {
        let (gate, w) = match e.gate() {
            Some(i) => (format!("worker-{i}"), e.workers[i].clone()),
            None => ("—".to_string(), WorkerEpoch::default()),
        };
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td></tr>",
            e.epoch,
            gate,
            fmt_secs(w.wait()),
            fmt_secs(w.realize_secs),
            fmt_secs(w.encode_secs),
            fmt_secs(w.wire_secs()),
            fmt_secs(w.decode_secs),
            fmt_secs(e.merge_secs),
        ));
    }
    body.push_str("</tbody></table></section>");
    Ok(format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>FedL distributed trace</title><style>\
         body{{font-family:system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#111}}\
         h2{{font-size:1rem;margin:1.2rem 0 0.3rem}}\
         .tick{{font-size:10px;fill:#6b7280}}\
         .empty{{font-size:12px;fill:#6b7280}}\
         .swatch{{display:inline-block;width:10px;height:10px;margin-right:4px}}\
         table{{border-collapse:collapse;font-size:0.85rem}}\
         th,td{{border:1px solid #d1d5db;padding:2px 8px;text-align:right}}\
         </style></head><body><h1>FedL distributed trace — {} log(s)</h1>{body}</body></html>",
        model.inputs.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// Simulates a 2-worker distributed epoch with the real span API:
    /// the coordinator opens `dist.epoch` + per-worker wait spans and
    /// ships its context; each worker adopts it via `span_in`.
    fn simulated_logs(epochs: usize) -> Vec<(String, RunLog)> {
        let (coord, coord_sink) = Telemetry::in_memory();
        let worker_tels: Vec<_> = (0..2).map(|_| Telemetry::in_memory()).collect();
        for epoch in 0..epochs {
            let mut epoch_span = coord.span("dist.epoch");
            epoch_span.field("epoch", Value::from(epoch));
            let ctx = epoch_span.ctx();
            for (w, (wtel, _)) in worker_tels.iter().enumerate() {
                for (phase, wname) in
                    [("dist.context", "dist.worker_context"), ("dist.train", "dist.worker_train")]
                {
                    let mut wait = coord.span_in(phase, ctx);
                    wait.field("worker", Value::from(w));
                    wait.field("epoch", Value::from(epoch));
                    let mut shard = wtel.span_in(wname, ctx);
                    shard.field("epoch", Value::from(epoch));
                    drop(shard);
                    drop(wait);
                }
                wtel.emit(
                    "dist.worker_frame",
                    vec![
                        ("type", Value::from("ShardContext")),
                        ("epoch", Value::from(epoch)),
                        ("decode_ns", Value::Int(10_000)),
                        ("encode_ns", Value::Int(20_000)),
                    ],
                );
            }
            let _merge = epoch_span.child("dist.merge");
        }
        let mut runs = vec![("coord".to_string(), RunLog::parse(&coord_sink.lines().join("\n")))];
        for (i, (_, sink)) in worker_tels.iter().enumerate() {
            runs.push((format!("coord.worker-{i}"), RunLog::parse(&sink.lines().join("\n"))));
        }
        runs
    }

    #[test]
    fn merged_model_resolves_every_worker_span() {
        let runs = simulated_logs(3);
        let model = merge_traces(&runs).unwrap();
        assert_eq!(model.epochs.len(), 3);
        // 2 workers × 2 shard spans × 3 epochs, all linked by id.
        assert_eq!(model.worker_spans, 12);
        assert_eq!(model.resolved_spans, 12);
        assert_eq!(model.linkage_line(), "worker span linkage: 12/12 resolved (100%)");
        for e in &model.epochs {
            assert_eq!(e.workers.len(), 2);
            for w in &e.workers {
                assert!(w.realize_secs > 0.0, "worker spans must contribute realize time");
                assert!(w.wait() >= 0.0);
                assert!((w.decode_secs - 1e-5).abs() < 1e-12, "one frame event per worker-epoch");
                assert!((w.encode_secs - 2e-5).abs() < 1e-12);
            }
            assert!(e.merge_secs > 0.0, "merge spans must resolve through the epoch parent");
            assert!(e.gate().is_some());
        }
    }

    #[test]
    fn unlinked_worker_spans_lower_the_resolution_rate() {
        let mut runs = simulated_logs(2);
        // A v2 peer's log: spans exist but carry a foreign trace — the
        // ids never resolve against this coordinator.
        let (orphan, sink) = Telemetry::in_memory();
        {
            let mut s = orphan.span("dist.worker_context");
            s.field("epoch", Value::from(0usize));
        }
        runs.push(("v2-worker".to_string(), RunLog::parse(&sink.lines().join("\n"))));
        let model = merge_traces(&runs).unwrap();
        assert_eq!(model.worker_spans, 9);
        assert_eq!(model.resolved_spans, 8);
        assert!(model.linkage_line().contains("8/9"), "{}", model.linkage_line());
        assert!(!model.linkage_line().contains("(100%)"));
    }

    #[test]
    fn ascii_report_prints_every_input_and_the_tables() {
        let runs = simulated_logs(2);
        let text = render_trace_report(&runs).unwrap();
        for label in ["coord:", "coord.worker-0:", "coord.worker-1:"] {
            assert!(text.contains(label), "missing input summary {label}: {text}");
        }
        // Skip counts appear even when zero — inputs stay comparable.
        assert_eq!(text.matches("skipped 0 malformed line(s)").count(), 3, "{text}");
        assert!(text.contains("worker span linkage: 8/8 resolved (100%)"), "{text}");
        assert!(text.contains("per-epoch waterfall"), "{text}");
        assert!(text.contains("critical-path attribution"), "{text}");
        assert!(text.contains("epoch   0"), "{text}");
        assert!(text.contains("worker-"), "gate column names a worker: {text}");
    }

    #[test]
    fn html_report_is_self_contained_with_both_panels() {
        let runs = simulated_logs(2);
        let html = render_trace_html(&runs).unwrap();
        for id in ["trace-waterfall", "trace-critical-path"] {
            assert!(html.contains(&format!("<svg id=\"{id}\"")), "missing panel {id}");
        }
        assert!(html.contains("Critical-path attribution"));
        for needle in ["<script", "<link", "src="] {
            assert!(!html.contains(needle), "external reference via {needle}");
        }
        assert_eq!(
            html.matches("http://").count(),
            2,
            "only the two SVG xmlns declarations: {html}"
        );
    }

    #[test]
    fn degenerate_inputs_are_reported_not_panics() {
        assert!(merge_traces(&[]).is_err());
        // A coordinator log with no spans at all.
        let runs = vec![("empty".to_string(), RunLog::parse(""))];
        let text = render_trace_report(&runs).unwrap();
        assert!(text.contains("nothing to trace"), "{text}");
        assert!(text.contains("worker span linkage: 0/0 resolved (100%)"), "{text}");
        // Malformed lines are counted per input, never fatal.
        let runs = vec![
            ("coord".to_string(), RunLog::parse("{\"kind\":\"span\"}\nnot json\n")),
            ("w".to_string(), RunLog::parse("also not json\n")),
        ];
        let text = render_trace_report(&runs).unwrap();
        assert!(text.contains("coord: 1 events, skipped 1 malformed line(s)"), "{text}");
        assert!(text.contains("w: 0 events, skipped 1 malformed line(s)"), "{text}");
    }
}
