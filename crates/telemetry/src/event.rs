//! The structured event log: a pluggable line-oriented sink receiving
//! one compact JSON object per event.
//!
//! Two sinks ship with the crate: [`MemorySink`] for tests (snapshot the
//! lines through its [`MemoryHandle`]) and [`FileSink`] for experiment
//! runs. Anything implementing [`EventSink`] plugs in the same way.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use fedl_json::Value;

use crate::metrics::lock;

/// Destination of the JSONL event stream.
pub trait EventSink: Send {
    /// Writes one line (the line terminator is added by the sink).
    fn write_line(&mut self, line: &str) -> io::Result<()>;

    /// Flushes buffered lines to the backing store.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-memory sink; the paired [`MemoryHandle`] reads the lines back.
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates the sink plus the handle that can read what it captured.
    pub fn new() -> (Self, MemoryHandle) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (Self { lines: lines.clone() }, MemoryHandle { lines })
    }
}

impl EventSink for MemorySink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        lock(&self.lines).push(line.to_string());
        Ok(())
    }
}

/// Reader side of a [`MemorySink`].
#[derive(Clone)]
pub struct MemoryHandle {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryHandle {
    /// Snapshot of every line written so far.
    pub fn lines(&self) -> Vec<String> {
        lock(&self.lines).clone()
    }

    /// Number of lines written so far.
    pub fn len(&self) -> usize {
        lock(&self.lines).len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every line parsed back into a JSON value.
    pub fn events(&self) -> Result<Vec<Value>, fedl_json::Error> {
        self.lines().iter().map(|l| Value::parse(l)).collect()
    }
}

/// Buffered file sink for experiment run logs.
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the log file, creating parent directories.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(Self { out: BufWriter::new(File::create(path)?) })
    }
}

impl EventSink for FileSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trips() {
        let (mut sink, handle) = MemorySink::new();
        assert!(handle.is_empty());
        sink.write_line(r#"{"kind":"x","n":1}"#).unwrap();
        sink.write_line(r#"{"kind":"y","n":2}"#).unwrap();
        assert_eq!(handle.len(), 2);
        let events = handle.events().unwrap();
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("x"));
        assert_eq!(events[1].get("n").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join("fedl_telemetry_sink_test");
        let path = dir.join("log.jsonl");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.write_line("{\"a\":1}").unwrap();
            sink.write_line("{\"a\":2}").unwrap();
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
