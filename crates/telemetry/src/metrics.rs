//! Named metric instruments — counters, gauges, and log-bucketed
//! histograms — behind a get-or-create [`Registry`].
//!
//! Everything here is lock-free on the record path: a counter add is one
//! `fetch_add`, a gauge set is one `store`, and a histogram record is a
//! bucket `fetch_add` plus a handful of CAS loops for the running
//! sum/min/max. Name resolution (`Registry::counter` etc.) takes a
//! short mutex; hot paths should resolve once and cache the returned
//! handle, which is a cheap `Arc` clone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use fedl_json::Value;

/// Number of histogram buckets.
const BUCKETS: usize = 368;
/// Lower edge of the first bucket (values at or below land in bucket 0).
const MIN_VALUE: f64 = 1e-9;
/// `ln(1e18)` — the log-width of the covered range `[1e-9, 1e9)`.
const LN_SPAN: f64 = 41.446_531_673_892_82;

/// Locks a mutex, recovering from poisoning (telemetry must never add a
/// second panic on an unwinding thread).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn atomic_f64_update(cell: &AtomicU64, v: f64, combine: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = combine(f64::from_bits(cur), v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing event count. The handle is a no-op when
/// obtained from a disabled [`crate::Telemetry`].
#[derive(Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count (0 for a disabled handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins float value (e.g. "budget remaining").
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn value(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared storage of one histogram (see [`Histogram`]).
pub struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= MIN_VALUE {
            return 0;
        }
        let idx = ((v / MIN_VALUE).ln() / LN_SPAN * BUCKETS as f64) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Geometric midpoint of bucket `i`.
    fn bucket_mid(i: usize) -> f64 {
        MIN_VALUE * ((i as f64 + 0.5) * LN_SPAN / BUCKETS as f64).exp()
    }
}

/// A log-bucketed histogram of non-negative values.
///
/// Buckets are geometric over `[1e-9, 1e9)` with ratio
/// `1e18^(1/368) ≈ 1.12` per bucket, so a quantile estimate is within
/// ~6 % relative error of the true sample quantile (values outside the
/// range clamp into the edge buckets; exact min/max are tracked
/// separately and bound every estimate). Negative and non-finite
/// samples are ignored.
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        let Some(cell) = &self.0 else { return };
        if !v.is_finite() || v < 0.0 {
            return;
        }
        cell.buckets[HistogramCell::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&cell.sum_bits, v, |a, b| a + b);
        atomic_f64_update(&cell.min_bits, v, f64::min);
        atomic_f64_update(&cell.max_bits, v, f64::max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| f64::from_bits(c.sum_bits.load(Ordering::Relaxed)))
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        let cell = self.0.as_ref()?;
        (self.count() > 0).then(|| f64::from_bits(cell.min_bits.load(Ordering::Relaxed)))
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        let cell = self.0.as_ref()?;
        (self.count() > 0).then(|| f64::from_bits(cell.max_bits.load(Ordering::Relaxed)))
    }

    /// The `q`-quantile estimate, `q ∈ [0, 1]` (`None` when empty).
    /// `quantile(0.5)` is the median, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let cell = self.0.as_ref()?;
        let count = cell.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in cell.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                let lo = f64::from_bits(cell.min_bits.load(Ordering::Relaxed));
                let hi = f64::from_bits(cell.max_bits.load(Ordering::Relaxed));
                return Some(HistogramCell::bucket_mid(i).clamp(lo, hi));
            }
        }
        self.max() // unreachable unless counts raced; the max is safe
    }

    /// Compact JSON summary (`count`, `mean`, `p50`, `p90`, `p99`,
    /// `min`, `max`) for metric-snapshot events.
    pub fn summary(&self) -> Value {
        fedl_json::obj(vec![
            ("count", Value::Int(self.count() as i64)),
            ("mean", opt_f(self.mean())),
            ("p50", opt_f(self.quantile(0.5))),
            ("p90", opt_f(self.quantile(0.9))),
            ("p99", opt_f(self.quantile(0.99))),
            ("min", opt_f(self.min())),
            ("max", opt_f(self.max())),
        ])
    }
}

fn opt_f(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Float)
}

/// Get-or-create store of named instruments. Two lookups of the same
/// name return handles over the same storage.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCell>)>>,
}

fn get_or_insert<T>(
    table: &Mutex<Vec<(String, Arc<T>)>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let mut table = lock(table);
    if let Some((_, cell)) = table.iter().find(|(n, _)| n == name) {
        return cell.clone();
    }
    let cell = Arc::new(make());
    table.push((name.to_string(), cell.clone()));
    cell
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(Some(get_or_insert(&self.counters, name, || AtomicU64::new(0))))
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(Some(get_or_insert(&self.gauges, name, || AtomicU64::new(0f64.to_bits()))))
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(Some(get_or_insert(&self.histograms, name, HistogramCell::new)))
    }

    /// One JSON object per instrument family, keys sorted by name:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn snapshot(&self) -> Value {
        let mut counters: Vec<(String, Value)> = lock(&self.counters)
            .iter()
            .map(|(n, c)| (n.clone(), Value::Int(c.load(Ordering::Relaxed) as i64)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, Value)> = lock(&self.gauges)
            .iter()
            .map(|(n, c)| (n.clone(), Value::Float(f64::from_bits(c.load(Ordering::Relaxed)))))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, Value)> = lock(&self.histograms)
            .iter()
            .map(|(n, c)| (n.clone(), Histogram(Some(c.clone())).summary()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(vec![
            ("counters".to_string(), Value::Obj(counters)),
            ("gauges".to_string(), Value::Obj(gauges)),
            ("histograms".to_string(), Value::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("epochs");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Same name -> same storage.
        assert_eq!(r.counter("epochs").value(), 5);
        let g = r.gauge("budget");
        g.set(12.5);
        assert_eq!(g.value(), 12.5);
        g.set(-3.0);
        assert_eq!(r.gauge("budget").value(), -3.0);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.incr();
        assert_eq!(c.value(), 0);
        let g = Gauge::default();
        g.set(9.0);
        assert_eq!(g.value(), 0.0);
        let h = Histogram::default();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0.5, 1.5, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 4.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(2.0));
        assert!((h.mean().unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_order_correct() {
        let r = Registry::new();
        let h = r.histogram("q");
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((p50 - 5.0).abs() / 5.0 < 0.07, "p50 {p50}");
        assert!((p90 - 9.0).abs() / 9.0 < 0.07, "p90 {p90}");
        assert!((p99 - 9.9).abs() / 9.9 < 0.07, "p99 {p99}");
    }

    #[test]
    fn histogram_ignores_bad_samples() {
        let r = Registry::new();
        let h = r.histogram("bad");
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        h.record(0.0); // clamps into the first bucket, min/max exact
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let r = Registry::new();
        let h = r.histogram("edge");
        h.record(1e-15);
        h.record(1e15);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(1e-15));
        assert_eq!(h.quantile(1.0), Some(1e15));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").incr();
        r.counter("a").add(2);
        r.gauge("g").set(1.0);
        r.histogram("h").record(0.5);
        let snap = r.snapshot();
        let counters = snap.get("counters").unwrap();
        match counters {
            Value::Obj(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(snap.get("gauges").unwrap().get("g").unwrap().as_f64(), Some(1.0));
        let h = snap.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_i64(), Some(1));
    }
}
