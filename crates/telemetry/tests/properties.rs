//! Property-style checks for the telemetry crate against a seeded
//! reference: histogram quantiles vs exact sample quantiles, span
//! tree structure, and the JSONL round trip through `fedl-json`.

use fedl_linalg::rng::{Distribution, Exponential, Normal, Rng, Xoshiro256pp};
use fedl_telemetry::{RunLog, Telemetry};

/// Exact quantile of an ascending-sorted sample (nearest-rank).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

#[test]
fn histogram_quantiles_track_seeded_reference() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5eed);
    let tel = Telemetry::with_sink(Box::new(fedl_telemetry::MemorySink::new().0));
    let hist = tel.histogram("latency");

    // Long-tailed sample, like per-epoch latencies: exp(1) scaled into
    // a milliseconds-to-minutes range.
    let exp = Exponential::new(1.0);
    let mut samples: Vec<f64> = (0..20_000).map(|_| 0.002 + 3.0 * exp.sample(&mut rng)).collect();
    for &s in &samples {
        hist.record(s);
    }
    samples.sort_by(|a, b| a.total_cmp(b));

    assert_eq!(hist.count(), samples.len() as u64);
    let sum: f64 = samples.iter().sum();
    assert!((hist.sum() - sum).abs() < 1e-6 * sum.abs());

    // The log-bucketed layout guarantees ~6% relative error per bucket;
    // allow 7% slack.
    for q in [0.10, 0.50, 0.90, 0.99] {
        let expected = exact_quantile(&samples, q);
        let got = hist.quantile(q).unwrap();
        let rel = (got - expected).abs() / expected;
        assert!(
            rel < 0.07,
            "q={q}: histogram said {got}, reference said {expected} (rel err {rel:.4})"
        );
    }
    // Extremes are clamped to observed bounds, so they are exact.
    assert_eq!(hist.quantile(0.0).unwrap(), samples[0]);
    assert_eq!(hist.quantile(1.0).unwrap(), *samples.last().unwrap());
}

/// The documented accuracy contract: p50/p90/p99 within ~6 % of the
/// exact sample quantiles (7 % asserted, leaving slack for the bucket
/// boundary), checked across three seeded distributions with very
/// different shapes — flat, long-tailed, and multiplicative-spread.
#[test]
#[allow(clippy::type_complexity)]
fn histogram_quantile_accuracy_across_distributions() {
    let cases: [(&str, Box<dyn Fn(&mut Xoshiro256pp) -> f64>); 3] = [
        // Flat: uniform seconds, the shape of evaluate-phase spans.
        ("uniform", Box::new(|rng: &mut Xoshiro256pp| rng.gen_range(0.05..2.0))),
        // Long tail: exponential, the shape of epoch latencies.
        (
            "exponential",
            Box::new(|rng: &mut Xoshiro256pp| 0.001 + Exponential::new(0.5).sample(rng)),
        ),
        // Multiplicative spread: log-normal, the shape of per-client
        // compute times across heterogeneous hardware.
        ("log-normal", Box::new(|rng: &mut Xoshiro256pp| Normal::new(-1.0, 0.8).sample(rng).exp())),
    ];
    for (seed, (name, draw)) in cases.into_iter().enumerate() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xACC0 + seed as u64);
        let tel = Telemetry::with_sink(Box::new(fedl_telemetry::MemorySink::new().0));
        let hist = tel.histogram("h");
        let mut samples: Vec<f64> = (0..20_000).map(|_| draw(&mut rng)).collect();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        for q in [0.50, 0.90, 0.99] {
            let expected = exact_quantile(&samples, q);
            let got = hist.quantile(q).unwrap();
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.07,
                "{name} q={q}: histogram said {got}, reference said {expected} \
                 (rel err {rel:.4})"
            );
        }
    }
}

#[test]
fn histogram_quantiles_are_monotone_in_q() {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let tel = Telemetry::with_sink(Box::new(fedl_telemetry::MemorySink::new().0));
    let hist = tel.histogram("h");
    for _ in 0..5_000 {
        hist.record(rng.gen_range(1e-6..1e3));
    }
    let qs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let values: Vec<f64> = qs.iter().map(|&q| hist.quantile(q).unwrap()).collect();
    for pair in values.windows(2) {
        assert!(pair[0] <= pair[1], "quantiles must be monotone: {values:?}");
    }
}

#[test]
fn span_tree_and_events_round_trip_as_jsonl() {
    let (tel, handle) = Telemetry::in_memory();
    tel.emit(
        "run_start",
        vec![("seed", fedl_json::Value::Int(7)), ("budget", fedl_json::Value::Float(200.0))],
    );
    for _epoch in 0..3 {
        let epoch = tel.span("epoch");
        {
            let _s = epoch.child("select");
        }
        {
            let train = epoch.child("train");
            let _r = train.child("round");
        }
        tel.counter("epochs").incr();
    }
    tel.emit_metrics();
    tel.emit("run_end", vec![("epochs", fedl_json::Value::Int(3))]);

    // Round trip: serialised lines parse back through RunLog, and the
    // report layer sees the same structure the live handles saw.
    let log = RunLog::parse(&handle.lines().join("\n"));
    assert!(log.missing_kinds(&["run_start", "span", "metrics", "run_end"]).is_empty());

    let spans: Vec<&fedl_json::Value> =
        log.events().iter().filter(|e| e.get("kind").unwrap().as_str() == Some("span")).collect();
    assert_eq!(spans.len(), 12, "3 epochs x (select + round + train + epoch)");
    for span in &spans {
        let name = span.get("name").unwrap().as_str().unwrap();
        let parent = span.get("parent").unwrap().as_str();
        let depth = span.get("depth").unwrap().as_i64().unwrap();
        match name {
            "epoch" => {
                assert!(span.get("parent").unwrap().is_null());
                assert_eq!(depth, 0);
            }
            "select" | "train" => {
                assert_eq!(parent, Some("epoch"));
                assert_eq!(depth, 1);
            }
            "round" => {
                assert_eq!(parent, Some("train"));
                assert_eq!(depth, 2);
            }
            other => panic!("unexpected span {other}"),
        }
        assert!(span.get("secs").unwrap().as_f64().unwrap() >= 0.0);
    }
    // Id linkage agrees with name linkage: every child's parent_id is
    // the span_id of a span carrying the claimed parent name, and all
    // spans share one trace id.
    let id_to_name: std::collections::HashMap<&str, &str> = spans
        .iter()
        .map(|s| {
            (s.get("span_id").unwrap().as_str().unwrap(), s.get("name").unwrap().as_str().unwrap())
        })
        .collect();
    let trace_ids: std::collections::HashSet<&str> =
        spans.iter().map(|s| s.get("trace_id").unwrap().as_str().unwrap()).collect();
    assert_eq!(trace_ids.len(), 1, "one process, one trace");
    for span in &spans {
        if let Some(parent_id) = span.get("parent_id").unwrap().as_str() {
            let claimed = span.get("parent").unwrap().as_str().unwrap();
            assert_eq!(id_to_name.get(parent_id).copied(), Some(claimed));
        }
    }

    let stats = log.phase_stats();
    let epoch = stats.iter().find(|s| s.name == "epoch").unwrap();
    assert_eq!(epoch.count, 3);
    assert!(epoch.p50 <= epoch.p99 && epoch.p99 <= epoch.max);

    // The metrics snapshot in the log matches the live registry.
    let metrics =
        log.events().iter().find(|e| e.get("kind").unwrap().as_str() == Some("metrics")).unwrap();
    let registry = metrics.get("registry").unwrap();
    assert_eq!(registry.get("counters").unwrap().get("epochs").unwrap().as_i64(), Some(3));
    assert_eq!(
        registry
            .get("histograms")
            .unwrap()
            .get("span.epoch")
            .unwrap()
            .get("count")
            .unwrap()
            .as_i64(),
        Some(3)
    );
}

#[test]
fn sequence_numbers_order_the_log() {
    let (tel, handle) = Telemetry::in_memory();
    for _ in 0..10 {
        tel.emit("tick", vec![]);
    }
    let events = handle.events().unwrap();
    let seqs: Vec<i64> = events.iter().map(|e| e.get("seq").unwrap().as_i64().unwrap()).collect();
    assert_eq!(seqs, (0..10).collect::<Vec<_>>());
}
