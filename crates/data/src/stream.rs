//! Online per-epoch data arrival.
//!
//! The paper transforms all client data "into online data followed by
//! Poisson distribution" (§6.1): at each epoch a client works on a
//! freshly arrived batch whose size is Poisson-distributed, which is what
//! makes the data volumes `D_{t,k}` — and hence the computation latencies
//! — time-varying and unpredictable for the selector.

use fedl_linalg::rng::{rng_for, Distribution, Poisson, Rng};

use crate::Dataset;

/// Clamped Poisson arrival count for epoch `epoch` of a client stream
/// with rate `lambda` and root seed `seed`.
///
/// This is exactly `OnlineStream::arrivals(epoch).len()` — the count is
/// the *first* draw of the per-epoch RNG stream, before any sample
/// indices — but it can be computed without a pool in hand, which is
/// what lets the columnar population store (`fedl-sim`'s
/// `ClientColumns`) realize million-client data volumes without
/// materializing per-client index pools (docs/SCALE.md).
pub fn arrival_count(seed: u64, lambda: f64, epoch: usize) -> usize {
    let max_batch = (lambda * 4.0).ceil() as usize + 8;
    let mut rng = rng_for(seed, 0x57EA ^ (epoch as u64));
    (Poisson::new(lambda).sample(&mut rng) as usize).clamp(1, max_batch)
}

/// Per-client online data source: each epoch yields a Poisson-sized
/// multiset of sample indices drawn from the client's partition pool.
#[derive(Debug, Clone)]
pub struct OnlineStream {
    /// The client's index pool within the global training set.
    pool: Vec<usize>,
    /// Mean per-epoch arrival count λ.
    lambda: f64,
    /// Root seed (per-client).
    seed: u64,
    /// Arrivals are clamped to `[1, max_batch]` so a selected client is
    /// never idle and memory stays bounded.
    max_batch: usize,
}

impl OnlineStream {
    /// Creates the stream.
    ///
    /// # Panics
    /// Panics on an empty pool or non-positive λ.
    pub fn new(pool: Vec<usize>, lambda: f64, seed: u64) -> Self {
        assert!(!pool.is_empty(), "online stream needs a non-empty pool");
        assert!(lambda > 0.0, "Poisson rate must be positive, got {lambda}");
        let max_batch = (lambda * 4.0).ceil() as usize + 8;
        Self { pool, lambda, seed, max_batch }
    }

    /// Mean arrival rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of distinct samples the client can ever draw.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The sample indices available to this client at `epoch`.
    ///
    /// Deterministic in `(seed, epoch)`: re-querying the same epoch gives
    /// the same arrivals, so selection policies can be compared on
    /// identical inputs.
    pub fn arrivals(&self, epoch: usize) -> Vec<usize> {
        let mut rng = rng_for(self.seed, 0x57EA ^ (epoch as u64));
        let poisson = Poisson::new(self.lambda);
        let count = (poisson.sample(&mut rng) as usize).clamp(1, self.max_batch);
        (0..count).map(|_| self.pool[rng.gen_range(0..self.pool.len())]).collect()
    }

    /// The number of arrivals at `epoch`, without materializing them.
    /// Always equal to `self.arrivals(epoch).len()`.
    pub fn arrival_count(&self, epoch: usize) -> usize {
        arrival_count(self.seed, self.lambda, epoch)
    }

    /// Materializes the epoch-`epoch` working set as a dataset.
    pub fn epoch_dataset(&self, source: &Dataset, epoch: usize) -> Dataset {
        source.subset(&self.arrivals(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::small_fmnist;

    fn stream() -> OnlineStream {
        OnlineStream::new((0..50).collect(), 12.0, 99)
    }

    #[test]
    fn deterministic_per_epoch() {
        let s = stream();
        assert_eq!(s.arrivals(3), s.arrivals(3));
        assert_ne!(s.arrivals(3), s.arrivals(4));
    }

    #[test]
    fn arrivals_within_pool_and_bounds() {
        let s = stream();
        for epoch in 0..50 {
            let a = s.arrivals(epoch);
            assert!(!a.is_empty());
            assert!(a.len() <= s.max_batch);
            assert!(a.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn mean_volume_tracks_lambda() {
        let s = stream();
        let n = 400;
        let mean: f64 = (0..n).map(|e| s.arrivals(e).len() as f64).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 1.5, "empirical mean {mean} far from λ=12");
    }

    #[test]
    fn volumes_actually_vary() {
        let s = stream();
        let sizes: Vec<usize> = (0..50).map(|e| s.arrivals(e).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "Poisson volumes should fluctuate: {sizes:?}");
    }

    #[test]
    fn arrival_count_equals_materialized_len() {
        let s = stream();
        for epoch in 0..200 {
            assert_eq!(s.arrival_count(epoch), s.arrivals(epoch).len(), "epoch {epoch}");
            assert_eq!(arrival_count(99, 12.0, epoch), s.arrivals(epoch).len());
        }
    }

    #[test]
    fn epoch_dataset_matches_arrivals() {
        let (train, _) = small_fmnist(50, 5, 7);
        let s = OnlineStream::new((0..train.len()).collect(), 6.0, 1);
        let ds = s.epoch_dataset(&train, 2);
        let arr = s.arrivals(2);
        assert_eq!(ds.len(), arr.len());
        for (r, &i) in arr.iter().enumerate() {
            assert_eq!(ds.features.row(r), train.features.row(i));
            assert_eq!(ds.labels[r], train.labels[i]);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn empty_pool_rejected() {
        let _ = OnlineStream::new(vec![], 3.0, 0);
    }

    #[test]
    #[should_panic(expected = "Poisson rate")]
    fn bad_lambda_rejected() {
        let _ = OnlineStream::new(vec![0], 0.0, 0);
    }
}
