//! Reader/writer for the CIFAR-10 binary batch format.
//!
//! Each record is `1 + 3072` bytes: a label byte followed by a 32×32×3
//! image (channel-planar, red plane first). A distribution batch file
//! holds 10 000 records; this parser accepts any whole number of records.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use fedl_linalg::Matrix;

use crate::Dataset;

/// Bytes per image payload (32 * 32 * 3).
pub const IMAGE_BYTES: usize = 3072;
/// Bytes per record (label + image).
pub const RECORD_BYTES: usize = 1 + IMAGE_BYTES;
/// CIFAR-10 class count.
pub const NUM_CLASSES: usize = 10;

/// Errors from CIFAR binary parsing.
#[derive(Debug)]
pub enum CifarError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte stream is not a whole number of valid records.
    Malformed(String),
}

impl fmt::Display for CifarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CifarError::Io(e) => write!(f, "cifar io error: {e}"),
            CifarError::Malformed(m) => write!(f, "malformed cifar data: {m}"),
        }
    }
}

impl std::error::Error for CifarError {}

impl From<io::Error> for CifarError {
    fn from(e: io::Error) -> Self {
        CifarError::Io(e)
    }
}

/// Parses a CIFAR-10 binary batch into a [`Dataset`] with pixels
/// normalized into `[0, 1]`.
pub fn parse(bytes: &[u8]) -> Result<Dataset, CifarError> {
    if bytes.is_empty() {
        return Err(CifarError::Malformed("empty batch".into()));
    }
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(CifarError::Malformed(format!(
            "length {} is not a multiple of the {RECORD_BYTES}-byte record size",
            bytes.len()
        )));
    }
    let n = bytes.len() / RECORD_BYTES;
    let mut labels = Vec::with_capacity(n);
    let mut feats = Vec::with_capacity(n * IMAGE_BYTES);
    for rec in bytes.chunks_exact(RECORD_BYTES) {
        let label = rec[0] as usize;
        if label >= NUM_CLASSES {
            return Err(CifarError::Malformed(format!("label {label} out of range")));
        }
        labels.push(label);
        feats.extend(rec[1..].iter().map(|&b| b as f32 / 255.0));
    }
    Ok(Dataset::new(Matrix::from_vec(n, IMAGE_BYTES, feats), labels, NUM_CLASSES))
}

/// Serializes `(label, image)` records into the binary batch format — the
/// inverse of [`parse`] up to the `u8` quantization.
pub fn serialize(records: &[(u8, Vec<u8>)]) -> Result<Vec<u8>, CifarError> {
    let mut out = Vec::with_capacity(records.len() * RECORD_BYTES);
    for (label, image) in records {
        if *label as usize >= NUM_CLASSES {
            return Err(CifarError::Malformed(format!("label {label} out of range")));
        }
        if image.len() != IMAGE_BYTES {
            return Err(CifarError::Malformed(format!(
                "image has {} bytes, expected {IMAGE_BYTES}",
                image.len()
            )));
        }
        out.push(*label);
        out.extend_from_slice(image);
    }
    Ok(out)
}

/// Reads one binary batch file.
pub fn read_file(path: &Path) -> Result<Dataset, CifarError> {
    parse(&fs::read(path)?)
}

/// Loads and concatenates the five training batches
/// (`data_batch_1.bin` … `data_batch_5.bin`) from `dir`.
pub fn load_train_batches(dir: &Path) -> Result<Dataset, CifarError> {
    let mut features: Vec<Matrix> = Vec::new();
    let mut labels = Vec::new();
    for i in 1..=5 {
        let ds = read_file(&dir.join(format!("data_batch_{i}.bin")))?;
        labels.extend_from_slice(&ds.labels);
        features.push(ds.features);
    }
    let refs: Vec<&Matrix> = features.iter().collect();
    Ok(Dataset::new(Matrix::vstack(&refs), labels, NUM_CLASSES))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: u8, fill: u8) -> (u8, Vec<u8>) {
        (label, vec![fill; IMAGE_BYTES])
    }

    #[test]
    fn round_trip() {
        let recs = vec![record(0, 10), record(9, 200), record(4, 128)];
        let bytes = serialize(&recs).unwrap();
        assert_eq!(bytes.len(), 3 * RECORD_BYTES);
        let ds = parse(&bytes).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.labels, vec![0, 9, 4]);
        assert!((ds.features.get(1, 0) - 200.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_partial_record() {
        let mut bytes = serialize(&[record(1, 1)]).unwrap();
        bytes.pop();
        assert!(matches!(parse(&bytes), Err(CifarError::Malformed(_))));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(parse(&[]), Err(CifarError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_label_on_parse() {
        let mut bytes = serialize(&[record(1, 1)]).unwrap();
        bytes[0] = 12;
        assert!(matches!(parse(&bytes), Err(CifarError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_label_on_serialize() {
        assert!(serialize(&[record(10, 0)]).is_err());
    }

    #[test]
    fn rejects_short_image() {
        assert!(serialize(&[(0u8, vec![0u8; 5])]).is_err());
    }

    #[test]
    fn train_batches_concatenate() {
        let dir = std::env::temp_dir().join("fedl_cifar_test");
        std::fs::create_dir_all(&dir).unwrap();
        for i in 1..=5 {
            let bytes = serialize(&[record(i as u8 - 1, i as u8)]).unwrap();
            std::fs::write(dir.join(format!("data_batch_{i}.bin")), bytes).unwrap();
        }
        let ds = load_train_batches(&dir).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.labels, vec![0, 1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
