//! Datasets for the FedL reproduction.
//!
//! The paper evaluates on Fashion-MNIST and CIFAR-10, split across 100
//! mobile clients both IID and non-IID, with each client's working set
//! arriving *online* as a Poisson process (§6.1). This crate provides all
//! of that:
//!
//! * [`synth`] — seeded synthetic 10-class datasets with the exact tensor
//!   shapes of FMNIST (784-dim) and CIFAR-10 (3072-dim). The repository
//!   cannot ship the real image files, so these generators stand in; the
//!   CIFAR-like task is constructed to be harder (heavier class overlap),
//!   matching the papers' relative difficulty. See DESIGN.md §2 for the
//!   substitution argument.
//! * [`partition`] — IID and non-IID partitioners. The paper's non-IID
//!   scheme ("choose a number of data from a principal dataset and
//!   randomly select the remaining from another") is
//!   [`Partition::PrincipalMix`]; a shard-based scheme is also provided.
//! * [`stream`] — per-epoch Poisson resampling of each client's working
//!   set, producing the time-varying data volumes `D_{t,k}`.
//! * [`idx`] / [`cifar`] — parsers and writers for the real on-disk
//!   formats (IDX for FMNIST, CIFAR-10 binary batches), so the harness
//!   runs on the genuine datasets when the files are present.
//!
//! System-inventory row **S3** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cifar;
pub mod idx;
pub mod partition;
pub mod stats;
pub mod stream;
pub mod synth;

pub use partition::Partition;

use fedl_linalg::Matrix;

/// A supervised classification dataset: one feature row per sample plus an
/// integer class label per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n_samples x n_features`, values normalized into `[0, 1]`.
    pub features: Matrix,
    /// Class label per sample, each `< num_classes`.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating shape and label range.
    ///
    /// # Panics
    /// Panics if row count and label count disagree or a label is out of
    /// range — both indicate loader bugs, not recoverable states.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(num_classes >= 2, "need at least two classes");
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            panic!("label {bad} out of range for {num_classes} classes");
        }
        Self { features, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Extracts the sub-dataset given by `indices` (duplicates allowed —
    /// the Poisson stream resamples with replacement).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset { features, labels, num_classes: self.num_classes }
    }

    /// One-hot label matrix (`n_samples x num_classes`), the target format
    /// for the cross-entropy loss.
    pub fn one_hot_labels(&self) -> Matrix {
        let mut m = Matrix::default();
        self.one_hot_labels_into(&mut m);
        m
    }

    /// [`Dataset::one_hot_labels`] written into a caller-owned matrix
    /// (reshaped and zeroed); steady-state reuse performs no allocation.
    pub fn one_hot_labels_into(&self, out: &mut Matrix) {
        out.resize_to(self.len(), self.num_classes);
        for (r, &l) in self.labels.iter().enumerate() {
            out.set(r, l, 1.0);
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let features = Matrix::from_vec(4, 2, vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);
        Dataset::new(features, vec![0, 1, 1, 2], 3)
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "feature/label count mismatch")]
    fn rejects_count_mismatch() {
        let _ = Dataset::new(Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let _ = Dataset::new(Matrix::zeros(2, 2), vec![0, 5], 3);
    }

    #[test]
    fn subset_with_duplicates() {
        let d = tiny();
        let s = d.subset(&[2, 2, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels, vec![1, 1, 0]);
        assert_eq!(s.features.row(0), d.features.row(2));
        assert_eq!(s.features.row(2), d.features.row(0));
    }

    #[test]
    fn one_hot_has_single_one_per_row() {
        let d = tiny();
        let oh = d.one_hot_labels();
        assert_eq!(oh.shape(), (4, 3));
        for (r, row) in oh.row_iter().enumerate() {
            assert_eq!(row.iter().sum::<f32>(), 1.0);
            assert_eq!(row[d.labels[r]], 1.0);
        }
    }
}
