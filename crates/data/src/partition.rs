//! Splitting a dataset across federated clients, IID or non-IID.

use fedl_linalg::rng::{rng_for, Rng, SliceRandom};

use crate::Dataset;

/// How training data is distributed across the `M` clients.
///
/// # Examples
///
/// ```
/// use fedl_data::synth::small_fmnist;
/// use fedl_data::Partition;
///
/// let (train, _) = small_fmnist(200, 20, 1);
/// let pools = Partition::Iid.split(&train, 10, 42);
/// assert_eq!(pools.len(), 10);
/// let total: usize = pools.iter().map(Vec::len).sum();
/// assert_eq!(total, train.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Uniformly random split — every client sees the global distribution.
    Iid,
    /// The paper's non-IID scheme (§6.1): each client draws a fraction
    /// `principal_frac` of its data from one "principal" class and the
    /// remainder uniformly from the rest of the dataset.
    PrincipalMix {
        /// Fraction of each client's samples from its principal class,
        /// in `(0, 1]`.
        principal_frac: f64,
    },
    /// Classic shard-based split (McMahan et al.): sort by label, cut into
    /// `2M` shards, give each client two — every client sees ~2 classes.
    Shards,
    /// Dirichlet label skew (Hsu et al.): each client's label
    /// distribution is drawn from `Dir(α·1)`; small `α` is extremely
    /// non-IID, large `α` approaches IID. The de-facto standard non-IID
    /// benchmark knob in the FL literature, provided as an extension
    /// beyond the paper's principal-mix scheme.
    Dirichlet {
        /// Concentration parameter α > 0.
        alpha: f64,
    },
}

impl Partition {
    /// Splits `dataset` into `num_clients` index pools.
    ///
    /// Every sample index appears in exactly one pool for [`Partition::Iid`]
    /// and [`Partition::Shards`]; `PrincipalMix` samples with replacement
    /// (clients may share samples), matching "randomly select the
    /// remaining data from another \[dataset\]".
    ///
    /// # Panics
    /// Panics if `num_clients == 0` or the dataset is empty.
    pub fn split(&self, dataset: &Dataset, num_clients: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(num_clients > 0, "need at least one client");
        assert!(!dataset.is_empty(), "cannot partition an empty dataset");
        let mut rng = rng_for(seed, 0x9A47);
        match *self {
            Partition::Iid => {
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                idx.shuffle(&mut rng);
                let mut pools = vec![Vec::new(); num_clients];
                for (i, s) in idx.into_iter().enumerate() {
                    pools[i % num_clients].push(s);
                }
                pools
            }
            Partition::PrincipalMix { principal_frac } => {
                assert!(
                    principal_frac > 0.0 && principal_frac <= 1.0,
                    "principal_frac must be in (0,1], got {principal_frac}"
                );
                // Index samples by class for principal draws.
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes];
                for (i, &l) in dataset.labels.iter().enumerate() {
                    by_class[l].push(i);
                }
                let per_client = (dataset.len() / num_clients).max(1);
                (0..num_clients)
                    .map(|k| {
                        // Principal class cycles over clients so all
                        // classes stay represented in the federation.
                        let mut principal = k % dataset.num_classes;
                        if by_class[principal].is_empty() {
                            principal = (0..dataset.num_classes)
                                .find(|&c| !by_class[c].is_empty())
                                .expect("non-empty dataset has a non-empty class");
                        }
                        let n_principal = ((per_client as f64) * principal_frac).round() as usize;
                        let mut pool = Vec::with_capacity(per_client);
                        for _ in 0..n_principal {
                            let src = &by_class[principal];
                            pool.push(src[rng.gen_range(0..src.len())]);
                        }
                        for _ in n_principal..per_client {
                            pool.push(rng.gen_range(0..dataset.len()));
                        }
                        pool
                    })
                    .collect()
            }
            Partition::Shards => {
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                idx.sort_by_key(|&i| dataset.labels[i]);
                let num_shards = 2 * num_clients;
                let shard_len = (dataset.len() / num_shards).max(1);
                let mut shards: Vec<Vec<usize>> =
                    idx.chunks(shard_len).map(|c| c.to_vec()).collect();
                shards.shuffle(&mut rng);
                let mut pools = vec![Vec::new(); num_clients];
                for (i, shard) in shards.into_iter().enumerate() {
                    pools[i % num_clients].extend(shard);
                }
                pools
            }
            Partition::Dirichlet { alpha } => {
                assert!(alpha > 0.0, "Dirichlet alpha must be positive, got {alpha}");
                // For each class, split its samples across clients with
                // proportions ~ Dir(alpha): draw Gamma(alpha, 1) per
                // client and normalize.
                use fedl_linalg::rng::{Distribution, Gamma};
                let gamma = Gamma::new(alpha, 1.0);
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes];
                for (i, &l) in dataset.labels.iter().enumerate() {
                    by_class[l].push(i);
                }
                let mut pools = vec![Vec::new(); num_clients];
                for mut class_idx in by_class {
                    class_idx.shuffle(&mut rng);
                    let mut weights: Vec<f64> =
                        (0..num_clients).map(|_| gamma.sample(&mut rng).max(1e-12)).collect();
                    let total: f64 = weights.iter().sum();
                    for w in &mut weights {
                        *w /= total;
                    }
                    // Convert proportions to cumulative cut points.
                    let n = class_idx.len();
                    let mut start = 0usize;
                    let mut acc = 0.0;
                    for (client, &w) in weights.iter().enumerate() {
                        acc += w;
                        let end = if client + 1 == num_clients {
                            n
                        } else {
                            ((acc * n as f64).round() as usize).clamp(start, n)
                        };
                        pools[client].extend_from_slice(&class_idx[start..end]);
                        start = end;
                    }
                }
                // Guarantee no client is left empty (the simulator
                // requires every client to own data): give empty pools
                // one sample from the largest pool.
                for k in 0..num_clients {
                    if pools[k].is_empty() {
                        let donor = (0..num_clients)
                            .max_by_key(|&j| pools[j].len())
                            .expect("at least one pool");
                        let sample = pools[donor].pop().expect("donor non-empty");
                        pools[k].push(sample);
                    }
                }
                pools
            }
        }
    }

    /// `true` for schemes that skew each client's label distribution.
    pub fn is_non_iid(&self) -> bool {
        !matches!(self, Partition::Iid)
    }
}

/// Measures how non-IID a split is: mean total-variation distance between
/// each client's label distribution and the global one (0 = perfectly
/// IID, approaches 1 - 1/classes for single-class clients).
pub fn label_skew(dataset: &Dataset, pools: &[Vec<usize>]) -> f64 {
    let global = dataset.class_counts();
    let total = dataset.len() as f64;
    let global_p: Vec<f64> = global.iter().map(|&c| c as f64 / total).collect();
    let mut acc = 0.0;
    let mut used = 0;
    for pool in pools {
        if pool.is_empty() {
            continue;
        }
        let mut counts = vec![0usize; dataset.num_classes];
        for &i in pool {
            counts[dataset.labels[i]] += 1;
        }
        let n = pool.len() as f64;
        let tv: f64 =
            counts.iter().zip(&global_p).map(|(&c, &gp)| (c as f64 / n - gp).abs()).sum::<f64>()
                / 2.0;
        acc += tv;
        used += 1;
    }
    if used == 0 {
        0.0
    } else {
        acc / used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::small_fmnist;

    #[test]
    fn iid_split_covers_everything_once() {
        let (train, _) = small_fmnist(100, 10, 1);
        let pools = Partition::Iid.split(&train, 7, 42);
        assert_eq!(pools.len(), 7);
        let mut seen = vec![false; train.len()];
        for pool in &pools {
            for &i in pool {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Balanced within one sample.
        let sizes: Vec<usize> = pools.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn shards_split_covers_everything() {
        let (train, _) = small_fmnist(200, 10, 2);
        let pools = Partition::Shards.split(&train, 10, 7);
        let total: usize = pools.iter().map(Vec::len).sum();
        assert_eq!(total, train.len());
    }

    #[test]
    fn principal_mix_is_skewed() {
        let (train, _) = small_fmnist(1000, 10, 3);
        let iid = Partition::Iid.split(&train, 10, 5);
        let mix = Partition::PrincipalMix { principal_frac: 0.8 }.split(&train, 10, 5);
        let skew_iid = label_skew(&train, &iid);
        let skew_mix = label_skew(&train, &mix);
        assert!(
            skew_mix > skew_iid + 0.3,
            "principal mix should be much more skewed: {skew_mix} vs {skew_iid}"
        );
    }

    #[test]
    fn shards_more_skewed_than_iid() {
        let (train, _) = small_fmnist(1000, 10, 4);
        let iid = Partition::Iid.split(&train, 20, 6);
        let shards = Partition::Shards.split(&train, 20, 6);
        assert!(label_skew(&train, &shards) > label_skew(&train, &iid));
    }

    #[test]
    fn deterministic_in_seed() {
        let (train, _) = small_fmnist(100, 10, 5);
        let a = Partition::Shards.split(&train, 5, 9);
        let b = Partition::Shards.split(&train, 5, 9);
        assert_eq!(a, b);
        let c = Partition::Shards.split(&train, 5, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let (train, _) = small_fmnist(10, 5, 1);
        let _ = Partition::Iid.split(&train, 0, 0);
    }

    #[test]
    #[should_panic(expected = "principal_frac")]
    fn bad_principal_frac_rejected() {
        let (train, _) = small_fmnist(10, 5, 1);
        let _ = Partition::PrincipalMix { principal_frac: 1.5 }.split(&train, 2, 0);
    }

    #[test]
    fn is_non_iid_flags() {
        assert!(!Partition::Iid.is_non_iid());
        assert!(Partition::Shards.is_non_iid());
        assert!(Partition::PrincipalMix { principal_frac: 0.5 }.is_non_iid());
        assert!(Partition::Dirichlet { alpha: 0.5 }.is_non_iid());
    }

    #[test]
    fn dirichlet_covers_everything_once() {
        let (train, _) = small_fmnist(600, 10, 7);
        let pools = Partition::Dirichlet { alpha: 0.5 }.split(&train, 12, 9);
        let mut seen = vec![false; train.len()];
        for pool in &pools {
            assert!(!pool.is_empty(), "no client may be empty");
            for &i in pool {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dirichlet_alpha_controls_skew() {
        let (train, _) = small_fmnist(2000, 10, 8);
        let skew_at = |alpha: f64| {
            let pools = Partition::Dirichlet { alpha }.split(&train, 15, 11);
            label_skew(&train, &pools)
        };
        let very_skewed = skew_at(0.05);
        let mild = skew_at(100.0);
        assert!(very_skewed > mild + 0.2, "alpha must control skew: {very_skewed} vs {mild}");
        assert!(mild < 0.25, "alpha=100 should be near IID, skew {mild}");
    }

    #[test]
    #[should_panic(expected = "Dirichlet alpha")]
    fn dirichlet_rejects_bad_alpha() {
        let (train, _) = small_fmnist(20, 5, 1);
        let _ = Partition::Dirichlet { alpha: 0.0 }.split(&train, 2, 0);
    }
}
