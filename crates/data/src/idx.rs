//! Reader/writer for the IDX binary format used by MNIST-family datasets
//! (including Fashion-MNIST).
//!
//! Layout: a 4-byte magic (`0x00 0x00 <dtype> <ndims>`), `ndims` big-endian
//! `u32` dimension sizes, then the raw data in row-major order. Only the
//! `u8` dtype (`0x08`) is supported — that is what the distributed
//! FMNIST/MNIST files use.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use fedl_linalg::Matrix;

use crate::Dataset;

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte stream is not a valid `u8` IDX payload.
    Malformed(String),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "idx io error: {e}"),
            IdxError::Malformed(m) => write!(f, "malformed idx data: {m}"),
        }
    }
}

impl std::error::Error for IdxError {}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

/// A decoded IDX tensor of `u8` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes, outermost first.
    pub dims: Vec<u32>,
    /// Row-major payload; length is the product of `dims`.
    pub data: Vec<u8>,
}

impl IdxTensor {
    /// Number of outermost items (e.g. images or labels).
    pub fn items(&self) -> usize {
        self.dims.first().copied().unwrap_or(0) as usize
    }

    /// Elements per item (product of the inner dimensions).
    pub fn item_len(&self) -> usize {
        self.dims.iter().skip(1).map(|&d| d as usize).product::<usize>().max(1)
    }
}

const U8_DTYPE: u8 = 0x08;

/// Parses an IDX payload from bytes.
pub fn parse(buf: &[u8]) -> Result<IdxTensor, IdxError> {
    if buf.len() < 4 {
        return Err(IdxError::Malformed("shorter than magic".into()));
    }
    let (zero0, zero1, dtype, ndims) = (buf[0], buf[1], buf[2], buf[3] as usize);
    let mut buf = &buf[4..];
    if zero0 != 0 || zero1 != 0 {
        return Err(IdxError::Malformed("magic must start with two zero bytes".into()));
    }
    if dtype != U8_DTYPE {
        return Err(IdxError::Malformed(format!("unsupported dtype 0x{dtype:02x}")));
    }
    if ndims == 0 {
        return Err(IdxError::Malformed("zero-dimensional tensor".into()));
    }
    if buf.len() < 4 * ndims {
        return Err(IdxError::Malformed("truncated dimension header".into()));
    }
    let mut dims = Vec::with_capacity(ndims);
    let mut total: usize = 1;
    for _ in 0..ndims {
        let d = u32::from_be_bytes(buf[..4].try_into().expect("length checked above"));
        buf = &buf[4..];
        total = total
            .checked_mul(d as usize)
            .ok_or_else(|| IdxError::Malformed("dimension product overflow".into()))?;
        dims.push(d);
    }
    if buf.len() != total {
        return Err(IdxError::Malformed(format!(
            "payload length {} does not match dims {:?} (expect {total})",
            buf.len(),
            dims
        )));
    }
    Ok(IdxTensor { dims, data: buf.to_vec() })
}

/// Serializes a tensor back into IDX bytes (inverse of [`parse`]).
pub fn serialize(t: &IdxTensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 * t.dims.len() + t.data.len());
    out.extend_from_slice(&[0, 0, U8_DTYPE, t.dims.len() as u8]);
    for &d in &t.dims {
        out.extend_from_slice(&d.to_be_bytes());
    }
    out.extend_from_slice(&t.data);
    out
}

/// Reads an IDX file from disk.
pub fn read_file(path: &Path) -> Result<IdxTensor, IdxError> {
    parse(&fs::read(path)?)
}

/// Writes an IDX file to disk.
pub fn write_file(path: &Path, t: &IdxTensor) -> Result<(), IdxError> {
    fs::write(path, serialize(t))?;
    Ok(())
}

/// Combines an image tensor and a label tensor into a [`Dataset`], pixel
/// values normalized into `[0, 1]`.
pub fn to_dataset(
    images: &IdxTensor,
    labels: &IdxTensor,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    if images.items() != labels.items() {
        return Err(IdxError::Malformed(format!(
            "{} images but {} labels",
            images.items(),
            labels.items()
        )));
    }
    if labels.item_len() != 1 {
        return Err(IdxError::Malformed("labels must be one value per item".into()));
    }
    let n = images.items();
    let dim = images.item_len();
    let feats: Vec<f32> = images.data.iter().map(|&b| b as f32 / 255.0).collect();
    let labels: Vec<usize> = labels.data.iter().map(|&b| b as usize).collect();
    if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
        return Err(IdxError::Malformed(format!("label {bad} >= {num_classes}")));
    }
    Ok(Dataset::new(Matrix::from_vec(n, dim, feats), labels, num_classes))
}

/// Loads the standard FMNIST/MNIST file pair
/// (`<stem>-images-idx3-ubyte`, `<stem>-labels-idx1-ubyte`) from `dir`.
pub fn load_pair(dir: &Path, stem: &str) -> Result<Dataset, IdxError> {
    let images = read_file(&dir.join(format!("{stem}-images-idx3-ubyte")))?;
    let labels = read_file(&dir.join(format!("{stem}-labels-idx1-ubyte")))?;
    to_dataset(&images, &labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tensor() -> IdxTensor {
        IdxTensor { dims: vec![2, 2, 3], data: (0..12).collect() }
    }

    #[test]
    fn round_trip() {
        let t = sample_tensor();
        let bytes = serialize(&t);
        let back = parse(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn items_and_item_len() {
        let t = sample_tensor();
        assert_eq!(t.items(), 2);
        assert_eq!(t.item_len(), 6);
    }

    #[test]
    fn rejects_truncated_magic() {
        assert!(matches!(parse(&[0, 0]), Err(IdxError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_magic_prefix() {
        let mut bytes = serialize(&sample_tensor());
        bytes[0] = 1;
        assert!(matches!(parse(&bytes), Err(IdxError::Malformed(_))));
    }

    #[test]
    fn rejects_wrong_dtype() {
        let mut bytes = serialize(&sample_tensor());
        bytes[2] = 0x0D; // float dtype
        assert!(matches!(parse(&bytes), Err(IdxError::Malformed(_))));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut bytes = serialize(&sample_tensor());
        bytes.pop();
        assert!(matches!(parse(&bytes), Err(IdxError::Malformed(_))));
    }

    #[test]
    fn dataset_conversion_normalizes() {
        let images = IdxTensor { dims: vec![2, 2, 2], data: vec![0, 255, 128, 64, 10, 20, 30, 40] };
        let labels = IdxTensor { dims: vec![2], data: vec![3, 9] };
        let ds = to_dataset(&images, &labels, 10).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.labels, vec![3, 9]);
        assert_eq!(ds.features.get(0, 1), 1.0);
        assert!((ds.features.get(0, 2) - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn dataset_conversion_rejects_mismatch() {
        let images = IdxTensor { dims: vec![2, 1], data: vec![0, 1] };
        let labels = IdxTensor { dims: vec![3], data: vec![0, 1, 2] };
        assert!(to_dataset(&images, &labels, 10).is_err());
    }

    #[test]
    fn dataset_conversion_rejects_big_label() {
        let images = IdxTensor { dims: vec![1, 1], data: vec![0] };
        let labels = IdxTensor { dims: vec![1], data: vec![11] };
        assert!(to_dataset(&images, &labels, 10).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fedl_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tensor.idx");
        let t = sample_tensor();
        write_file(&path, &t).unwrap();
        assert_eq!(read_file(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_pair_round_trip() {
        let dir = std::env::temp_dir().join("fedl_idx_pair_test");
        std::fs::create_dir_all(&dir).unwrap();
        let images = IdxTensor { dims: vec![3, 2, 2], data: (0..12).map(|v| v * 20).collect() };
        let labels = IdxTensor { dims: vec![3], data: vec![1, 0, 9] };
        write_file(&dir.join("t10k-images-idx3-ubyte"), &images).unwrap();
        write_file(&dir.join("t10k-labels-idx1-ubyte"), &labels).unwrap();
        let ds = load_pair(&dir, "t10k").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.labels, vec![1, 0, 9]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
