//! Seeded synthetic classification datasets with the tensor shapes of the
//! paper's benchmarks.
//!
//! Each class `c` gets several random sub-template ("mode") vectors
//! `μ_{c,v}` — classes are multi-modal, like the pose/style variation in
//! real image classes, so a classifier cannot nail a class from a single
//! mean and accuracy climbs gradually over training. A sample of class
//! `c` is `clamp((1−ρ)·μ_{c,v} + ρ·μ_{c',v'} + σ·ε, 0, 1)` where `ε` is
//! white noise and the cross-class leak `ρ·μ_{c',v'}` (a mode of a
//! random *other* class) controls class overlap. FMNIST-like uses few
//! modes and a small leak — it trains to high accuracy, mirroring how
//! easily FMNIST trains. CIFAR-like uses more modes, a larger leak, and
//! more noise, capping achievable accuracy well below the FMNIST-like
//! task, mirroring CIFAR-10's difficulty in the paper (Figs. 3/5
//! plateau lower than Figs. 2/4).

use fedl_linalg::rng::{rng_for, Distribution, Normal, Rng};
use fedl_linalg::Matrix;

use crate::Dataset;

/// Which benchmark the synthetic data imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// 784-dimensional, 10 classes, well-separated (easy, like FMNIST).
    FmnistLike,
    /// 3072-dimensional, 10 classes, heavy overlap (hard, like CIFAR-10).
    CifarLike,
}

impl TaskKind {
    /// Feature dimensionality of the imitated dataset.
    pub fn dim(self) -> usize {
        match self {
            TaskKind::FmnistLike => 784,
            TaskKind::CifarLike => 3072,
        }
    }

    /// Number of classes (both benchmarks have ten).
    pub fn num_classes(self) -> usize {
        10
    }

    fn noise_std(self) -> f32 {
        match self {
            TaskKind::FmnistLike => 0.30,
            TaskKind::CifarLike => 0.35,
        }
    }

    fn leak(self) -> f32 {
        match self {
            TaskKind::FmnistLike => 0.30,
            TaskKind::CifarLike => 0.40,
        }
    }

    /// Sub-templates per class (within-class modes).
    fn modes(self) -> usize {
        match self {
            TaskKind::FmnistLike => 4,
            TaskKind::CifarLike => 6,
        }
    }
}

/// Full specification of a synthetic dataset draw.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Benchmark shape/difficulty.
    pub task: TaskKind,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of held-out test samples.
    pub test_size: usize,
    /// Root seed; templates and samples derive from it deterministically.
    pub seed: u64,
    /// Optional dimensionality override (smaller dims make unit tests and
    /// CI-scale experiments fast while keeping the same generator).
    pub dim_override: Option<usize>,
}

impl SyntheticSpec {
    /// Spec with the benchmark's native dimensionality.
    pub fn new(task: TaskKind, train_size: usize, test_size: usize, seed: u64) -> Self {
        Self { task, train_size, test_size, seed, dim_override: None }
    }

    /// Overrides the feature dimension (generator behaviour otherwise
    /// unchanged).
    pub fn with_dim(mut self, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        self.dim_override = Some(dim);
        self
    }

    /// Effective feature dimension.
    pub fn dim(&self) -> usize {
        self.dim_override.unwrap_or_else(|| self.task.dim())
    }

    /// Generates `(train, test)` datasets.
    ///
    /// Both splits share the class templates (they describe the same
    /// "world") but use independent sample noise.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let dim = self.dim();
        let classes = self.task.num_classes();
        let modes = self.task.modes();
        let mut template_rng = rng_for(self.seed, 0xDA7A);
        // One template per (class, mode), in [0,1]^dim.
        let templates: Vec<Vec<Vec<f32>>> = (0..classes)
            .map(|_| {
                (0..modes)
                    .map(|_| (0..dim).map(|_| template_rng.gen_range(0.0..1.0)).collect())
                    .collect()
            })
            .collect();

        let train = self.sample_split(&templates, self.train_size, 1);
        let test = self.sample_split(&templates, self.test_size, 2);
        (train, test)
    }

    fn sample_split(&self, templates: &[Vec<Vec<f32>>], n: usize, label: u64) -> Dataset {
        let dim = self.dim();
        let classes = templates.len();
        let modes = self.task.modes();
        let mut rng = rng_for(self.seed, 0xDA7A ^ (label << 8));
        let noise = Normal::new(0.0, self.task.noise_std() as f64);
        let leak = self.task.leak();

        let mut features = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            let c = rng.gen_range(0..classes);
            let v = rng.gen_range(0..modes);
            // Pick a distinct "leak" class (any of its modes) to blend in.
            let other = if classes > 1 {
                let mut o = rng.gen_range(0..classes - 1);
                if o >= c {
                    o += 1;
                }
                o
            } else {
                c
            };
            let ov = rng.gen_range(0..modes);
            let row = features.row_mut(r);
            for (j, val) in row.iter_mut().enumerate() {
                let raw = (1.0 - leak) * templates[c][v][j]
                    + leak * templates[other][ov][j]
                    + noise.sample(&mut rng) as f32;
                *val = raw.clamp(0.0, 1.0);
            }
            labels.push(c);
        }
        Dataset::new(features, labels, classes)
    }
}

/// Convenience constructor used throughout the examples and benches: a
/// reduced-dimension FMNIST-like task that trains in milliseconds.
pub fn small_fmnist(train: usize, test: usize, seed: u64) -> (Dataset, Dataset) {
    SyntheticSpec::new(TaskKind::FmnistLike, train, test, seed).with_dim(64).generate()
}

/// Reduced-dimension CIFAR-like task for fast tests.
pub fn small_cifar(train: usize, test: usize, seed: u64) -> (Dataset, Dataset) {
    SyntheticSpec::new(TaskKind::CifarLike, train, test, seed).with_dim(128).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_spec() {
        let spec = SyntheticSpec::new(TaskKind::FmnistLike, 50, 20, 1).with_dim(16);
        let (train, test) = spec.generate();
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 20);
        assert_eq!(train.dim(), 16);
        assert_eq!(train.num_classes, 10);
    }

    #[test]
    fn native_dims_match_benchmarks() {
        assert_eq!(TaskKind::FmnistLike.dim(), 784);
        assert_eq!(TaskKind::CifarLike.dim(), 3072);
        let spec = SyntheticSpec::new(TaskKind::FmnistLike, 1, 1, 0);
        assert_eq!(spec.dim(), 784);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::new(TaskKind::CifarLike, 10, 5, 9).with_dim(8).generate();
        let b = SyntheticSpec::new(TaskKind::CifarLike, 10, 5, 9).with_dim(8).generate();
        assert_eq!(a.0.labels, b.0.labels);
        assert_eq!(a.0.features.as_slice(), b.0.features.as_slice());
        let c = SyntheticSpec::new(TaskKind::CifarLike, 10, 5, 10).with_dim(8).generate();
        assert_ne!(a.0.features.as_slice(), c.0.features.as_slice());
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let (train, _) = small_cifar(200, 10, 3);
        assert!(train.features.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn train_and_test_are_different_draws() {
        let (train, test) = small_fmnist(30, 30, 4);
        assert_ne!(train.features.as_slice(), test.features.as_slice());
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let (train, _) = small_fmnist(2000, 10, 5);
        let counts = train.class_counts();
        for &c in &counts {
            // Each of 10 classes expects ~200; Binomial spread is tight.
            assert!(c > 120 && c < 300, "unbalanced class counts {counts:?}");
        }
    }

    /// The nearest-template classifier must beat chance comfortably on the
    /// easy task and still beat chance on the hard one — this is the
    /// learnability property the FL evaluation relies on.
    #[test]
    fn nearest_template_separability() {
        // Class means are weak classifiers by design (multi-modal
        // classes); the floors check "clearly above the 10% chance
        // level", not separability by a single prototype.
        for (task, floor) in [(TaskKind::FmnistLike, 0.35), (TaskKind::CifarLike, 0.15)] {
            let spec = SyntheticSpec::new(task, 300, 300, 11).with_dim(32);
            let (train, test) = spec.generate();
            // Estimate class means from train.
            let dim = train.dim();
            let mut means = vec![vec![0.0f32; dim]; 10];
            let counts = train.class_counts();
            for (r, &l) in train.labels.iter().enumerate() {
                for (m, &v) in means[l].iter_mut().zip(train.features.row(r)) {
                    *m += v;
                }
            }
            for (mean, &cnt) in means.iter_mut().zip(&counts) {
                let denom = cnt.max(1) as f32;
                for m in mean.iter_mut() {
                    *m /= denom;
                }
            }
            let mut correct = 0;
            for (r, &l) in test.labels.iter().enumerate() {
                let row = test.features.row(r);
                let pred = (0..10)
                    .min_by(|&a, &b| {
                        let da: f32 =
                            row.iter().zip(&means[a]).map(|(x, m)| (x - m) * (x - m)).sum();
                        let db: f32 =
                            row.iter().zip(&means[b]).map(|(x, m)| (x - m) * (x - m)).sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if pred == l {
                    correct += 1;
                }
            }
            let acc = correct as f32 / test.len() as f32;
            assert!(acc > floor, "{task:?}: nearest-template accuracy {acc} <= {floor}");
        }
    }

    /// The CIFAR-like task must actually be harder than the FMNIST-like
    /// task at matched sizes — the relative difficulty drives the paper's
    /// Fig. 2 vs Fig. 3 contrast.
    #[test]
    fn cifar_like_is_harder() {
        let acc = |task: TaskKind| {
            let spec = SyntheticSpec::new(task, 400, 400, 21).with_dim(32);
            let (train, test) = spec.generate();
            let dim = train.dim();
            let mut means = vec![vec![0.0f32; dim]; 10];
            let counts = train.class_counts();
            for (r, &l) in train.labels.iter().enumerate() {
                for (m, &v) in means[l].iter_mut().zip(train.features.row(r)) {
                    *m += v;
                }
            }
            for (mean, &cnt) in means.iter_mut().zip(&counts) {
                for m in mean.iter_mut() {
                    *m /= cnt.max(1) as f32;
                }
            }
            let correct = test
                .labels
                .iter()
                .enumerate()
                .filter(|(r, &l)| {
                    let row = test.features.row(*r);
                    let pred = (0..10)
                        .min_by(|&a, &b| {
                            let da: f32 =
                                row.iter().zip(&means[a]).map(|(x, m)| (x - m) * (x - m)).sum();
                            let db: f32 =
                                row.iter().zip(&means[b]).map(|(x, m)| (x - m) * (x - m)).sum();
                            da.partial_cmp(&db).unwrap()
                        })
                        .unwrap();
                    pred == l
                })
                .count();
            correct as f32 / test.len() as f32
        };
        assert!(acc(TaskKind::FmnistLike) > acc(TaskKind::CifarLike) + 0.1);
    }
}
