//! Dataset and partition statistics.
//!
//! The federated setting lives and dies by *who holds what data*; this
//! module summarizes datasets and per-client partitions (sizes, label
//! histograms, feature moments) for logging, debugging non-IID setups,
//! and the examples' diagnostic output.

use crate::Dataset;

/// Summary of one dataset (or one client's pool).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Number of samples.
    pub samples: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Per-class sample counts.
    pub class_counts: Vec<usize>,
    /// Mean feature value across all samples and dimensions.
    pub feature_mean: f64,
    /// Standard deviation of feature values.
    pub feature_std: f64,
}

impl DatasetSummary {
    /// Computes the summary.
    pub fn of(dataset: &Dataset) -> DatasetSummary {
        let n = dataset.features.len();
        let mean = if n == 0 { 0.0 } else { f64::from(dataset.features.mean()) };
        let var = if n < 2 {
            0.0
        } else {
            dataset
                .features
                .as_slice()
                .iter()
                .map(|&v| {
                    let d = f64::from(v) - mean;
                    d * d
                })
                .sum::<f64>()
                / (n - 1) as f64
        };
        DatasetSummary {
            samples: dataset.len(),
            dim: dataset.dim(),
            class_counts: dataset.class_counts(),
            feature_mean: mean,
            feature_std: var.sqrt(),
        }
    }

    /// Shannon entropy of the label distribution in bits (log₂). A
    /// balanced 10-class set scores ~log₂10 ≈ 3.32; a single-class
    /// client scores 0.
    pub fn label_entropy_bits(&self) -> f64 {
        let total: usize = self.class_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.class_counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }

    /// The most represented class and its share of the samples.
    pub fn dominant_class(&self) -> Option<(usize, f64)> {
        let total: usize = self.class_counts.iter().sum();
        if total == 0 {
            return None;
        }
        self.class_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(class, &c)| (class, c as f64 / total as f64))
    }
}

/// Per-client partition statistics: summary of each client's pool.
pub fn partition_summaries(dataset: &Dataset, pools: &[Vec<usize>]) -> Vec<DatasetSummary> {
    pools.iter().map(|pool| DatasetSummary::of(&dataset.subset(pool))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::small_fmnist;
    use crate::Partition;

    #[test]
    fn summary_basics() {
        let (train, _) = small_fmnist(500, 10, 1);
        let s = DatasetSummary::of(&train);
        assert_eq!(s.samples, 500);
        assert_eq!(s.dim, 64);
        assert_eq!(s.class_counts.iter().sum::<usize>(), 500);
        assert!(s.feature_mean > 0.0 && s.feature_mean < 1.0);
        assert!(s.feature_std > 0.0);
    }

    #[test]
    fn entropy_detects_balance() {
        let (train, _) = small_fmnist(2000, 10, 2);
        let balanced = DatasetSummary::of(&train);
        assert!(
            balanced.label_entropy_bits() > 3.2,
            "balanced 10-class entropy {}",
            balanced.label_entropy_bits()
        );
        // A single-class subset has zero entropy.
        let class0: Vec<usize> = (0..train.len()).filter(|&i| train.labels[i] == 0).collect();
        let skewed = DatasetSummary::of(&train.subset(&class0));
        assert_eq!(skewed.label_entropy_bits(), 0.0);
        assert_eq!(skewed.dominant_class(), Some((0, 1.0)));
    }

    #[test]
    fn non_iid_partitions_have_lower_entropy() {
        let (train, _) = small_fmnist(2000, 10, 3);
        let mean_entropy = |partition: Partition| {
            let pools = partition.split(&train, 10, 7);
            let sums = partition_summaries(&train, &pools);
            sums.iter().map(DatasetSummary::label_entropy_bits).sum::<f64>() / 10.0
        };
        let iid = mean_entropy(Partition::Iid);
        let skewed = mean_entropy(Partition::PrincipalMix { principal_frac: 0.8 });
        assert!(iid > skewed + 0.5, "iid {iid} vs principal-mix {skewed}");
    }

    #[test]
    fn empty_dataset_summary() {
        let (train, _) = small_fmnist(10, 5, 4);
        let empty = train.subset(&[]);
        let s = DatasetSummary::of(&empty);
        assert_eq!(s.samples, 0);
        assert_eq!(s.label_entropy_bits(), 0.0);
        assert_eq!(s.dominant_class(), None);
    }
}
