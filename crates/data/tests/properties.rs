//! Property-based tests for the data substrate: format round-trips and
//! partition invariants under arbitrary inputs.

use fedl_data::synth::{SyntheticSpec, TaskKind};
use fedl_data::{cifar, idx, Partition};
use proptest::prelude::*;

proptest! {
    #[test]
    fn idx_round_trips_arbitrary_tensors(
        dims in proptest::collection::vec(1u32..6, 1..4),
        fill in any::<u8>(),
    ) {
        let total: usize = dims.iter().map(|&d| d as usize).product();
        let t = idx::IdxTensor { dims: dims.clone(), data: vec![fill; total] };
        let bytes = idx::serialize(&t);
        let back = idx::parse(&bytes).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn idx_rejects_any_truncation(cut in 1usize..20) {
        let t = idx::IdxTensor { dims: vec![2, 3], data: (0..6).collect() };
        let mut bytes = idx::serialize(&t);
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        prop_assert!(idx::parse(&bytes).is_err());
    }

    #[test]
    fn cifar_round_trips(labels in proptest::collection::vec(0u8..10, 1..5)) {
        let recs: Vec<(u8, Vec<u8>)> = labels
            .iter()
            .map(|&l| (l, vec![l.wrapping_mul(25); cifar::IMAGE_BYTES]))
            .collect();
        let bytes = cifar::serialize(&recs).unwrap();
        let ds = cifar::parse(&bytes).unwrap();
        prop_assert_eq!(ds.len(), labels.len());
        let parsed: Vec<u8> = ds.labels.iter().map(|&l| l as u8).collect();
        prop_assert_eq!(parsed, labels);
    }

    #[test]
    fn iid_partition_is_exact_cover(
        clients in 1usize..12,
        n in 20usize..80,
        seed in 0u64..100,
    ) {
        let (train, _) = SyntheticSpec::new(TaskKind::FmnistLike, n, 1, seed)
            .with_dim(4)
            .generate();
        let pools = Partition::Iid.split(&train, clients, seed);
        let mut all: Vec<usize> = pools.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn principal_mix_pools_have_requested_size(
        clients in 1usize..8,
        frac in 0.1f64..1.0,
        seed in 0u64..50,
    ) {
        let (train, _) = SyntheticSpec::new(TaskKind::FmnistLike, 120, 1, seed)
            .with_dim(4)
            .generate();
        let pools = Partition::PrincipalMix { principal_frac: frac }
            .split(&train, clients, seed);
        let per_client = 120 / clients;
        for pool in &pools {
            prop_assert_eq!(pool.len(), per_client);
            prop_assert!(pool.iter().all(|&i| i < train.len()));
        }
    }

    #[test]
    fn streams_are_deterministic_and_in_range(
        lambda in 1.0f64..30.0,
        seed in 0u64..100,
        epoch in 0usize..200,
    ) {
        let stream = fedl_data::stream::OnlineStream::new((0..40).collect(), lambda, seed);
        let a = stream.arrivals(epoch);
        let b = stream.arrivals(epoch);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        prop_assert!(a.iter().all(|&i| i < 40));
    }
}
