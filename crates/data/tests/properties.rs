//! Property-style tests for the data substrate: format round-trips and
//! partition invariants, driven by seeded RNG loops (the offline
//! replacement for proptest — every case derives from a fixed seed).

use fedl_data::synth::{SyntheticSpec, TaskKind};
use fedl_data::{cifar, idx, Partition};
use fedl_linalg::rng::{rng_for, Rng};

const CASES: u64 = 48;

#[test]
fn idx_round_trips_arbitrary_tensors() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0x1D);
        let ndims = rng.gen_range(1..4usize);
        let dims: Vec<u32> = (0..ndims).map(|_| rng.gen_range(1..6u32)).collect();
        let fill = (rng.next_u64() & 0xFF) as u8;
        let total: usize = dims.iter().map(|&d| d as usize).product();
        let t = idx::IdxTensor { dims: dims.clone(), data: vec![fill; total] };
        let bytes = idx::serialize(&t);
        let back = idx::parse(&bytes).unwrap();
        assert_eq!(t, back);
    }
}

#[test]
fn idx_rejects_any_truncation() {
    let t = idx::IdxTensor { dims: vec![2, 3], data: (0..6).collect() };
    let full = idx::serialize(&t);
    for cut in 1..full.len() {
        let mut bytes = full.clone();
        bytes.truncate(full.len() - cut);
        assert!(idx::parse(&bytes).is_err(), "truncation by {cut} must fail");
    }
}

#[test]
fn cifar_round_trips() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0xC1F);
        let n = rng.gen_range(1..5usize);
        let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0..10u32) as u8).collect();
        let recs: Vec<(u8, Vec<u8>)> =
            labels.iter().map(|&l| (l, vec![l.wrapping_mul(25); cifar::IMAGE_BYTES])).collect();
        let bytes = cifar::serialize(&recs).unwrap();
        let ds = cifar::parse(&bytes).unwrap();
        assert_eq!(ds.len(), labels.len());
        let parsed: Vec<u8> = ds.labels.iter().map(|&l| l as u8).collect();
        assert_eq!(parsed, labels);
    }
}

#[test]
fn iid_partition_is_exact_cover() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0x11D);
        let clients = rng.gen_range(1..12usize);
        let n = rng.gen_range(20..80usize);
        let (train, _) =
            SyntheticSpec::new(TaskKind::FmnistLike, n, 1, seed).with_dim(4).generate();
        let pools = Partition::Iid.split(&train, clients, seed);
        let mut all: Vec<usize> = pools.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(all, expect);
    }
}

#[test]
fn principal_mix_pools_have_requested_size() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0x913);
        let clients = rng.gen_range(1..8usize);
        let frac = rng.gen_range(0.1f64..1.0);
        let (train, _) =
            SyntheticSpec::new(TaskKind::FmnistLike, 120, 1, seed).with_dim(4).generate();
        let pools = Partition::PrincipalMix { principal_frac: frac }.split(&train, clients, seed);
        let per_client = 120 / clients;
        for pool in &pools {
            assert_eq!(pool.len(), per_client);
            assert!(pool.iter().all(|&i| i < train.len()));
        }
    }
}

#[test]
fn streams_are_deterministic_and_in_range() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0x57E);
        let lambda = rng.gen_range(1.0f64..30.0);
        let epoch = rng.gen_range(0..200usize);
        let stream = fedl_data::stream::OnlineStream::new((0..40).collect(), lambda, seed);
        let a = stream.arrivals(epoch);
        let b = stream.arrivals(epoch);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&i| i < 40));
    }
}
