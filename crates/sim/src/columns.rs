//! Columnar (struct-of-arrays) client population — the million-client
//! scale-out path (docs/SCALE.md).
//!
//! [`ClientColumns`] holds the static population as parallel columns
//! (one `Vec` per attribute) instead of a `Vec` of per-client structs,
//! and [`EpochColumns`] holds one epoch's realization of the time axis
//! (availability, cost, channel gain, data volume) the same way. Dense
//! kernels in `fedl-core` then scan column slices instead of chasing
//! per-client structs, which is what makes one scheduler epoch over
//! 10⁶ clients a handful of contiguous passes.
//!
//! Determinism contract: [`ClientColumns::build`] consumes the shared
//! population RNG stream in exactly the order
//! [`ClientProfile::build_population`](crate::ClientProfile::build_population) does, and
//! [`ClientColumns::epoch_columns`] replays per-client draws in exactly
//! the order [`ClientProfile::epoch_view`](crate::ClientProfile::epoch_view) does — the scalar methods are
//! retained as the reference path, and `tests/columnar_parity.rs` in
//! `fedl-core` holds the two bit-identical. Within an epoch every
//! client's draws are seeded independently (`rng_for(seed_k, tag)`), so
//! realization order — and therefore sharding — cannot change a single
//! bit of the result.

use fedl_data::stream::arrival_count;
use fedl_linalg::par::par_zip_chunks_grained;
use fedl_linalg::rng::{derive_seed, rng_for, Rng};
use fedl_net::{ChannelModel, ClientRadio};

use crate::client::EpochClientView;
use crate::config::{AvailabilityModel, EnvConfig};

/// Realization grain: populations at most this large are realized
/// inline on the caller (zero dispatch); larger ones fan out across the
/// worker team. Purely a parallel-grain choice — per-client draws are
/// independently seeded, so the split never affects values.
const REALIZE_CHUNK: usize = 16 * 1024;

/// Reusable staging buffer for the `*_into` epoch-realization paths
/// ([`ClientColumns::epoch_columns_into`] /
/// [`ClientColumns::epoch_columns_partial_into`]): one
/// `(available, cost, gain, data_volume)` row per shard client, written
/// in parallel and then scattered into the column vectors. Holding it
/// outside the call lets a steady-state epoch loop realize the time
/// axis with zero heap allocation once the buffer is warm.
#[derive(Debug, Default)]
pub struct EpochRealizeScratch {
    staged: Vec<(bool, f64, f64, u32)>,
}

impl EpochRealizeScratch {
    /// An empty scratch; the buffer is sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The static client population as parallel columns (struct-of-arrays).
///
/// Row `k` across all columns describes client `k`; every column has
/// length [`ClientColumns::len`]. At one million clients the store costs
/// 48 bytes/client ≈ 48 MB (see docs/SCALE.md for the full memory
/// budget).
///
/// ```
/// use fedl_sim::{ClientColumns, EnvConfig};
/// use fedl_net::ChannelModel;
///
/// let config = EnvConfig::small(64, 7);
/// let channel = ChannelModel::default();
/// let cols = ClientColumns::build(&config, &channel);
/// assert_eq!(cols.len(), 64);
/// assert_eq!(cols.distance_m.len(), cols.cpu_hz.len());
/// // Placement respects the cell geometry.
/// assert!(cols.distance_m.iter().all(|&d| d <= config.cell_radius_m));
/// ```
#[derive(Debug, Clone)]
pub struct ClientColumns {
    /// Distance from the server in metres.
    pub distance_m: Vec<f64>,
    /// Base channel gain drawn at creation (used when the channel is not
    /// time-varying).
    pub base_gain: Vec<f64>,
    /// Computation cost in cycles per bit.
    pub cycles_per_bit: Vec<f64>,
    /// CPU frequency in Hz.
    pub cpu_hz: Vec<f64>,
    /// Mean Poisson data-arrival rate λ.
    pub lambda: Vec<f64>,
    /// Per-client root seed for epoch draws and the data stream.
    pub seed: Vec<u64>,
    /// Transmit power in dBm (constant across the population, §6.1).
    pub tx_power_dbm: f64,
}

impl ClientColumns {
    /// Draws the population columns from the environment config.
    ///
    /// Consumes the shared population RNG (`rng_for(config.seed,
    /// 0xC11E)`) with exactly the per-client draw order of
    /// [`ClientProfile::build_population`](crate::ClientProfile::build_population), so a columnar population and
    /// a profile population built from the same config are the same
    /// population.
    pub fn build(config: &EnvConfig, channel: &ChannelModel) -> Self {
        let m = config.num_clients;
        let mut cols = ClientColumns {
            distance_m: Vec::with_capacity(m),
            base_gain: Vec::with_capacity(m),
            cycles_per_bit: Vec::with_capacity(m),
            cpu_hz: Vec::with_capacity(m),
            lambda: Vec::with_capacity(m),
            seed: Vec::with_capacity(m),
            tx_power_dbm: config.tx_power_dbm,
        };
        // The draws share one sequential stream, so this loop is serial
        // by construction; it runs once per environment.
        let mut rng = rng_for(config.seed, 0xC11E);
        for id in 0..m {
            // Uniform placement over the disk: sqrt for area uniformity.
            let r = config.cell_radius_m * rng.gen::<f64>().sqrt();
            let distance_m = r.max(channel.min_distance_m);
            cols.distance_m.push(distance_m);
            cols.base_gain.push(channel.sample_gain(distance_m, &mut rng));
            cols.cycles_per_bit
                .push(rng.gen_range(config.cycles_per_bit_range.0..=config.cycles_per_bit_range.1));
            cols.cpu_hz.push(rng.gen_range(config.cpu_hz_range.0..=config.cpu_hz_range.1));
            cols.lambda.push(rng.gen_range(config.lambda_range.0..=config.lambda_range.1));
            cols.seed.push(derive_seed(config.seed, 0xC11E_0000 + id as u64));
        }
        cols
    }

    /// Number of clients `M`.
    pub fn len(&self) -> usize {
        self.seed.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.seed.is_empty()
    }

    /// Realizes epoch `t` for the whole population as columns.
    ///
    /// Per-client draws replay [`ClientProfile::epoch_view`](crate::ClientProfile::epoch_view)'s stream
    /// (`rng_for(seed_k, 0xE90C ^ t)`: availability, cost, then gain)
    /// bit-for-bit; data volumes come from
    /// [`fedl_data::stream::arrival_count`], which equals the
    /// materialized arrival batch length. Clients are realized in
    /// parallel over contiguous id chunks — each client's stream is
    /// independently seeded, so the fan-out cannot perturb values.
    pub fn epoch_columns(
        &self,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
    ) -> EpochColumns {
        self.epoch_columns_partial(epoch, config, channel, 0..self.len())
    }

    /// [`epoch_columns`](Self::epoch_columns) into caller-owned buffers:
    /// `out`'s columns are resized and overwritten in place. Once
    /// `scratch` and `out` are warm (one prior call at this population
    /// size), a steady-state epoch loop allocates nothing per epoch —
    /// this is the hot path of the serve/dist planes and the scale-tier
    /// bench kernels. Bit-identical to the owned variant at any thread
    /// count.
    pub fn epoch_columns_into(
        &self,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
        scratch: &mut EpochRealizeScratch,
        out: &mut EpochColumns,
    ) {
        self.epoch_columns_partial_into(epoch, config, channel, 0..self.len(), scratch, out);
    }

    /// Realizes epoch `t` for the contiguous id range `shard` only —
    /// the per-worker realization path of `fedl-dist`.
    ///
    /// Columns come back full-length (so downstream kernels keep global
    /// indexing), with rows outside `shard` left at their inert defaults
    /// (`available = false`, zero cost/gain/volume). Because every
    /// client's draws are independently seeded, the rows inside `shard`
    /// are bit-identical to the same rows of a full
    /// [`epoch_columns`](Self::epoch_columns) realization — this is the
    /// invariant that makes shard boundaries invisible in distributed
    /// runs, pinned by `partial_realization_matches_full_rows` below.
    ///
    /// # Panics
    /// Panics if `shard` is out of bounds or reversed.
    pub fn epoch_columns_partial(
        &self,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
        shard: std::ops::Range<usize>,
    ) -> EpochColumns {
        let mut out = EpochColumns::default();
        self.epoch_columns_partial_into(
            epoch,
            config,
            channel,
            shard,
            &mut EpochRealizeScratch::new(),
            &mut out,
        );
        out
    }

    /// [`epoch_columns_partial`](Self::epoch_columns_partial) into
    /// caller-owned buffers (see
    /// [`epoch_columns_into`](Self::epoch_columns_into) for the
    /// allocation contract). Rows outside `shard` are reset to their
    /// inert defaults on every call.
    ///
    /// # Panics
    /// Panics if `shard` is out of bounds or reversed.
    pub fn epoch_columns_partial_into(
        &self,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
        shard: std::ops::Range<usize>,
        scratch: &mut EpochRealizeScratch,
        out: &mut EpochColumns,
    ) {
        let m = self.len();
        assert!(
            shard.start <= shard.end && shard.end <= m,
            "shard {shard:?} out of bounds for population of {m}"
        );
        out.epoch = epoch;
        out.available.clear();
        out.available.resize(m, false);
        out.cost.clear();
        out.cost.resize(m, 0.0);
        out.gain.clear();
        out.gain.resize(m, 0.0);
        out.data_volume.clear();
        out.data_volume.resize(m, 0);
        if shard.is_empty() {
            return;
        }
        let start = shard.start;
        scratch.staged.clear();
        scratch.staged.resize(shard.len(), (false, 0.0, 0.0, 0));
        // Stage rows keyed off the shard's seed column so each worker
        // owns a disjoint `&mut` slice; the scatter below is a straight
        // sequential unzip into the four columns.
        par_zip_chunks_grained(
            &mut scratch.staged,
            1,
            &self.seed[shard],
            1,
            REALIZE_CHUNK,
            |i, row, _seed| row[0] = self.realize_client(start + i, epoch, config, channel),
        );
        for (i, &(on, cost, gain, volume)) in scratch.staged.iter().enumerate() {
            let k = start + i;
            out.available[k] = on;
            out.cost[k] = cost;
            out.gain[k] = gain;
            out.data_volume[k] = volume;
        }
    }

    /// One client's epoch draws (`rng_for(seed_k, 0xE90C ^ t)`:
    /// availability, cost, then gain — the `epoch_view` stream order).
    fn realize_client(
        &self,
        k: usize,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
    ) -> (bool, f64, f64, u32) {
        let mut rng = rng_for(self.seed[k], 0xE90C ^ (epoch as u64));
        let on = match config.availability {
            AvailabilityModel::Bernoulli => rng.gen::<f64>() < config.p_available,
            AvailabilityModel::Markov { p_stay_on, p_stay_off } => {
                // Replay the chain from epoch 0 (pure function of
                // (client seed, epoch)), then consume the
                // Bernoulli draw so the cost/channel stream is
                // identical across availability models.
                let mut on = rng_for(self.seed[k], 0xA40F).gen::<f64>() < config.p_available;
                for e in 1..=epoch {
                    let u = rng_for(self.seed[k], 0xA40F ^ (e as u64) << 1).gen::<f64>();
                    on = if on { u < p_stay_on } else { u >= p_stay_off };
                }
                let _ = rng.gen::<f64>();
                on
            }
        };
        let cost = rng.gen_range(config.cost_range.0..=config.cost_range.1);
        let gain = if config.time_varying_channel {
            channel.sample_gain(self.distance_m[k], &mut rng)
        } else {
            self.base_gain[k]
        };
        let data_volume = arrival_count(self.seed[k], self.lambda[k], epoch) as u32;
        (on, cost, gain, data_volume)
    }
}

/// One epoch's realization of the time axis for the whole population,
/// as parallel columns aligned with [`ClientColumns`]. The `Default`
/// value is an empty realization — a valid `*_into` target whose
/// buffers are sized on first use.
#[derive(Debug, Clone, Default)]
pub struct EpochColumns {
    /// The realized epoch index `t`.
    pub epoch: usize,
    /// Availability mask (`E_t` as a dense column).
    pub available: Vec<bool>,
    /// Rental cost `c_{t,k}`.
    pub cost: Vec<f64>,
    /// Realized channel gain.
    pub gain: Vec<f64>,
    /// Data volume `D_{t,k}` (freshly arrived samples).
    pub data_volume: Vec<u32>,
}

impl EpochColumns {
    /// Ids of the available clients, ascending (`E_t`).
    pub fn available_ids(&self) -> Vec<usize> {
        (0..self.available.len()).filter(|&k| self.available[k]).collect()
    }

    /// Materializes the row-oriented views (the pre-columnar interface;
    /// the training loop and latency model still consume rows).
    pub fn views(&self, cols: &ClientColumns) -> Vec<EpochClientView> {
        (0..self.available.len())
            .map(|k| EpochClientView {
                id: k,
                available: self.available[k],
                cost: self.cost[k],
                radio: ClientRadio {
                    distance_m: cols.distance_m[k],
                    tx_power_dbm: cols.tx_power_dbm,
                    gain: self.gain[k],
                },
                data_volume: self.data_volume[k] as usize,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientProfile;

    fn setup(n: usize, seed: u64) -> (EnvConfig, ChannelModel) {
        (EnvConfig::small(n, seed), ChannelModel::default())
    }

    #[test]
    fn columns_match_profile_population() {
        let (config, channel) = setup(40, 11);
        let cols = ClientColumns::build(&config, &channel);
        let pools = (0..40).map(|k| vec![k]).collect();
        let profiles = ClientProfile::build_population(&config, &channel, pools);
        assert_eq!(cols.len(), profiles.len());
        for (k, p) in profiles.iter().enumerate() {
            assert_eq!(cols.distance_m[k].to_bits(), p.distance_m.to_bits());
            assert_eq!(cols.base_gain[k].to_bits(), p.base_gain.to_bits());
            assert_eq!(cols.cycles_per_bit[k].to_bits(), p.compute.cycles_per_bit.to_bits());
            assert_eq!(cols.cpu_hz[k].to_bits(), p.compute.cpu_hz.to_bits());
            assert_eq!(cols.seed[k], p.seed);
        }
    }

    #[test]
    fn epoch_columns_match_scalar_views() {
        let (config, channel) = setup(60, 12);
        let cols = ClientColumns::build(&config, &channel);
        let pools = (0..60).map(|k| vec![k]).collect();
        let profiles = ClientProfile::build_population(&config, &channel, pools);
        for epoch in [0usize, 1, 7, 33] {
            let ec = cols.epoch_columns(epoch, &config, &channel);
            let views = ec.views(&cols);
            for p in &profiles {
                let v = p.epoch_view(epoch, &config, &channel);
                let w = &views[p.id];
                assert_eq!(v.available, w.available);
                assert_eq!(v.cost.to_bits(), w.cost.to_bits());
                assert_eq!(v.radio.gain.to_bits(), w.radio.gain.to_bits());
                assert_eq!(v.data_volume, w.data_volume);
            }
        }
    }

    #[test]
    fn epoch_columns_match_under_markov_and_frozen_channel() {
        let (mut config, channel) = setup(25, 13);
        config.availability =
            crate::config::AvailabilityModel::Markov { p_stay_on: 0.9, p_stay_off: 0.8 };
        config.time_varying_channel = false;
        let cols = ClientColumns::build(&config, &channel);
        let pools = (0..25).map(|k| vec![k]).collect();
        let profiles = ClientProfile::build_population(&config, &channel, pools);
        for epoch in [0usize, 5, 19] {
            let ec = cols.epoch_columns(epoch, &config, &channel);
            for p in &profiles {
                let v = p.epoch_view(epoch, &config, &channel);
                assert_eq!(v.available, ec.available[p.id], "epoch {epoch} client {}", p.id);
                assert_eq!(v.radio.gain.to_bits(), ec.gain[p.id].to_bits());
            }
        }
    }

    #[test]
    fn partial_realization_matches_full_rows() {
        let (config, channel) = setup(90, 15);
        let cols = ClientColumns::build(&config, &channel);
        for epoch in [0usize, 4, 21] {
            let full = cols.epoch_columns(epoch, &config, &channel);
            for shard in [0..30usize, 30..61, 61..90, 0..90, 45..45] {
                let part = cols.epoch_columns_partial(epoch, &config, &channel, shard.clone());
                assert_eq!(part.available.len(), 90);
                for k in 0..90 {
                    if shard.contains(&k) {
                        assert_eq!(part.available[k], full.available[k], "epoch {epoch} k {k}");
                        assert_eq!(part.cost[k].to_bits(), full.cost[k].to_bits());
                        assert_eq!(part.gain[k].to_bits(), full.gain[k].to_bits());
                        assert_eq!(part.data_volume[k], full.data_volume[k]);
                    } else {
                        assert!(!part.available[k], "row {k} outside {shard:?} must be inert");
                    }
                }
            }
        }
    }

    #[test]
    fn into_realization_matches_fresh_and_reuses_buffers() {
        let (config, channel) = setup(70, 16);
        let cols = ClientColumns::build(&config, &channel);
        let mut scratch = EpochRealizeScratch::new();
        let mut out = EpochColumns::default();
        cols.epoch_columns_into(0, &config, &channel, &mut scratch, &mut out);
        let ptr = out.cost.as_ptr();
        for epoch in [1usize, 2, 9] {
            cols.epoch_columns_into(epoch, &config, &channel, &mut scratch, &mut out);
            let fresh = cols.epoch_columns(epoch, &config, &channel);
            assert_eq!(out.epoch, fresh.epoch);
            assert_eq!(out.available, fresh.available);
            for k in 0..cols.len() {
                assert_eq!(out.cost[k].to_bits(), fresh.cost[k].to_bits(), "epoch {epoch} k {k}");
                assert_eq!(out.gain[k].to_bits(), fresh.gain[k].to_bits());
                assert_eq!(out.data_volume[k], fresh.data_volume[k]);
            }
            assert_eq!(out.cost.as_ptr(), ptr, "steady state must reuse the column buffers");
        }
        // A partial refill resets the rows outside the shard.
        cols.epoch_columns_partial_into(3, &config, &channel, 10..20, &mut scratch, &mut out);
        let part = cols.epoch_columns_partial(3, &config, &channel, 10..20);
        assert_eq!(out.available, part.available);
        assert!(out.cost[..10].iter().chain(&out.cost[20..]).all(|&c| c == 0.0));
    }

    #[test]
    fn available_ids_are_ascending_and_match_mask() {
        let (config, channel) = setup(50, 14);
        let cols = ClientColumns::build(&config, &channel);
        let ec = cols.epoch_columns(3, &config, &channel);
        let ids = ec.available_ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), ec.available.iter().filter(|&&a| a).count());
        assert!(ids.iter().all(|&k| ec.available[k]));
    }
}
