//! Static client profiles and their per-epoch realizations.

use fedl_data::stream::OnlineStream;
use fedl_linalg::rng::{rng_for, Rng};
use fedl_net::{ChannelModel, ClientRadio, ComputeProfile};

use crate::columns::ClientColumns;
use crate::config::{AvailabilityModel, EnvConfig};

/// Everything about a client that does not change over time.
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Stable identifier `k ∈ [0, M)`.
    pub id: usize,
    /// Distance from the server in metres.
    pub distance_m: f64,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Base channel gain drawn at creation (used when the channel is not
    /// time-varying).
    pub base_gain: f64,
    /// Computation capability.
    pub compute: ComputeProfile,
    /// Online data source (partition pool + Poisson arrival process).
    pub stream: OnlineStream,
    /// Seed for this client's per-epoch draws.
    pub seed: u64,
}

/// What the time axis does to a client at one epoch: the realized
/// availability, rental cost, channel, and data volume.
#[derive(Debug, Clone)]
pub struct EpochClientView {
    /// Client id.
    pub id: usize,
    /// Whether the client is reachable this epoch (Bernoulli, §6.1).
    pub available: bool,
    /// Rental cost `c_{t,k}` (uniform in the configured range).
    pub cost: f64,
    /// This epoch's radio state (shadowing re-drawn when the channel is
    /// time-varying).
    pub radio: ClientRadio,
    /// Data volume `D_{t,k}` (number of freshly arrived samples).
    pub data_volume: usize,
}

impl ClientProfile {
    /// Builds the full population from the environment config and the
    /// per-client partition pools.
    ///
    /// # Panics
    /// Panics if `pools.len()` differs from `config.num_clients` or any
    /// pool is empty (every paper client owns data).
    pub fn build_population(
        config: &EnvConfig,
        channel: &ChannelModel,
        pools: Vec<Vec<usize>>,
    ) -> Vec<ClientProfile> {
        let columns = ClientColumns::build(config, channel);
        Self::from_columns(&columns, pools)
    }

    /// Materializes row-oriented profiles from the columnar population
    /// store ([`ClientColumns`] is the authoritative source of every
    /// static attribute; profiles add the per-client data stream, which
    /// needs the partition pools).
    ///
    /// # Panics
    /// Panics if `pools.len()` differs from the population size or any
    /// pool is empty (every paper client owns data).
    pub fn from_columns(columns: &ClientColumns, pools: Vec<Vec<usize>>) -> Vec<ClientProfile> {
        assert_eq!(pools.len(), columns.len(), "one partition pool per client");
        pools
            .into_iter()
            .enumerate()
            .map(|(id, pool)| {
                assert!(!pool.is_empty(), "client {id} has an empty data pool");
                let stream = OnlineStream::new(pool, columns.lambda[id], columns.seed[id]);
                ClientProfile {
                    id,
                    distance_m: columns.distance_m[id],
                    tx_power_dbm: columns.tx_power_dbm,
                    base_gain: columns.base_gain[id],
                    compute: ComputeProfile {
                        cycles_per_bit: columns.cycles_per_bit[id],
                        cpu_hz: columns.cpu_hz[id],
                    },
                    stream,
                    seed: columns.seed[id],
                }
            })
            .collect()
    }

    /// Realizes this client's epoch-`t` state. Deterministic in
    /// `(client seed, t)`, so policies can be compared on identical
    /// sample paths.
    ///
    /// This is the retained scalar *reference* realization
    /// (docs/SCALE.md): [`ClientColumns::epoch_columns`] replays the
    /// same draws for the whole population at once, and the parity
    /// tests hold the two bit-identical.
    pub fn epoch_view(
        &self,
        epoch: usize,
        config: &EnvConfig,
        channel: &ChannelModel,
    ) -> EpochClientView {
        let mut rng = rng_for(self.seed, 0xE90C ^ (epoch as u64));
        let available = match config.availability {
            AvailabilityModel::Bernoulli => rng.gen::<f64>() < config.p_available,
            AvailabilityModel::Markov { p_stay_on, p_stay_off } => {
                // Replay the chain from epoch 0 so the answer is the same
                // whichever epoch is queried first. Each step's draw is
                // seeded independently, keeping the whole path a pure
                // function of (client seed, epoch).
                let mut on = rng_for(self.seed, 0xA40F).gen::<f64>() < config.p_available;
                for e in 1..=epoch {
                    let u = rng_for(self.seed, 0xA40F ^ (e as u64) << 1).gen::<f64>();
                    on = if on { u < p_stay_on } else { u >= p_stay_off };
                }
                // Consume the Bernoulli draw anyway so the cost/channel
                // stream is identical across availability models.
                let _ = rng.gen::<f64>();
                on
            }
        };
        let cost = rng.gen_range(config.cost_range.0..=config.cost_range.1);
        let gain = if config.time_varying_channel {
            channel.sample_gain(self.distance_m, &mut rng)
        } else {
            self.base_gain
        };
        let radio =
            ClientRadio { distance_m: self.distance_m, tx_power_dbm: self.tx_power_dbm, gain };
        let data_volume = self.stream.arrivals(epoch).len();
        EpochClientView { id: self.id, available, cost, radio, data_volume }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize, seed: u64) -> (EnvConfig, ChannelModel, Vec<ClientProfile>) {
        let config = EnvConfig::small(n, seed);
        let channel = ChannelModel::default();
        let pools = (0..n).map(|k| vec![k, k + n]).collect();
        let clients = ClientProfile::build_population(&config, &channel, pools);
        (config, channel, clients)
    }

    #[test]
    fn population_has_expected_shape() {
        let (config, _, clients) = population(10, 1);
        assert_eq!(clients.len(), 10);
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.id, i);
            assert!(c.distance_m <= config.cell_radius_m);
            assert!(c.distance_m >= 10.0); // channel min distance
            assert!((config.cycles_per_bit_range.0..=config.cycles_per_bit_range.1)
                .contains(&c.compute.cycles_per_bit));
            assert!((config.cpu_hz_range.0..=config.cpu_hz_range.1).contains(&c.compute.cpu_hz));
        }
    }

    #[test]
    fn clients_are_heterogeneous() {
        let (_, _, clients) = population(20, 2);
        let d0 = clients[0].distance_m;
        assert!(clients.iter().any(|c| (c.distance_m - d0).abs() > 1.0));
        let e0 = clients[0].compute.cycles_per_bit;
        assert!(clients.iter().any(|c| (c.compute.cycles_per_bit - e0).abs() > 1.0));
    }

    #[test]
    fn epoch_views_deterministic_and_time_varying() {
        let (config, channel, clients) = population(5, 3);
        let a = clients[0].epoch_view(7, &config, &channel);
        let b = clients[0].epoch_view(7, &config, &channel);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.available, b.available);
        assert_eq!(a.radio.gain, b.radio.gain);
        let c = clients[0].epoch_view(8, &config, &channel);
        assert_ne!(a.cost, c.cost);
    }

    #[test]
    fn cost_in_configured_range() {
        let (config, channel, clients) = population(5, 4);
        for epoch in 0..50 {
            for cl in &clients {
                let v = cl.epoch_view(epoch, &config, &channel);
                assert!(
                    (config.cost_range.0..=config.cost_range.1).contains(&v.cost),
                    "cost {} out of range",
                    v.cost
                );
                assert!(v.data_volume >= 1);
            }
        }
    }

    #[test]
    fn availability_rate_close_to_p() {
        let (config, channel, clients) = population(10, 5);
        let mut avail = 0usize;
        let mut total = 0usize;
        for epoch in 0..200 {
            for cl in &clients {
                total += 1;
                if cl.epoch_view(epoch, &config, &channel).available {
                    avail += 1;
                }
            }
        }
        let rate = avail as f64 / total as f64;
        assert!((rate - config.p_available).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn frozen_channel_when_not_time_varying() {
        let (mut config, channel, _) = population(3, 6);
        config.time_varying_channel = false;
        let pools = (0..3).map(|k| vec![k]).collect();
        let clients = ClientProfile::build_population(&config, &channel, pools);
        let a = clients[1].epoch_view(0, &config, &channel);
        let b = clients[1].epoch_view(9, &config, &channel);
        assert_eq!(a.radio.gain, b.radio.gain);
        assert_eq!(a.radio.gain, clients[1].base_gain);
    }

    #[test]
    fn markov_availability_is_deterministic_and_bursty() {
        let (mut config, channel, clients) = population(6, 9);
        config.availability =
            crate::config::AvailabilityModel::Markov { p_stay_on: 0.95, p_stay_off: 0.95 };
        // Deterministic across queries, including out-of-order ones.
        let late = clients[0].epoch_view(30, &config, &channel).available;
        let early = clients[0].epoch_view(5, &config, &channel).available;
        assert_eq!(clients[0].epoch_view(30, &config, &channel).available, late);
        assert_eq!(clients[0].epoch_view(5, &config, &channel).available, early);
        // Bursty: with sticky transitions, consecutive epochs agree far
        // more often than independent Bernoulli draws would.
        let mut same = 0usize;
        let mut total = 0usize;
        for c in &clients {
            let mut prev = c.epoch_view(0, &config, &channel).available;
            for e in 1..80 {
                let cur = c.epoch_view(e, &config, &channel).available;
                total += 1;
                if cur == prev {
                    same += 1;
                }
                prev = cur;
            }
        }
        let agreement = same as f64 / total as f64;
        assert!(agreement > 0.85, "Markov chain not sticky: agreement {agreement}");
    }

    #[test]
    fn markov_and_bernoulli_share_cost_streams() {
        // Switching the availability model must not perturb the cost or
        // channel sample paths (everything else stays comparable).
        let (mut config, channel, clients) = population(4, 10);
        let bern = clients[1].epoch_view(7, &config, &channel);
        config.availability =
            crate::config::AvailabilityModel::Markov { p_stay_on: 0.9, p_stay_off: 0.7 };
        let markov = clients[1].epoch_view(7, &config, &channel);
        assert_eq!(bern.cost, markov.cost);
        assert_eq!(bern.radio.gain, markov.radio.gain);
        assert_eq!(bern.data_volume, markov.data_volume);
    }

    #[test]
    #[should_panic(expected = "one partition pool per client")]
    fn pool_count_mismatch_rejected() {
        let config = EnvConfig::small(3, 0);
        let channel = ChannelModel::default();
        let _ = ClientProfile::build_population(&config, &channel, vec![vec![0]]);
    }
}
