//! Typed errors for configuration-reachable failures.
//!
//! The simulator historically reported bad configurations by panicking
//! inside `validate()`/constructor asserts. Those panics are fine for
//! programming bugs (empty cohorts mid-run), but budget and environment
//! parameters come straight from user-facing scenario configs, so the
//! fallible entry points ([`crate::BudgetLedger::try_new`],
//! [`crate::EnvConfig::try_validate`]) return a [`SimError`] instead.
//! The panicking methods remain and delegate, with identical message
//! text, so existing callers and `should_panic` tests are untouched.

use std::fmt;

/// A configuration problem detected before any simulation ran.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The long-term budget `C` was zero, negative, or NaN.
    InvalidBudget(f64),
    /// An [`crate::EnvConfig`] field violated its documented range. The
    /// payload names the field and the offending value.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidBudget(b) => {
                write!(f, "budget must be positive, got {b}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid environment config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_text() {
        // The panicking wrappers format these errors with `{e}`; the
        // historical assert messages must stay substrings so existing
        // `should_panic(expected = ...)` tests keep passing.
        let e = SimError::InvalidBudget(-1.0);
        assert!(e.to_string().contains("budget must be positive"));
        let e = SimError::InvalidConfig("bad cost range (5.0, 1.0)".into());
        assert!(e.to_string().contains("bad cost range"));
    }
}
