//! [`EdgeEnvironment`] — the facade the experiment runner drives.
//!
//! One environment = one federation: a population of clients over a
//! shared wireless cell, a global train/test dataset pair partitioned
//! across the clients, and the server's global model. The environment
//! realizes the paper's stochastic processes deterministically per seed,
//! so two policies evaluated on the same seed face *identical* client
//! availability, costs, data arrivals, and channels.

use fedl_data::{Dataset, Partition};
use fedl_json::{ToJson, Value};
use fedl_ml::dane::DaneConfig;
use fedl_ml::metrics;
use fedl_ml::model::Model;
use fedl_net::{ChannelModel, ClientRadio, ComputeProfile, LatencyModel};
use fedl_telemetry::Telemetry;

use crate::client::{ClientProfile, EpochClientView};
use crate::columns::{ClientColumns, EpochColumns};
use crate::config::EnvConfig;
use crate::server::FederatedServer;

/// Outcome of running one epoch (everything FedL's online update needs,
/// plus bookkeeping for the figures).
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index `t`.
    pub epoch: usize,
    /// Selected client ids.
    pub cohort: Vec<usize>,
    /// Iterations executed (`l_t`).
    pub iterations: usize,
    /// Epoch wall-clock latency `d(E_t)` in simulated seconds
    /// (slowest cohort client × iterations).
    pub latency_secs: f64,
    /// Per-iteration latency of each cohort client, same order as
    /// `cohort`.
    pub per_client_iter_latency: Vec<f64>,
    /// Total rental cost charged this epoch.
    pub cost: f64,
    /// Max measured local accuracy `η̂_{t,k}` per cohort client over the
    /// epoch's iterations (eq. (1) takes the max over iterations).
    pub eta_hats: Vec<f32>,
    /// Global loss `F_t(w_t^{l_t})` over *all available* clients' epoch
    /// data (constraint (3d) is stated on all clients).
    pub global_loss_all: f64,
    /// Loss over the selected cohort only (`F̃_t`).
    pub global_loss_selected: f64,
    /// `J·d_k` per cohort client from the final iteration — the
    /// first-order coefficients of the `h_t⁰` linearization.
    pub grad_dot_delta: Vec<f32>,
    /// Each cohort client's local loss at the last broadcast model
    /// (Pow-d's selection signal).
    pub local_losses: Vec<f32>,
    /// Selected clients that failed mid-epoch (battery death, drop-off;
    /// see [`crate::config::EnvConfig::p_dropout`]). Their rent was
    /// paid but they contributed nothing and produced no observations;
    /// `cohort` holds only the survivors.
    pub failed: Vec<usize>,
}

/// A simulated federated edge-learning deployment.
pub struct EdgeEnvironment {
    config: EnvConfig,
    channel: ChannelModel,
    latency: LatencyModel,
    columns: ClientColumns,
    clients: Vec<ClientProfile>,
    train: Dataset,
    test: Dataset,
    server: FederatedServer,
    telemetry: Telemetry,
}

impl EdgeEnvironment {
    /// Builds the environment: partitions `train` across
    /// `config.num_clients` clients, places them in the cell, and seats
    /// `model` on the server.
    pub fn new(
        config: EnvConfig,
        train: Dataset,
        test: Dataset,
        partition: Partition,
        model: Box<dyn Model>,
        dane: DaneConfig,
    ) -> Self {
        config.validate();
        assert_eq!(model.input_dim(), train.dim(), "model/dataset dimension mismatch");
        let channel = ChannelModel::default();
        let pools = partition.split(&train, config.num_clients, config.seed);
        // The columnar store is the authoritative population; the
        // row-oriented profiles are materialized from it for the
        // training loop (docs/SCALE.md).
        let columns = ClientColumns::build(&config, &channel);
        let clients = ClientProfile::from_columns(&columns, pools);
        let latency = LatencyModel {
            bandwidth_hz: 20e6,
            noise_dbm_per_hz: -174.0,
            upload_bits: config.upload_bits,
            bits_per_sample: train.dim() as f64 * 8.0,
        };
        let server = FederatedServer::new(model, dane, config.seed);
        Self {
            config,
            channel,
            latency,
            columns,
            clients,
            train,
            test,
            server,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes the environment's (and its server's) observability through
    /// `telemetry`: every epoch opens a `train` span, emits a `train`
    /// event, and records `sim.*` metrics; the server adds the
    /// iteration-level spans and `ml.*` metrics.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.server.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Number of clients `M`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The client profiles.
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Read access to the global model.
    pub fn model(&self) -> &dyn Model {
        self.server.model()
    }

    /// Read access to the server (checkpointing reads the model and the
    /// aggregated gradient `J` through this).
    pub fn server(&self) -> &FederatedServer {
        &self.server
    }

    /// Mutable access to the server (offline comparators roll back the
    /// model through this).
    pub fn server_mut(&mut self) -> &mut FederatedServer {
        &mut self.server
    }

    /// The columnar population store (docs/SCALE.md).
    pub fn columns(&self) -> &ClientColumns {
        &self.columns
    }

    /// Realizes epoch `t` for the whole population as columns — the
    /// scale path: dense parallel kernel passes, no per-client structs.
    /// Deterministic in the environment seed and bit-identical to
    /// [`EdgeEnvironment::views_reference`].
    pub fn epoch_columns(&self, epoch: usize) -> EpochColumns {
        self.columns.epoch_columns(epoch, &self.config, &self.channel)
    }

    /// Everything the time axis does to every client at epoch `t`
    /// (availability, cost, channel, data volume). Deterministic in the
    /// environment seed. Realized through the columnar path.
    pub fn views(&self, epoch: usize) -> Vec<EpochClientView> {
        self.epoch_columns(epoch).views(&self.columns)
    }

    /// The retained per-client scalar realization (the pre-columnar
    /// `views` implementation, kept as the determinism reference for
    /// the parity tests — docs/SCALE.md).
    pub fn views_reference(&self, epoch: usize) -> Vec<EpochClientView> {
        self.clients.iter().map(|c| c.epoch_view(epoch, &self.config, &self.channel)).collect()
    }

    /// Ids of the clients available at epoch `t` (`E_t`).
    pub fn available(&self, epoch: usize) -> Vec<usize> {
        self.views(epoch).into_iter().filter(|v| v.available).map(|v| v.id).collect()
    }

    /// Realized per-iteration latency `τ^loc + τ^cm` of each listed
    /// client at epoch `t`, under equal FDMA sharing among exactly those
    /// clients. Policies use the *previous* epoch's values (0-lookahead);
    /// the environment also uses this for the current epoch's outcome.
    pub fn per_iteration_latency(&self, epoch: usize, ids: &[usize]) -> Vec<f64> {
        let views = self.views(epoch);
        let radios: Vec<&ClientRadio> = ids.iter().map(|&k| &views[k].radio).collect();
        let computes: Vec<&ComputeProfile> =
            ids.iter().map(|&k| &self.clients[k].compute).collect();
        let samples: Vec<usize> = ids.iter().map(|&k| views[k].data_volume).collect();
        if self.config.optimal_bandwidth && !ids.is_empty() {
            let compute_secs: Vec<f64> = computes
                .iter()
                .zip(&samples)
                .map(|(c, &n)| c.local_update_secs(n as f64 * self.latency.bits_per_sample))
                .collect();
            let n0 = fedl_net::dbm_to_watts(self.latency.noise_dbm_per_hz);
            let alloc = fedl_net::min_makespan(
                &radios,
                &compute_secs,
                self.latency.upload_bits,
                self.latency.bandwidth_hz,
                n0,
            )
            .expect("non-empty cohort");
            return radios
                .iter()
                .zip(&compute_secs)
                .zip(&alloc.bandwidth_hz)
                .map(|((r, &t), &b)| t + self.latency.upload_bits / fedl_net::rate_bps(r, b, n0))
                .collect();
        }
        self.latency.per_iteration_secs(&radios, &computes, &samples)
    }

    /// Per-iteration latency of each listed client at epoch `t` assuming
    /// a *nominal* FDMA share of `B / share_count` each, independent of
    /// how many clients are listed. Policies use this as a comparable
    /// per-client latency estimate (e.g. "how slow would k be in a
    /// cohort of n?") without coupling the estimates through the
    /// cohort-size-dependent bandwidth split.
    pub fn latency_with_share(&self, epoch: usize, ids: &[usize], share_count: usize) -> Vec<f64> {
        assert!(share_count > 0, "share count must be positive");
        let views = self.views(epoch);
        let share_model = LatencyModel {
            bandwidth_hz: self.latency.bandwidth_hz / share_count as f64,
            ..self.latency
        };
        ids.iter()
            .map(|&k| {
                share_model.per_iteration_secs(
                    &[&views[k].radio],
                    &[&self.clients[k].compute],
                    &[views[k].data_volume],
                )[0]
            })
            .collect()
    }

    /// Runs epoch `t` with the given cohort for `iterations` global
    /// iterations, mutating the global model, and reports everything the
    /// online algorithm and the figures consume.
    ///
    /// # Panics
    /// Panics if the cohort is empty or contains an unavailable client —
    /// selecting an offline client is a policy bug the simulator surfaces
    /// immediately.
    pub fn run_epoch(&mut self, epoch: usize, cohort: &[usize], iterations: usize) -> EpochReport {
        self.run_epoch_in(epoch, cohort, iterations, None)
    }

    /// [`Self::run_epoch`] with an explicit parent span: the `train`
    /// phase timer (and everything the server nests under it) becomes a
    /// child of `parent`, so the runner's `epoch` span heads the whole
    /// phase tree in the run log.
    pub fn run_epoch_in(
        &mut self,
        epoch: usize,
        cohort: &[usize],
        iterations: usize,
        parent: Option<&fedl_telemetry::Span>,
    ) -> EpochReport {
        assert!(!cohort.is_empty(), "epoch with empty cohort");
        assert!(iterations > 0, "epoch needs at least one iteration");
        let views = self.views(epoch);
        for &k in cohort {
            assert!(k < self.clients.len(), "unknown client {k}");
            assert!(views[k].available, "client {k} is unavailable at epoch {epoch}");
        }
        let available: Vec<usize> = views.iter().filter(|v| v.available).map(|v| v.id).collect();

        // Mid-epoch failures: each selected client independently drops
        // out with probability p_dropout. At least one client survives
        // (a fully dead epoch would stall the FL process; the last
        // selected client is deemed to have completed).
        let full_cohort = cohort;
        let mut failed = Vec::new();
        let mut cohort: Vec<usize> = Vec::with_capacity(full_cohort.len());
        if self.config.p_dropout > 0.0 {
            use fedl_linalg::rng::Rng;
            for &k in full_cohort {
                let label = (epoch as u64) << 32 | k as u64;
                let mut rng = fedl_linalg::rng::rng_for(
                    fedl_linalg::rng::derive_seed(self.config.seed, 0xDEAD),
                    label,
                );
                if rng.gen::<f64>() < self.config.p_dropout {
                    failed.push(k);
                } else {
                    cohort.push(k);
                }
            }
            if cohort.is_empty() {
                let survivor = failed.pop().expect("non-empty cohort");
                cohort.push(survivor);
            }
        } else {
            cohort.extend_from_slice(full_cohort);
        }
        let cohort = &cohort[..];

        // Materialize each cohort client's epoch working set once.
        let cohort_data: Vec<(usize, Dataset)> = cohort
            .iter()
            .map(|&k| (k, self.clients[k].stream.epoch_dataset(&self.train, epoch)))
            .collect();
        let cohort_refs: Vec<(usize, &Dataset)> =
            cohort_data.iter().map(|(k, d)| (*k, d)).collect();

        let train_span = match parent {
            Some(p) => p.child("train"),
            None => self.telemetry.span("train"),
        };
        let mut eta_max = vec![0.0f32; cohort.len()];
        let mut last_deltas = Vec::new();
        let mut local_losses = vec![0.0f32; cohort.len()];
        for it in 0..iterations {
            let stats = self.server.run_iteration_in(
                &cohort_refs,
                available.len(),
                self.config.aggregation,
                epoch,
                it,
                Some(&train_span),
            );
            for (m, &e) in eta_max.iter_mut().zip(&stats.eta_hats) {
                *m = m.max(e);
            }
            if it + 1 == iterations {
                last_deltas = stats.deltas;
                local_losses = stats.losses_at_w;
            }
        }
        drop(train_span);

        // h_t⁰ linearization coefficients: J · d_k on the final iteration.
        let j = self.server.j_agg();
        let grad_dot_delta: Vec<f32> = last_deltas.iter().map(|d| j.dot(d)).collect();

        // Latency and cost are realized from the same epoch views.
        // Rent is owed for the *full* selection (failures happen after
        // commitment); time is gated by the surviving stragglers.
        let per_client_iter_latency = self.per_iteration_latency(epoch, cohort);
        let latency_secs =
            per_client_iter_latency.iter().copied().fold(0.0f64, f64::max) * iterations as f64;
        let cost: f64 = full_cohort.iter().map(|&k| views[k].cost).sum();

        // Global losses at the epoch-final model.
        let global_loss_selected =
            weighted_loss(self.server.model(), cohort_data.iter().map(|(_, d)| d));
        let all_data: Vec<Dataset> = available
            .iter()
            .map(|&k| self.clients[k].stream.epoch_dataset(&self.train, epoch))
            .collect();
        let global_loss_all = weighted_loss(self.server.model(), all_data.iter());

        if self.telemetry.enabled() {
            // Per-client payment attribution: rent is owed for the full
            // selection (failures happen after commitment), so `charged`
            // lists every rented client, survivor or not.
            let charged: Vec<usize> = full_cohort.to_vec();
            let per_client_cost: Vec<f64> = full_cohort.iter().map(|&k| views[k].cost).collect();
            // Phase split of the realized latencies (equal-share FDMA
            // only; the min-makespan allocator interleaves the phases).
            let splits = if self.config.optimal_bandwidth {
                Vec::new()
            } else {
                let radios: Vec<&ClientRadio> = cohort.iter().map(|&k| &views[k].radio).collect();
                let computes: Vec<&ComputeProfile> =
                    cohort.iter().map(|&k| &self.clients[k].compute).collect();
                let samples: Vec<usize> = cohort.iter().map(|&k| views[k].data_volume).collect();
                self.latency.per_iteration_split(&radios, &computes, &samples)
            };
            let compute_split: Vec<f64> = splits.iter().map(|s| s.compute_secs).collect();
            let upload_split: Vec<f64> = splits.iter().map(|s| s.upload_secs).collect();
            self.telemetry.emit(
                "train",
                vec![
                    ("epoch", Value::from(epoch)),
                    ("cohort", cohort.to_vec().to_json_value()),
                    ("failed", failed.to_json_value()),
                    ("iterations", Value::from(iterations)),
                    ("latency_secs", Value::Float(latency_secs)),
                    ("per_client_iter_latency", per_client_iter_latency.to_json_value()),
                    ("cost", Value::Float(cost)),
                    ("charged", charged.to_json_value()),
                    ("per_client_cost", per_client_cost.to_json_value()),
                    ("per_client_compute_secs", compute_split.to_json_value()),
                    ("per_client_upload_secs", upload_split.to_json_value()),
                ],
            );
            self.telemetry.histogram("sim.epoch_latency_secs").record(latency_secs);
            let iter_hist = self.telemetry.histogram("sim.client_iter_latency_secs");
            for &l in &per_client_iter_latency {
                iter_hist.record(l);
            }
            self.telemetry.counter("sim.failed_clients").add(failed.len() as u64);
            let compute_hist = self.telemetry.histogram("net.compute_secs");
            let upload_hist = self.telemetry.histogram("net.upload_secs");
            for split in &splits {
                compute_hist.record(split.compute_secs);
                upload_hist.record(split.upload_secs);
            }
        }

        EpochReport {
            epoch,
            cohort: cohort.to_vec(),
            iterations,
            latency_secs,
            per_client_iter_latency,
            cost,
            eta_hats: eta_max,
            global_loss_all,
            global_loss_selected,
            grad_dot_delta,
            local_losses,
            failed,
        }
    }

    /// Test-set accuracy of the current global model.
    pub fn test_accuracy(&self) -> f64 {
        metrics::accuracy(self.server.model(), &self.test)
    }

    /// Test-set loss of the current global model.
    pub fn test_loss(&self) -> f64 {
        metrics::loss(self.server.model(), &self.test)
    }
}

/// Data-volume-weighted loss `Σ θ_k F_k(w)` with `θ_k = D_k / Σ D`
/// (paper §3.1, "Loss").
fn weighted_loss<'a>(model: &dyn Model, datasets: impl Iterator<Item = &'a Dataset>) -> f64 {
    let mut total_samples = 0usize;
    let mut acc = 0.0f64;
    for d in datasets {
        if d.is_empty() {
            continue;
        }
        total_samples += d.len();
        acc += metrics::loss(model, d) * d.len() as f64;
    }
    if total_samples == 0 {
        0.0
    } else {
        acc / total_samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_data::synth::small_fmnist;
    use fedl_ml::model::SoftmaxRegression;

    fn env(seed: u64) -> EdgeEnvironment {
        let (train, test) = small_fmnist(600, 150, seed);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let dane = DaneConfig { local_steps: 6, lr: 0.3, ..Default::default() };
        EdgeEnvironment::new(
            EnvConfig::small(8, seed),
            train,
            test,
            Partition::Iid,
            Box::new(model),
            dane,
        )
    }

    #[test]
    fn construction_and_views() {
        let e = env(1);
        assert_eq!(e.num_clients(), 8);
        let views = e.views(0);
        assert_eq!(views.len(), 8);
        let avail = e.available(0);
        assert!(avail.iter().all(|&k| views[k].available));
    }

    #[test]
    fn run_epoch_produces_consistent_report() {
        let mut e = env(2);
        let avail = e.available(0);
        assert!(avail.len() >= 2, "seed should give >=2 available clients");
        let cohort = &avail[..2];
        let report = e.run_epoch(0, cohort, 3);
        assert_eq!(report.cohort, cohort);
        assert_eq!(report.iterations, 3);
        assert_eq!(report.per_client_iter_latency.len(), 2);
        assert_eq!(report.eta_hats.len(), 2);
        assert_eq!(report.grad_dot_delta.len(), 2);
        assert!(report.latency_secs > 0.0);
        assert!(report.cost > 0.0);
        let max_iter = report.per_client_iter_latency.iter().copied().fold(0.0f64, f64::max);
        assert!((report.latency_secs - 3.0 * max_iter).abs() < 1e-9);
        assert!(report.global_loss_all.is_finite());
        assert!(report.global_loss_selected.is_finite());
    }

    #[test]
    fn training_improves_accuracy_over_epochs() {
        let mut e = env(3);
        let before = e.test_accuracy();
        for t in 0..12 {
            let avail = e.available(t);
            if avail.is_empty() {
                continue;
            }
            let cohort: Vec<usize> = avail.iter().copied().take(4).collect();
            e.run_epoch(t, &cohort, 3);
        }
        let after = e.test_accuracy();
        assert!(
            after > before + 0.15,
            "federated training should lift accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn same_seed_same_sample_path() {
        let a = env(4).views(5);
        let b = env(4).views(5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.available, y.available);
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.data_volume, y.data_volume);
        }
    }

    #[test]
    #[should_panic(expected = "unavailable at epoch")]
    fn selecting_unavailable_client_panics() {
        let mut e = env(5);
        // Find an unavailable client at some epoch.
        for t in 0..50 {
            let views = e.views(t);
            if let Some(v) = views.iter().find(|v| !v.available) {
                let id = v.id;
                e.run_epoch(t, &[id], 1);
                return; // should have panicked
            }
        }
        panic!("unavailable at epoch (fallback: no unavailable client found)");
    }

    #[test]
    fn dropout_drops_clients_but_still_charges_them() {
        let (train, test) = small_fmnist(400, 100, 44);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let mut config = EnvConfig::small(8, 44);
        config.p_dropout = 0.5;
        let mut e = EdgeEnvironment::new(
            config,
            train,
            test,
            Partition::Iid,
            Box::new(model),
            DaneConfig { local_steps: 3, ..Default::default() },
        );
        let mut saw_failure = false;
        for t in 0..12 {
            let avail = e.available(t);
            if avail.len() < 3 {
                continue;
            }
            let views = e.views(t);
            let cohort = &avail[..3];
            let expected_cost: f64 = cohort.iter().map(|&k| views[k].cost).sum();
            let report = e.run_epoch(t, cohort, 2);
            // Survivors + failures partition the selection.
            assert_eq!(report.cohort.len() + report.failed.len(), 3);
            assert!(!report.cohort.is_empty(), "at least one client survives");
            // Rent is owed for everyone selected.
            assert!((report.cost - expected_cost).abs() < 1e-9);
            // Observation vectors align with the survivors only.
            assert_eq!(report.eta_hats.len(), report.cohort.len());
            assert_eq!(report.per_client_iter_latency.len(), report.cohort.len());
            saw_failure |= !report.failed.is_empty();
        }
        assert!(saw_failure, "p_dropout=0.5 over 12 epochs must fail someone");
    }

    #[test]
    fn optimal_bandwidth_never_slower_than_equal_share() {
        let (train, test) = small_fmnist(300, 50, 45);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let build = |optimal: bool| {
            let mut config = EnvConfig::small(6, 45);
            config.optimal_bandwidth = optimal;
            let m = SoftmaxRegression::new(model.input_dim(), 10, 0.001);
            EdgeEnvironment::new(
                config,
                train.clone(),
                test.clone(),
                Partition::Iid,
                Box::new(m),
                DaneConfig::default(),
            )
        };
        let equal = build(false);
        let optimal = build(true);
        for t in 0..5 {
            let avail = equal.available(t);
            if avail.len() < 3 {
                continue;
            }
            let ids = &avail[..3];
            let slow_eq = equal.per_iteration_latency(t, ids).into_iter().fold(0.0f64, f64::max);
            let slow_opt = optimal.per_iteration_latency(t, ids).into_iter().fold(0.0f64, f64::max);
            assert!(
                slow_opt <= slow_eq * (1.0 + 1e-6),
                "epoch {t}: optimal {slow_opt} > equal {slow_eq}"
            );
        }
    }

    #[test]
    fn zero_dropout_never_fails_anyone() {
        let mut e = env(7);
        for t in 0..6 {
            let avail = e.available(t);
            if avail.len() < 2 {
                continue;
            }
            let report = e.run_epoch(t, &avail[..2], 1);
            assert!(report.failed.is_empty());
            assert_eq!(report.cohort.len(), 2);
        }
    }

    #[test]
    fn telemetry_records_epoch_spans_and_events() {
        use fedl_telemetry::Telemetry;
        let mut e = env(8);
        let (tel, handle) = Telemetry::in_memory();
        e.set_telemetry(tel.clone());
        let avail = e.available(0);
        assert!(avail.len() >= 2);
        let report = e.run_epoch(0, &avail[..2], 3);
        let events = handle.events().unwrap();
        let train = events
            .iter()
            .find(|ev| ev.get("kind").unwrap().as_str() == Some("train"))
            .expect("run_epoch must emit a train event");
        assert_eq!(train.get("epoch").unwrap().as_i64(), Some(0));
        assert_eq!(train.get("iterations").unwrap().as_i64(), Some(3));
        assert_eq!(train.get("latency_secs").unwrap().as_f64(), Some(report.latency_secs));
        assert_eq!(train.get("cohort").unwrap().as_arr().unwrap().len(), 2);
        // 3 iterations => 3 round spans, each with local-train + aggregate.
        assert_eq!(tel.histogram("span.round").count(), 3);
        assert_eq!(tel.histogram("span.local-train").count(), 3);
        assert_eq!(tel.histogram("span.aggregate").count(), 3);
        assert_eq!(tel.histogram("span.train").count(), 1);
        assert_eq!(tel.counter("sim.iterations").value(), 3);
        // 2 cohort clients x 3 iterations of local solves.
        assert_eq!(tel.counter("ml.local_updates").value(), 6);
        assert_eq!(tel.histogram("sim.epoch_latency_secs").count(), 1);
        assert_eq!(tel.histogram("net.compute_secs").count(), 2);
    }

    #[test]
    fn disabled_telemetry_leaves_results_identical() {
        let mut plain = env(9);
        let mut instrumented = env(9);
        instrumented.set_telemetry(fedl_telemetry::Telemetry::in_memory().0);
        let avail = plain.available(0);
        assert!(avail.len() >= 2);
        let a = plain.run_epoch(0, &avail[..2], 2);
        let b = instrumented.run_epoch(0, &avail[..2], 2);
        assert_eq!(a.eta_hats, b.eta_hats);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.latency_secs, b.latency_secs);
        assert_eq!(a.global_loss_all, b.global_loss_all);
    }

    #[test]
    fn latency_reflects_cohort_size_effects() {
        let e = env(6);
        let avail = e.available(0);
        assert!(avail.len() >= 3);
        let solo = e.per_iteration_latency(0, &avail[..1]);
        let many = e.per_iteration_latency(0, &avail.clone());
        // Same client in a bigger FDMA cohort is never faster.
        assert!(many[0] >= solo[0]);
    }
}
