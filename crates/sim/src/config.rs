//! Environment configuration — the paper's §6.1 constants, overridable
//! for scaled-down tests.

use fedl_json::{obj, ToJson, Value};

use crate::error::SimError;

/// How the server normalizes the summed client directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationNorm {
    /// Divide by the number of *available* clients `|E_t|` — the paper's
    /// aggregation rule (w^i = w^{i−1} + (1/|E_t|)·Σ x_k·d_k). Selecting
    /// more clients genuinely enlarges the aggregate step, which is what
    /// gives FedCS its strong early rounds in Figs. 2–5.
    Available,
    /// Divide by the cohort size — the FedAvg-style rule, provided for
    /// the aggregation ablation.
    Cohort,
}

/// How client availability evolves over epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AvailabilityModel {
    /// Independent Bernoulli draw each epoch with probability
    /// `p_available` — the paper's §6.1 setting.
    Bernoulli,
    /// Two-state Markov chain (bursty availability: a device that just
    /// dropped off tends to stay off — battery charging, night time).
    /// The initial state is Bernoulli(`p_available`).
    Markov {
        /// P(on at t+1 | on at t).
        p_stay_on: f64,
        /// P(off at t+1 | off at t).
        p_stay_off: f64,
    },
}

impl AvailabilityModel {
    /// Checks probability ranges, returning the violation as a value.
    pub fn try_validate(&self) -> Result<(), SimError> {
        if let AvailabilityModel::Markov { p_stay_on, p_stay_off } = *self {
            if !(0.0..=1.0).contains(&p_stay_on) || !(0.0..=1.0).contains(&p_stay_off) {
                return Err(SimError::InvalidConfig(format!(
                    "Markov probabilities must be in [0, 1]: {p_stay_on}, {p_stay_off}"
                )));
            }
        }
        Ok(())
    }

    /// Validates probability ranges.
    ///
    /// # Panics
    /// Panics with the [`Self::try_validate`] error message.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Client-population tiers of the `scale` scenario family
/// ([`EnvConfig::scale`], docs/SCALE.md). The tier sets only the
/// population size; every per-client distribution keeps the paper's
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// 10 000 clients — small enough for debug-mode tests and the CI
    /// quick bench, large enough that per-client loops already hurt.
    Tier10k,
    /// 100 000 clients — the acceptance tier: a full scheduler epoch
    /// must complete through the columnar path.
    Tier100k,
    /// 1 000 000 clients — the ROADMAP north-star tier, exercised by the
    /// paper-profile bench kernels.
    Tier1M,
}

impl ScaleTier {
    /// All tiers, ascending.
    pub const ALL: [ScaleTier; 3] = [ScaleTier::Tier10k, ScaleTier::Tier100k, ScaleTier::Tier1M];

    /// The population size `M` of this tier.
    pub fn num_clients(self) -> usize {
        match self {
            ScaleTier::Tier10k => 10_000,
            ScaleTier::Tier100k => 100_000,
            ScaleTier::Tier1M => 1_000_000,
        }
    }

    /// Short label used in bench kernel names (`scale/score_update_10k`).
    pub fn label(self) -> &'static str {
        match self {
            ScaleTier::Tier10k => "10k",
            ScaleTier::Tier100k => "100k",
            ScaleTier::Tier1M => "1m",
        }
    }
}

/// Full specification of a simulated edge federation.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Number of clients `M` (paper: 100).
    pub num_clients: usize,
    /// Cell radius in metres (paper: 500, server at the centre).
    pub cell_radius_m: f64,
    /// Availability probability per client per epoch (Bernoulli model)
    /// or the initial on-probability (Markov model).
    pub p_available: f64,
    /// Availability dynamics.
    pub availability: AvailabilityModel,
    /// Probability that a *selected* client fails mid-epoch (battery
    /// death, connection drop — the paper's §1 motivating uncertainty).
    /// The server aggregates without the casualty; its rent is still
    /// paid (the failure happens after commitment).
    pub p_dropout: f64,
    /// Per-epoch rental cost range, uniform (paper: [0.1, 12], modelling
    /// Amazon dynamic prices).
    pub cost_range: (f64, f64),
    /// Range of per-client mean data-arrival rates λ (Poisson, §6.1).
    pub lambda_range: (f64, f64),
    /// Transmit power in dBm (paper: 10 for every client).
    pub tx_power_dbm: f64,
    /// CPU frequency range in Hz (paper: up to 2 GHz).
    pub cpu_hz_range: (f64, f64),
    /// Cycles-per-bit range (paper: U[10, 30]).
    pub cycles_per_bit_range: (f64, f64),
    /// Upload payload in bits (model size `s`, constant across clients).
    pub upload_bits: f64,
    /// Whether shadow fading is re-drawn each epoch (time-varying
    /// channels) or frozen at client creation.
    pub time_varying_channel: bool,
    /// Aggregation normalization.
    pub aggregation: AggregationNorm,
    /// Use the min-makespan FDMA bandwidth split
    /// ([`fedl_net::allocation::min_makespan`], the joint-allocation
    /// upgrade of the paper's reference \[24\]) instead of the default
    /// equal share.
    pub optimal_bandwidth: bool,
    /// Root seed for every stochastic process in the environment.
    pub seed: u64,
}

impl EnvConfig {
    /// The paper's full-scale setting (M = 100 in a 500 m cell).
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            num_clients: 100,
            cell_radius_m: 500.0,
            p_available: 0.8,
            availability: AvailabilityModel::Bernoulli,
            p_dropout: 0.0,
            cost_range: (0.1, 12.0),
            lambda_range: (20.0, 60.0),
            tx_power_dbm: 10.0,
            cpu_hz_range: (0.5e9, 2.0e9),
            cycles_per_bit_range: (10.0, 30.0),
            // ~1 Mbit model update: far/deep-shadowed clients take
            // seconds to upload while cell-centre clients take tens of
            // milliseconds — the stable heterogeneity a latency-aware
            // selector can exploit.
            upload_bits: 1e6,
            time_varying_channel: true,
            aggregation: AggregationNorm::Available,
            optimal_bandwidth: false,
            seed,
        }
    }

    /// A scaled-down setting for unit tests and examples: everything is
    /// the same shape, just smaller.
    pub fn small(num_clients: usize, seed: u64) -> Self {
        Self { num_clients, lambda_range: (8.0, 24.0), ..Self::paper_scale(seed) }
    }

    /// The `scale` scenario family (docs/SCALE.md): the paper's §6.1
    /// heterogeneity at production population sizes. Identical to
    /// [`EnvConfig::small`] except for the client count, so the 10k tier
    /// is directly comparable to the test-scale scenarios and the 1M
    /// tier exercises the columnar scheduler path
    /// ([`crate::ClientColumns`]) at the ROADMAP's north-star size.
    pub fn scale(tier: ScaleTier, seed: u64) -> Self {
        Self { num_clients: tier.num_clients(), ..Self::small(1, seed) }
    }

    /// Checks internal consistency, returning the first violated
    /// requirement as a [`SimError`] instead of panicking.
    // The negated comparisons are load-bearing: `!(x > 0.0)` also
    // rejects NaN, which `x <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn try_validate(&self) -> Result<(), SimError> {
        let fail = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.num_clients == 0 {
            return fail("need at least one client".into());
        }
        if !(self.cell_radius_m > 0.0) {
            return fail(format!("non-positive cell radius {}", self.cell_radius_m));
        }
        if !(self.p_available > 0.0 && self.p_available <= 1.0) {
            return fail(format!(
                "availability probability must be in (0, 1], got {}",
                self.p_available
            ));
        }
        self.availability.try_validate()?;
        if !(0.0..1.0).contains(&self.p_dropout) {
            return fail(format!("dropout probability must be in [0, 1), got {}", self.p_dropout));
        }
        if !(self.cost_range.0 > 0.0 && self.cost_range.0 <= self.cost_range.1) {
            return fail(format!("bad cost range {:?}", self.cost_range));
        }
        if !(self.lambda_range.0 > 0.0 && self.lambda_range.0 <= self.lambda_range.1) {
            return fail(format!("bad lambda range {:?}", self.lambda_range));
        }
        if !(self.cpu_hz_range.0 > 0.0 && self.cpu_hz_range.0 <= self.cpu_hz_range.1) {
            return fail(format!("bad cpu range {:?}", self.cpu_hz_range));
        }
        if !(self.cycles_per_bit_range.0 > 0.0
            && self.cycles_per_bit_range.0 <= self.cycles_per_bit_range.1)
        {
            return fail(format!("bad cycles/bit range {:?}", self.cycles_per_bit_range));
        }
        if !(self.upload_bits > 0.0) {
            return fail(format!("non-positive upload size {}", self.upload_bits));
        }
        Ok(())
    }

    /// Validates internal consistency; called by the environment
    /// constructor.
    ///
    /// # Panics
    /// Panics with a description of the first violated requirement (the
    /// [`Self::try_validate`] error message).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

impl ToJson for AggregationNorm {
    fn to_json_value(&self) -> Value {
        Value::from(match self {
            AggregationNorm::Available => "available",
            AggregationNorm::Cohort => "cohort",
        })
    }
}

impl ToJson for AvailabilityModel {
    fn to_json_value(&self) -> Value {
        match *self {
            AvailabilityModel::Bernoulli => obj(vec![("kind", Value::from("bernoulli"))]),
            AvailabilityModel::Markov { p_stay_on, p_stay_off } => obj(vec![
                ("kind", Value::from("markov")),
                ("p_stay_on", p_stay_on.to_json_value()),
                ("p_stay_off", p_stay_off.to_json_value()),
            ]),
        }
    }
}

impl ToJson for EnvConfig {
    /// Canonical serialization: every field, in declaration order. This
    /// is part of the result-cache key contract (docs/CHECKPOINT.md) —
    /// two configs produce the same JSON iff a run under one is
    /// interchangeable with a run under the other, so adding a field
    /// here (or reordering) deliberately invalidates cached results.
    fn to_json_value(&self) -> Value {
        let pair = |(a, b): (f64, f64)| Value::Arr(vec![Value::Float(a), Value::Float(b)]);
        obj(vec![
            ("num_clients", self.num_clients.to_json_value()),
            ("cell_radius_m", self.cell_radius_m.to_json_value()),
            ("p_available", self.p_available.to_json_value()),
            ("availability", self.availability.to_json_value()),
            ("p_dropout", self.p_dropout.to_json_value()),
            ("cost_range", pair(self.cost_range)),
            ("lambda_range", pair(self.lambda_range)),
            ("tx_power_dbm", self.tx_power_dbm.to_json_value()),
            ("cpu_hz_range", pair(self.cpu_hz_range)),
            ("cycles_per_bit_range", pair(self.cycles_per_bit_range)),
            ("upload_bits", self.upload_bits.to_json_value()),
            ("time_varying_channel", self.time_varying_channel.to_json_value()),
            ("aggregation", self.aggregation.to_json_value()),
            ("optimal_bandwidth", self.optimal_bandwidth.to_json_value()),
            ("seed", Value::Int(self.seed as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_6_1() {
        let c = EnvConfig::paper_scale(0);
        assert_eq!(c.num_clients, 100);
        assert_eq!(c.cell_radius_m, 500.0);
        assert_eq!(c.cost_range, (0.1, 12.0));
        assert_eq!(c.tx_power_dbm, 10.0);
        assert_eq!(c.cpu_hz_range.1, 2.0e9);
        assert_eq!(c.cycles_per_bit_range, (10.0, 30.0));
        c.validate();
    }

    #[test]
    fn canonical_json_is_stable_and_field_sensitive() {
        let a = EnvConfig::small(5, 7).to_json_value().to_json();
        assert_eq!(a, EnvConfig::small(5, 7).to_json_value().to_json());
        assert_ne!(a, EnvConfig::small(5, 8).to_json_value().to_json(), "seed must be keyed");
        let mut c = EnvConfig::small(5, 7);
        c.aggregation = AggregationNorm::Cohort;
        assert_ne!(a, c.to_json_value().to_json());
        let mut c = EnvConfig::small(5, 7);
        c.availability = AvailabilityModel::Markov { p_stay_on: 0.9, p_stay_off: 0.6 };
        let markov = c.to_json_value().to_json();
        assert_ne!(a, markov);
        assert!(markov.contains("p_stay_on"));
    }

    #[test]
    fn small_shrinks_but_validates() {
        let c = EnvConfig::small(5, 1);
        assert_eq!(c.num_clients, 5);
        c.validate();
    }

    #[test]
    fn scale_tiers_validate_and_share_the_small_shape() {
        for tier in ScaleTier::ALL {
            let c = EnvConfig::scale(tier, 3);
            assert_eq!(c.num_clients, tier.num_clients());
            assert_eq!(c.lambda_range, EnvConfig::small(1, 3).lambda_range);
            assert_eq!(c.cost_range, EnvConfig::paper_scale(3).cost_range);
            c.validate();
        }
        assert_eq!(ScaleTier::Tier1M.label(), "1m");
        assert_eq!(ScaleTier::Tier1M.num_clients(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "availability probability")]
    fn validate_rejects_zero_availability() {
        let mut c = EnvConfig::small(3, 0);
        c.p_available = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "bad cost range")]
    fn validate_rejects_inverted_costs() {
        let mut c = EnvConfig::small(3, 0);
        c.cost_range = (5.0, 1.0);
        c.validate();
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        let mut c = EnvConfig::small(3, 0);
        assert_eq!(c.try_validate(), Ok(()));
        c.num_clients = 0;
        let err = c.try_validate().unwrap_err();
        assert!(err.to_string().contains("need at least one client"), "{err}");
        let mut c = EnvConfig::small(3, 0);
        c.lambda_range = (0.0, 5.0);
        assert!(c.try_validate().unwrap_err().to_string().contains("bad lambda range"));
        let mut c = EnvConfig::small(3, 0);
        c.availability = AvailabilityModel::Markov { p_stay_on: 1.5, p_stay_off: 0.5 };
        assert!(c.try_validate().unwrap_err().to_string().contains("Markov probabilities"));
    }

    #[test]
    fn try_validate_rejects_nan_fields() {
        let mut c = EnvConfig::small(3, 0);
        c.p_dropout = f64::NAN;
        assert!(c.try_validate().is_err());
        let mut c = EnvConfig::small(3, 0);
        c.cell_radius_m = f64::NAN;
        assert!(c.try_validate().is_err());
    }
}
