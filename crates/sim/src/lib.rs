//! Federated edge-learning simulator (paper §3.1 and §6.1).
//!
//! This crate is the "testbed": it owns the client population, all the
//! stochastic processes the paper declares (Bernoulli availability,
//! uniform rental costs, Poisson data arrival, log-normal shadowing), the
//! budget ledger, and the federated training loop itself (broadcast →
//! local DANE solves → aggregation, `l_t` times per epoch). Selection
//! *policies* live in `fedl-core`; the simulator exposes exactly the
//! observable information a 0-lookahead online policy is allowed to see
//! and separately realizes the outcomes.
//!
//! Module map:
//!
//! * [`config`] — [`EnvConfig`], all §6.1 constants in one place, plus
//!   the [`ScaleTier`] scenario family (10k/100k/1M clients);
//! * [`client`] — static per-client profiles and per-epoch realizations
//!   (the retained scalar reference path);
//! * [`columns`] — the columnar (struct-of-arrays) population store
//!   behind the million-client scale-out (docs/SCALE.md);
//! * [`ledger`] — the long-term budget account of constraint (3a);
//! * [`server`] — model aggregation (`w ← w + Σ d_k / norm`) and the
//!   aggregated-gradient state `J`;
//! * [`env`](mod@env) — [`EdgeEnvironment`], the facade the runner drives;
//! * [`error`](mod@error) — [`SimError`], typed configuration errors
//!   behind the fallible `try_*` entry points;
//! * [`trace`] — structured per-epoch event logs (selection, payments,
//!   latency, fairness accounting) with JSONL export.
//!
//! The environment, server, and ledger all accept a
//! [`fedl_telemetry::Telemetry`] handle (`set_telemetry`): when enabled
//! it receives `train`/`round`/`local-train`/`aggregate` span timings,
//! per-epoch `train` and `ledger` events, and `sim.*`/`budget.*`/`net.*`
//! metrics. The default is the disabled no-op handle, so untelemetered
//! use pays nothing.
//!
//! System-inventory row **S5** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod columns;
pub mod config;
pub mod env;
pub mod error;
pub mod ledger;
pub mod server;
pub mod trace;

pub use client::{ClientProfile, EpochClientView};
pub use columns::{ClientColumns, EpochColumns, EpochRealizeScratch};
pub use config::{AggregationNorm, EnvConfig, ScaleTier};
pub use env::{EdgeEnvironment, EpochReport};
pub use error::SimError;
pub use ledger::BudgetLedger;
