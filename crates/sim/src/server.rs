//! Server-side aggregation: global model state, the aggregated gradient
//! `J`, and one federated iteration (paper §3.1, "Aggregation on Server").

use fedl_data::Dataset;
use fedl_linalg::rng::{derive_seed, rng_for};
use fedl_ml::dane::{local_update_observed, DaneConfig};
use fedl_ml::model::Model;
use fedl_ml::params::ParamSet;
use fedl_telemetry::Telemetry;

use crate::config::AggregationNorm;

/// Statistics of one federated iteration.
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// Measured local convergence accuracy `η̂` per cohort client.
    pub eta_hats: Vec<f32>,
    /// Local loss at the broadcast model per cohort client.
    pub losses_at_w: Vec<f32>,
    /// Update directions per cohort client (consumed by the runner's
    /// `h_t⁰` linearization on the final iteration).
    pub deltas: Vec<ParamSet>,
}

/// The federation's server: owns the global model and the aggregated
/// gradient state `J` that the DANE surrogates consume.
pub struct FederatedServer {
    model: Box<dyn Model>,
    j_agg: ParamSet,
    dane: DaneConfig,
    seed: u64,
    telemetry: Telemetry,
}

impl FederatedServer {
    /// Creates a server around an initial global model.
    pub fn new(model: Box<dyn Model>, dane: DaneConfig, seed: u64) -> Self {
        let j_agg = model.params().zeros_like();
        Self { model, j_agg, dane, seed, telemetry: Telemetry::disabled() }
    }

    /// Routes the server's observability through `telemetry`: each
    /// iteration opens `round` / `local-train` / `aggregate` spans and
    /// the local solves record `ml.*` metrics.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Read access to the global model.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The current aggregated gradient `J`.
    pub fn j_agg(&self) -> &ParamSet {
        &self.j_agg
    }

    /// The local-solver configuration.
    pub fn dane(&self) -> &DaneConfig {
        &self.dane
    }

    /// Replaces the global model (used by tests and the offline
    /// comparator, which rolls the model back to replay an epoch).
    pub fn set_model_params(&mut self, params: ParamSet) {
        self.model.set_params(params);
    }

    /// Replaces the aggregated gradient `J` (checkpoint restore: `J` is
    /// the one piece of DANE solver state that persists across epochs,
    /// so resuming a run must reinstate it alongside the model).
    pub fn set_j_agg(&mut self, j_agg: ParamSet) {
        self.j_agg = j_agg;
    }

    /// Runs one federated iteration over the cohort's working sets.
    ///
    /// Every cohort client runs its DANE local solve in parallel (via the
    /// scoped thread pool in `fedl_linalg::par` — the solves are
    /// embarrassingly parallel, exactly like the real devices), then the
    /// server updates
    /// `w ← w + (1/norm)·Σ d_k` and `J ← (1/|cohort|)·Σ ∇F_k(w)`.
    ///
    /// `available_count` feeds the paper's `1/|E_t|` normalization when
    /// [`AggregationNorm::Available`] is configured.
    ///
    /// # Panics
    /// Panics on an empty cohort.
    pub fn run_iteration(
        &mut self,
        cohort: &[(usize, &Dataset)],
        available_count: usize,
        aggregation: AggregationNorm,
        epoch: usize,
        iteration: usize,
    ) -> IterationStats {
        self.run_iteration_in(cohort, available_count, aggregation, epoch, iteration, None)
    }

    /// [`Self::run_iteration`] with an explicit parent span: the
    /// `round` timer (and its `local-train`/`aggregate` children) nests
    /// under `parent` — normally the environment's `train` span.
    pub fn run_iteration_in(
        &mut self,
        cohort: &[(usize, &Dataset)],
        available_count: usize,
        aggregation: AggregationNorm,
        epoch: usize,
        iteration: usize,
        parent: Option<&fedl_telemetry::Span>,
    ) -> IterationStats {
        assert!(!cohort.is_empty(), "iteration with empty cohort");
        assert!(available_count >= cohort.len(), "cohort larger than availability");
        let round = match parent {
            Some(p) => p.child("round"),
            None => self.telemetry.span("round"),
        };

        let model = &self.model;
        let j_agg = &self.j_agg;
        let dane = &self.dane;
        let seed = self.seed;
        let telemetry = &self.telemetry;
        let local_train = round.child("local-train");
        let outcomes: Vec<_> = fedl_linalg::par::par_map(cohort, |(id, data)| {
            let label = (epoch as u64) << 32 | (iteration as u64) << 16 | (*id as u64);
            let mut rng = rng_for(derive_seed(seed, 0x10CA1), label);
            local_update_observed(model.as_ref(), data, j_agg, dane, &mut rng, telemetry)
        });
        drop(local_train);

        let aggregate = round.child("aggregate");
        let norm = match aggregation {
            AggregationNorm::Available => available_count as f32,
            AggregationNorm::Cohort => cohort.len() as f32,
        };
        let mut w = self.model.params().clone();
        for out in &outcomes {
            w.axpy(1.0 / norm, &out.delta);
        }
        self.model.set_params(w);

        let grads: Vec<&ParamSet> = outcomes.iter().map(|o| &o.grad_at_w).collect();
        self.j_agg = ParamSet::average(&grads);
        drop(aggregate);
        self.telemetry.counter("sim.iterations").incr();

        IterationStats {
            eta_hats: outcomes.iter().map(|o| o.eta_hat).collect(),
            losses_at_w: outcomes.iter().map(|o| o.loss_at_w).collect(),
            deltas: outcomes.into_iter().map(|o| o.delta).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_data::synth::small_fmnist;
    use fedl_ml::model::SoftmaxRegression;

    fn setup() -> (FederatedServer, Dataset, Dataset) {
        let (train, test) = small_fmnist(400, 100, 31);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let dane = DaneConfig { local_steps: 10, lr: 0.3, ..Default::default() };
        (FederatedServer::new(Box::new(model), dane, 7), train, test)
    }

    #[test]
    fn iterations_reduce_global_loss() {
        let (mut server, train, _) = setup();
        let half_a = train.subset(&(0..200).collect::<Vec<_>>());
        let half_b = train.subset(&(200..400).collect::<Vec<_>>());
        let x = train.features.clone();
        let y = train.one_hot_labels();
        let before = server.model().loss(&x, &y);
        for it in 0..12 {
            server.run_iteration(&[(0, &half_a), (1, &half_b)], 2, AggregationNorm::Cohort, 0, it);
        }
        let after = server.model().loss(&x, &y);
        assert!(after < before * 0.85, "loss {before} -> {after}");
    }

    #[test]
    fn stats_have_cohort_arity() {
        let (mut server, train, _) = setup();
        let d0 = train.subset(&(0..50).collect::<Vec<_>>());
        let d1 = train.subset(&(50..100).collect::<Vec<_>>());
        let d2 = train.subset(&(100..150).collect::<Vec<_>>());
        let stats = server.run_iteration(
            &[(0, &d0), (1, &d1), (2, &d2)],
            5,
            AggregationNorm::Available,
            0,
            0,
        );
        assert_eq!(stats.eta_hats.len(), 3);
        assert_eq!(stats.losses_at_w.len(), 3);
        assert_eq!(stats.deltas.len(), 3);
        assert!(stats.eta_hats.iter().all(|e| (0.0..1.0).contains(e)));
    }

    #[test]
    fn available_norm_shrinks_step() {
        // With 1/|E_t| normalization and few participants, the model
        // moves less per iteration than with cohort normalization.
        let (mut s1, train, _) = setup();
        let (mut s2, _, _) = setup();
        let data = train.subset(&(0..100).collect::<Vec<_>>());
        let w0 = s1.model().params().clone();
        s1.run_iteration(&[(0, &data)], 10, AggregationNorm::Available, 0, 0);
        s2.run_iteration(&[(0, &data)], 10, AggregationNorm::Cohort, 0, 0);
        let moved_avail = s1.model().params().added(-1.0, &w0).norm();
        let moved_cohort = s2.model().params().added(-1.0, &w0).norm();
        assert!(
            moved_cohort > moved_avail * 5.0,
            "available-norm step should be ~10x smaller: {moved_avail} vs {moved_cohort}"
        );
    }

    #[test]
    fn j_updates_after_iteration() {
        let (mut server, train, _) = setup();
        assert_eq!(server.j_agg().norm(), 0.0);
        let data = train.subset(&(0..80).collect::<Vec<_>>());
        server.run_iteration(&[(0, &data)], 1, AggregationNorm::Cohort, 0, 0);
        assert!(server.j_agg().norm() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut server, train, _) = setup();
            let data = train.subset(&(0..60).collect::<Vec<_>>());
            server.run_iteration(&[(0, &data)], 1, AggregationNorm::Cohort, 3, 2);
            server.model().params().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty cohort")]
    fn empty_cohort_rejected() {
        let (mut server, _, _) = setup();
        server.run_iteration(&[], 1, AggregationNorm::Cohort, 0, 0);
    }
}
