//! Structured event traces of a federated run.
//!
//! Long simulations are hard to debug from aggregate curves alone; this
//! module records a per-epoch event log (selection, payments, latency,
//! convergence measurements) that can be exported as JSON lines or CSV
//! and diffed across policy variants.

use std::fs;
use std::io;
use std::path::Path;

use fedl_json::{obj, read_field, FromJson, ToJson, Value};

use crate::env::EpochReport;

/// One epoch's trace entry.
#[derive(Debug, Clone)]
pub struct EpochEvent {
    /// Epoch index.
    pub epoch: usize,
    /// Selected client ids.
    pub cohort: Vec<usize>,
    /// Iterations run.
    pub iterations: usize,
    /// Epoch latency in simulated seconds.
    pub latency_secs: f64,
    /// Rental cost paid.
    pub cost: f64,
    /// Remaining budget after payment.
    pub remaining_budget: f64,
    /// Max observed local accuracy per cohort client.
    pub eta_hats: Vec<f32>,
    /// Global loss over all available clients after the epoch.
    pub global_loss: f64,
}

impl ToJson for EpochEvent {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("epoch", self.epoch.to_json_value()),
            ("cohort", self.cohort.to_json_value()),
            ("iterations", self.iterations.to_json_value()),
            ("latency_secs", self.latency_secs.to_json_value()),
            ("cost", self.cost.to_json_value()),
            ("remaining_budget", self.remaining_budget.to_json_value()),
            ("eta_hats", self.eta_hats.to_json_value()),
            ("global_loss", self.global_loss.to_json_value()),
        ])
    }
}

impl FromJson for EpochEvent {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            epoch: read_field(v, "epoch")?,
            cohort: read_field(v, "cohort")?,
            iterations: read_field(v, "iterations")?,
            latency_secs: read_field(v, "latency_secs")?,
            cost: read_field(v, "cost")?,
            remaining_budget: read_field(v, "remaining_budget")?,
            eta_hats: read_field(v, "eta_hats")?,
            global_loss: read_field(v, "global_loss")?,
        })
    }
}

/// Append-only run trace.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    events: Vec<EpochEvent>,
}

impl RunTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a trace from already-recorded events (checkpoint
    /// restore; the in-memory twin of [`RunTrace::from_jsonl`]).
    pub fn from_events(events: Vec<EpochEvent>) -> Self {
        Self { events }
    }

    /// Records an epoch from its report and the post-payment budget.
    pub fn record(&mut self, report: &EpochReport, remaining_budget: f64) {
        self.events.push(EpochEvent {
            epoch: report.epoch,
            cohort: report.cohort.clone(),
            iterations: report.iterations,
            latency_secs: report.latency_secs,
            cost: report.cost,
            remaining_budget,
            eta_hats: report.eta_hats.clone(),
            global_loss: report.global_loss_all,
        });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[EpochEvent] {
        &self.events
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-client selection counts over the whole run (index = client
    /// id; clients never selected report 0).
    pub fn selection_counts(&self, num_clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_clients];
        for e in &self.events {
            for &k in &e.cohort {
                if k < num_clients {
                    counts[k] += 1;
                }
            }
        }
        counts
    }

    /// Selection-fairness summary: Jain's fairness index of the
    /// selection counts, in `(0, 1]` (1 = perfectly even). The paper
    /// lists fairness as future work; this metric makes the trade-off
    /// FedL makes observable.
    pub fn jain_fairness(&self, num_clients: usize) -> f64 {
        let counts = self.selection_counts(num_clients);
        let sum: f64 = counts.iter().map(|&c| c as f64).sum();
        let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (num_clients as f64 * sum_sq)
    }

    /// Serializes as JSON lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        self.events.iter().map(|e| e.to_json_value().to_json()).collect::<Vec<_>>().join("\n")
    }

    /// Parses a JSON-lines trace (inverse of [`RunTrace::to_jsonl`]).
    pub fn from_jsonl(text: &str) -> Result<Self, fedl_json::Error> {
        let events = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| EpochEvent::from_json_value(&Value::parse(l)?))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { events })
    }

    /// Writes the trace to disk as JSON lines.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: usize, cohort: Vec<usize>) -> EpochReport {
        let k = cohort.len();
        EpochReport {
            epoch,
            cohort,
            iterations: 2,
            latency_secs: 0.5,
            per_client_iter_latency: vec![0.25; k],
            cost: k as f64,
            eta_hats: vec![0.4; k],
            global_loss_all: 1.5,
            global_loss_selected: 1.4,
            grad_dot_delta: vec![-0.1; k],
            local_losses: vec![1.5; k],
            failed: vec![],
        }
    }

    #[test]
    fn records_in_order() {
        let mut tr = RunTrace::new();
        assert!(tr.is_empty());
        tr.record(&report(0, vec![1, 2]), 90.0);
        tr.record(&report(1, vec![2, 3]), 80.0);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events()[0].epoch, 0);
        assert_eq!(tr.events()[1].remaining_budget, 80.0);
    }

    #[test]
    fn selection_counts_and_fairness() {
        let mut tr = RunTrace::new();
        tr.record(&report(0, vec![0, 1]), 1.0);
        tr.record(&report(1, vec![0, 2]), 1.0);
        tr.record(&report(2, vec![0, 1]), 1.0);
        let counts = tr.selection_counts(4);
        assert_eq!(counts, vec![3, 2, 1, 0]);
        let fairness = tr.jain_fairness(4);
        assert!(fairness > 0.0 && fairness < 1.0);
        // Perfectly even selection -> fairness 1.
        let mut even = RunTrace::new();
        even.record(&report(0, vec![0, 1]), 1.0);
        even.record(&report(1, vec![2, 3]), 1.0);
        assert!((even.jain_fairness(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_fairness_is_one() {
        assert_eq!(RunTrace::new().jain_fairness(5), 1.0);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut tr = RunTrace::new();
        tr.record(&report(0, vec![0]), 5.0);
        tr.record(&report(1, vec![1, 2]), 2.5);
        let text = tr.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = RunTrace::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.events()[1].cohort, vec![1, 2]);
        assert_eq!(back.events()[1].remaining_budget, 2.5);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(RunTrace::from_jsonl("not json").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fedl_trace_test");
        let path = dir.join("trace.jsonl");
        let mut tr = RunTrace::new();
        tr.record(&report(0, vec![0]), 1.0);
        tr.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunTrace::from_jsonl(&text).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
