//! The long-term budget account (constraint (3a), Alg. 1's `while C ≥ 0`).

use fedl_json::Value;
use fedl_telemetry::Telemetry;

use crate::error::SimError;

/// Tracks spending against the long-term budget `C`.
///
/// # Examples
///
/// ```
/// use fedl_sim::BudgetLedger;
///
/// let mut ledger = BudgetLedger::new(100.0);
/// ledger.charge(60.0);
/// assert_eq!(ledger.remaining(), 40.0);
/// assert!(!ledger.exhausted());
/// ledger.charge(45.0); // the final epoch may overshoot (Alg. 1)
/// assert!(ledger.exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    initial: f64,
    spent: f64,
    charges: Vec<f64>,
    telemetry: Telemetry,
}

impl BudgetLedger {
    /// Opens a ledger with budget `C`, rejecting non-positive (or NaN)
    /// budgets as a typed error.
    pub fn try_new(budget: f64) -> Result<Self, SimError> {
        if !(budget > 0.0 && budget.is_finite()) {
            return Err(SimError::InvalidBudget(budget));
        }
        Ok(Self {
            initial: budget,
            spent: 0.0,
            charges: Vec::new(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Opens a ledger with budget `C`.
    ///
    /// # Panics
    /// Panics on a non-positive budget (the [`Self::try_new`] error
    /// message).
    pub fn new(budget: f64) -> Self {
        Self::try_new(budget).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Routes the ledger's observability through `telemetry`: each
    /// charge emits a `ledger` event and updates the `budget.*` metrics.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The initial budget `C`.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// Total spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget (may go negative if the last cohort overshot —
    /// that overshoot is exactly what dynamic fit charges).
    pub fn remaining(&self) -> f64 {
        self.initial - self.spent
    }

    /// Records one epoch's cohort payment. Charging is always allowed;
    /// the *stopping* rule is [`BudgetLedger::exhausted`], mirroring the
    /// paper's Alg. 1 where the final epoch may spend past zero.
    ///
    /// # Panics
    /// Panics on a negative charge.
    pub fn charge(&mut self, amount: f64) {
        assert!(amount >= 0.0, "negative charge {amount}");
        self.spent += amount;
        self.charges.push(amount);
        self.telemetry.emit(
            "ledger",
            vec![
                ("index", Value::from(self.charges.len() - 1)),
                ("charge", Value::Float(amount)),
                ("remaining", Value::Float(self.remaining())),
            ],
        );
        self.telemetry.gauge("budget.remaining").set(self.remaining());
        self.telemetry.counter("budget.epochs_charged").incr();
        self.telemetry.histogram("budget.epoch_charge").record(amount);
    }

    /// Rebuilds a ledger from checkpointed state: the initial budget and
    /// the per-epoch charge history. Unlike [`BudgetLedger::charge`],
    /// replaying the history emits no `ledger` events and touches no
    /// metrics — the original run already reported those epochs.
    // `!(c >= 0.0)` is load-bearing: it also rejects NaN, which
    // `c < 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn restore(budget: f64, charges: Vec<f64>) -> Result<Self, SimError> {
        let mut ledger = Self::try_new(budget)?;
        if charges.iter().any(|&c| !(c >= 0.0)) {
            return Err(SimError::InvalidConfig(format!(
                "checkpointed charge history contains a negative or NaN charge: {charges:?}"
            )));
        }
        ledger.spent = charges.iter().sum();
        ledger.charges = charges;
        Ok(ledger)
    }

    /// `true` once the budget is gone (FL must stop).
    pub fn exhausted(&self) -> bool {
        self.remaining() <= 0.0
    }

    /// Number of epochs charged so far.
    pub fn epochs(&self) -> usize {
        self.charges.len()
    }

    /// Per-epoch charge history.
    pub fn history(&self) -> &[f64] {
        &self.charges
    }

    /// The paper's bounds on the stopping epoch for budget `C` with at
    /// least `n` participants per epoch and per-client costs in
    /// `[min_cost, max_cost]`:
    /// `C/(n·max_cost) ≤ T_C ≤ C/(n·min_cost)`.
    pub fn stopping_epoch_bounds(
        budget: f64,
        n: usize,
        min_cost: f64,
        max_cost: f64,
    ) -> (f64, f64) {
        assert!(n > 0 && min_cost > 0.0 && max_cost >= min_cost, "bad bound inputs");
        (budget / (n as f64 * max_cost), budget / (n as f64 * min_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_basics() {
        let mut l = BudgetLedger::new(100.0);
        assert_eq!(l.remaining(), 100.0);
        l.charge(30.0);
        l.charge(50.0);
        assert_eq!(l.spent(), 80.0);
        assert_eq!(l.remaining(), 20.0);
        assert_eq!(l.epochs(), 2);
        assert!(!l.exhausted());
        l.charge(25.0);
        assert!(l.exhausted());
        assert_eq!(l.remaining(), -5.0);
        assert_eq!(l.history(), &[30.0, 50.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = BudgetLedger::new(0.0);
    }

    #[test]
    #[should_panic(expected = "negative charge")]
    fn negative_charge_rejected() {
        let mut l = BudgetLedger::new(1.0);
        l.charge(-0.5);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(BudgetLedger::try_new(10.0).is_ok());
        assert_eq!(BudgetLedger::try_new(0.0).unwrap_err(), SimError::InvalidBudget(0.0));
        assert_eq!(BudgetLedger::try_new(-3.0).unwrap_err(), SimError::InvalidBudget(-3.0));
        assert!(BudgetLedger::try_new(f64::NAN).is_err());
        assert!(BudgetLedger::try_new(f64::INFINITY).is_err());
    }

    #[test]
    fn restore_replays_history_without_telemetry() {
        let (tel, handle) = Telemetry::in_memory();
        let mut restored = BudgetLedger::restore(100.0, vec![30.0, 50.0]).unwrap();
        restored.set_telemetry(tel);
        assert_eq!(restored.spent(), 80.0);
        assert_eq!(restored.remaining(), 20.0);
        assert_eq!(restored.epochs(), 2);
        assert!(handle.events().unwrap().is_empty(), "restore must not re-emit ledger events");
        // Continues accounting normally from the restored position.
        restored.charge(25.0);
        assert!(restored.exhausted());
        assert_eq!(handle.events().unwrap().len(), 1);
    }

    #[test]
    fn restore_rejects_bad_history() {
        assert!(BudgetLedger::restore(0.0, vec![]).is_err());
        assert!(BudgetLedger::restore(10.0, vec![1.0, -2.0]).is_err());
        assert!(BudgetLedger::restore(10.0, vec![f64::NAN]).is_err());
    }

    #[test]
    fn charges_emit_ledger_events_and_metrics() {
        let (tel, handle) = Telemetry::in_memory();
        let mut l = BudgetLedger::new(100.0);
        l.set_telemetry(tel.clone());
        l.charge(30.0);
        l.charge(45.0);
        let events = handle.events().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("ledger"));
        assert_eq!(events[1].get("index").unwrap().as_i64(), Some(1));
        assert_eq!(events[1].get("charge").unwrap().as_f64(), Some(45.0));
        assert_eq!(events[1].get("remaining").unwrap().as_f64(), Some(25.0));
        assert_eq!(tel.gauge("budget.remaining").value(), 25.0);
        assert_eq!(tel.counter("budget.epochs_charged").value(), 2);
        assert_eq!(tel.histogram("budget.epoch_charge").count(), 2);
    }

    #[test]
    fn stopping_bounds_match_paper_formula() {
        let (lo, hi) = BudgetLedger::stopping_epoch_bounds(1200.0, 10, 0.1, 12.0);
        assert!((lo - 10.0).abs() < 1e-12);
        assert!((hi - 1200.0).abs() < 1e-12);
        assert!(lo <= hi);
    }
}
