//! The long-term budget account (constraint (3a), Alg. 1's `while C ≥ 0`).

/// Tracks spending against the long-term budget `C`.
///
/// # Examples
///
/// ```
/// use fedl_sim::BudgetLedger;
///
/// let mut ledger = BudgetLedger::new(100.0);
/// ledger.charge(60.0);
/// assert_eq!(ledger.remaining(), 40.0);
/// assert!(!ledger.exhausted());
/// ledger.charge(45.0); // the final epoch may overshoot (Alg. 1)
/// assert!(ledger.exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    initial: f64,
    spent: f64,
    charges: Vec<f64>,
}

impl BudgetLedger {
    /// Opens a ledger with budget `C`.
    ///
    /// # Panics
    /// Panics on a non-positive budget.
    pub fn new(budget: f64) -> Self {
        assert!(budget > 0.0, "budget must be positive, got {budget}");
        Self { initial: budget, spent: 0.0, charges: Vec::new() }
    }

    /// The initial budget `C`.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// Total spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget (may go negative if the last cohort overshot —
    /// that overshoot is exactly what dynamic fit charges).
    pub fn remaining(&self) -> f64 {
        self.initial - self.spent
    }

    /// Records one epoch's cohort payment. Charging is always allowed;
    /// the *stopping* rule is [`BudgetLedger::exhausted`], mirroring the
    /// paper's Alg. 1 where the final epoch may spend past zero.
    ///
    /// # Panics
    /// Panics on a negative charge.
    pub fn charge(&mut self, amount: f64) {
        assert!(amount >= 0.0, "negative charge {amount}");
        self.spent += amount;
        self.charges.push(amount);
    }

    /// `true` once the budget is gone (FL must stop).
    pub fn exhausted(&self) -> bool {
        self.remaining() <= 0.0
    }

    /// Number of epochs charged so far.
    pub fn epochs(&self) -> usize {
        self.charges.len()
    }

    /// Per-epoch charge history.
    pub fn history(&self) -> &[f64] {
        &self.charges
    }

    /// The paper's bounds on the stopping epoch for budget `C` with at
    /// least `n` participants per epoch and per-client costs in
    /// `[min_cost, max_cost]`:
    /// `C/(n·max_cost) ≤ T_C ≤ C/(n·min_cost)`.
    pub fn stopping_epoch_bounds(budget: f64, n: usize, min_cost: f64, max_cost: f64) -> (f64, f64) {
        assert!(n > 0 && min_cost > 0.0 && max_cost >= min_cost, "bad bound inputs");
        (budget / (n as f64 * max_cost), budget / (n as f64 * min_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_basics() {
        let mut l = BudgetLedger::new(100.0);
        assert_eq!(l.remaining(), 100.0);
        l.charge(30.0);
        l.charge(50.0);
        assert_eq!(l.spent(), 80.0);
        assert_eq!(l.remaining(), 20.0);
        assert_eq!(l.epochs(), 2);
        assert!(!l.exhausted());
        l.charge(25.0);
        assert!(l.exhausted());
        assert_eq!(l.remaining(), -5.0);
        assert_eq!(l.history(), &[30.0, 50.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = BudgetLedger::new(0.0);
    }

    #[test]
    #[should_panic(expected = "negative charge")]
    fn negative_charge_rejected() {
        let mut l = BudgetLedger::new(1.0);
        l.charge(-0.5);
    }

    #[test]
    fn stopping_bounds_match_paper_formula() {
        let (lo, hi) = BudgetLedger::stopping_epoch_bounds(1200.0, 10, 0.1, 12.0);
        assert!((lo - 10.0).abs() < 1e-12);
        assert!((hi - 1200.0).abs() < 1e-12);
        assert!(lo <= hi);
    }
}
