//! Property-based tests of the simulator: per-epoch realizations stay in
//! their declared ranges, are deterministic per seed, and the ledger
//! arithmetic is exact.

use fedl_sim::{BudgetLedger, ClientProfile, EnvConfig};
use fedl_net::ChannelModel;
use proptest::prelude::*;

fn population(n: usize, seed: u64) -> (EnvConfig, ChannelModel, Vec<ClientProfile>) {
    let config = EnvConfig::small(n, seed);
    let channel = ChannelModel::default();
    let pools = (0..n).map(|k| vec![k, k + n, k + 2 * n]).collect();
    let clients = ClientProfile::build_population(&config, &channel, pools);
    (config, channel, clients)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn epoch_views_in_declared_ranges(
        n in 1usize..12,
        seed in 0u64..500,
        epoch in 0usize..200,
    ) {
        let (config, channel, clients) = population(n, seed);
        for c in &clients {
            let v = c.epoch_view(epoch, &config, &channel);
            prop_assert!(v.cost >= config.cost_range.0 && v.cost <= config.cost_range.1);
            prop_assert!(v.data_volume >= 1);
            prop_assert!(v.radio.gain > 0.0 && v.radio.gain.is_finite());
            prop_assert_eq!(v.id, c.id);
        }
    }

    #[test]
    fn views_deterministic_per_seed(n in 1usize..8, seed in 0u64..200, epoch in 0usize..50) {
        let (config, channel, clients) = population(n, seed);
        let (config2, channel2, clients2) = population(n, seed);
        for (a, b) in clients.iter().zip(&clients2) {
            let va = a.epoch_view(epoch, &config, &channel);
            let vb = b.epoch_view(epoch, &config2, &channel2);
            prop_assert_eq!(va.available, vb.available);
            prop_assert!((va.cost - vb.cost).abs() < 1e-15);
            prop_assert!((va.radio.gain - vb.radio.gain).abs() < 1e-25);
            prop_assert_eq!(va.data_volume, vb.data_volume);
        }
    }

    #[test]
    fn ledger_arithmetic_is_exact(charges in proptest::collection::vec(0.0f64..50.0, 0..20)) {
        let mut ledger = BudgetLedger::new(1000.0);
        let mut manual = 0.0;
        for &c in &charges {
            ledger.charge(c);
            manual += c;
        }
        prop_assert!((ledger.spent() - manual).abs() < 1e-9);
        prop_assert!((ledger.remaining() - (1000.0 - manual)).abs() < 1e-9);
        prop_assert_eq!(ledger.epochs(), charges.len());
        prop_assert_eq!(ledger.exhausted(), manual >= 1000.0);
    }

    #[test]
    fn stopping_bounds_ordered(
        budget in 10.0f64..10_000.0,
        n in 1usize..50,
        min_cost in 0.1f64..5.0,
        spread in 1.0f64..10.0,
    ) {
        let max_cost = min_cost * spread;
        let (lo, hi) = BudgetLedger::stopping_epoch_bounds(budget, n, min_cost, max_cost);
        prop_assert!(lo <= hi);
        prop_assert!(lo > 0.0);
        // The bounds bracket the uniform-cost case.
        let mid_cost = 0.5 * (min_cost + max_cost);
        let t_mid = budget / (n as f64 * mid_cost);
        prop_assert!(lo <= t_mid + 1e-9 && t_mid <= hi + 1e-9);
    }

    #[test]
    fn clients_stay_inside_the_cell(n in 1usize..20, seed in 0u64..300) {
        let (config, _, clients) = population(n, seed);
        for c in &clients {
            prop_assert!(c.distance_m <= config.cell_radius_m + 1e-9);
            prop_assert!(c.distance_m >= 10.0 - 1e-9); // channel min distance
            prop_assert!(c.compute.cpu_hz >= config.cpu_hz_range.0);
            prop_assert!(c.compute.cpu_hz <= config.cpu_hz_range.1);
        }
    }
}
