//! Zero-steady-state-allocation regression test for the columnar epoch
//! realization — the per-epoch front door of the serve/dist planes and
//! every scale-tier sweep. Once `EpochRealizeScratch` and the target
//! `EpochColumns` are warmed at a population size, realizing further
//! epochs (full or sharded) must not touch the heap.
//!
//! Kept to a single `#[test]` so no sibling test can allocate
//! concurrently while the measured region runs.

use fedl_linalg::alloc_counter::CountingAllocator;
use fedl_net::ChannelModel;
use fedl_sim::{ClientColumns, EnvConfig, EpochColumns, EpochRealizeScratch};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Asserts that some execution of `run` allocates nothing. The libtest
/// harness's main thread can allocate concurrently with the measured
/// window (event plumbing), so a dirty window is retried — a hot loop
/// that genuinely allocates per call fails every attempt.
fn assert_allocation_free(what: &str, mut run: impl FnMut()) {
    for attempt in 0..5 {
        let allocs = ALLOC.allocations();
        let bytes = ALLOC.bytes();
        run();
        if ALLOC.allocations() == allocs && ALLOC.bytes() == bytes {
            return;
        }
        eprintln!("{what}: allocation in measured window (attempt {attempt}); retrying");
    }
    panic!("{what} allocated in every measured window");
}

#[test]
fn epoch_realization_is_allocation_free_once_warm() {
    fedl_linalg::par::force_max_threads(1);
    let config = EnvConfig::small(128, 0xA31);
    let channel = ChannelModel::default();
    let cols = ClientColumns::build(&config, &channel);

    let mut scratch = EpochRealizeScratch::new();
    let mut out = EpochColumns::default();
    // Warm-up sizes the staging buffer and the four column vectors.
    cols.epoch_columns_into(0, &config, &channel, &mut scratch, &mut out);

    assert_allocation_free("full epoch realization", || {
        for epoch in 1..=5usize {
            cols.epoch_columns_into(epoch, &config, &channel, &mut scratch, &mut out);
        }
    });
    assert_allocation_free("sharded epoch realization", || {
        for epoch in 6..=10usize {
            cols.epoch_columns_partial_into(
                epoch,
                &config,
                &channel,
                32..96,
                &mut scratch,
                &mut out,
            );
        }
    });
    // The realization still did real work.
    assert_eq!(out.epoch, 10);
    assert_eq!(out.available.len(), 128);
    assert!(out.data_volume[32..96].iter().any(|&d| d > 0));
}
