//! Property-based tests of the ML substrate: gradient correctness on
//! random architectures/batches (the single most load-bearing invariant)
//! and the vector-space laws of `ParamSet`.

use fedl_linalg::rng::rng_for;
use fedl_linalg::Matrix;
use fedl_ml::model::{Mlp, Model, SoftmaxRegression};
use fedl_ml::params::ParamSet;
use proptest::prelude::*;

fn batch(rows: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = rng_for(seed, 0xBA7C);
    let x = Matrix::uniform(rows, dim, 1.0, &mut rng);
    let mut y = Matrix::zeros(rows, classes);
    for r in 0..rows {
        y.set(r, r % classes, 1.0);
    }
    (x, y)
}

/// Central finite differences against the analytic gradient at a few
/// random coordinates.
fn check_gradient(model: &mut dyn Model, x: &Matrix, y: &Matrix, seed: u64) {
    use rand::Rng;
    let (_, grad) = model.loss_and_grad(x, y);
    let base = model.params().clone();
    let mut rng = rng_for(seed, 0xF1D);
    let eps = 2e-3f32;
    for _ in 0..6 {
        let t = rng.gen_range(0..base.len());
        let len = base.tensors()[t].len();
        let i = rng.gen_range(0..len);
        let v = base.tensors()[t].as_slice()[i];

        let mut plus = base.clone();
        plus.tensors_mut()[t].as_mut_slice()[i] = v + eps;
        model.set_params(plus);
        let f_plus = model.loss(x, y);

        let mut minus = base.clone();
        minus.tensors_mut()[t].as_mut_slice()[i] = v - eps;
        model.set_params(minus);
        let f_minus = model.loss(x, y);

        let fd = (f_plus - f_minus) / (2.0 * eps);
        let an = grad.tensors()[t].as_slice()[i];
        assert!(
            (an - fd).abs() < 0.05 * (1.0 + an.abs().max(fd.abs())),
            "tensor {t} coord {i}: analytic {an} vs fd {fd}"
        );
    }
    model.set_params(base);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn softmax_regression_gradients_correct(
        dim in 2usize..10,
        classes in 2usize..6,
        rows in 2usize..10,
        l2 in 0.0f32..0.2,
        seed in 0u64..500,
    ) {
        let (x, y) = batch(rows, dim, classes, seed);
        let mut rng = rng_for(seed, 1);
        let mut m = SoftmaxRegression::new_random(dim, classes, l2, &mut rng);
        check_gradient(&mut m, &x, &y, seed);
    }

    #[test]
    fn mlp_gradients_correct(
        dim in 2usize..8,
        hidden in 1usize..8,
        classes in 2usize..5,
        rows in 2usize..8,
        seed in 0u64..500,
    ) {
        let (x, y) = batch(rows, dim, classes, seed);
        let mut rng = rng_for(seed, 2);
        let mut m = Mlp::new(dim, &[hidden], classes, 0.01, &mut rng);
        check_gradient(&mut m, &x, &y, seed);
    }

    #[test]
    fn param_set_vector_space_laws(
        vals_a in proptest::collection::vec(-5.0f32..5.0, 6),
        vals_b in proptest::collection::vec(-5.0f32..5.0, 6),
        alpha in -3.0f32..3.0,
    ) {
        let make = |v: &[f32]| {
            ParamSet::new(vec![
                Matrix::from_vec(2, 2, v[..4].to_vec()),
                Matrix::from_vec(1, 2, v[4..6].to_vec()),
            ])
        };
        let a = make(&vals_a);
        let b = make(&vals_b);
        // Bilinearity of dot.
        let lhs = a.added(alpha, &b).dot(&a);
        let rhs = a.dot(&a) + alpha * b.dot(&a);
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
        // Symmetry.
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-5);
        // Cauchy–Schwarz.
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-4);
        // Average of {a, a} is a.
        let avg = ParamSet::average(&[&a, &a]);
        prop_assert!(avg.added(-1.0, &a).norm() < 1e-6);
    }

    #[test]
    fn loss_decreases_under_gradient_steps(
        dim in 3usize..8,
        classes in 2usize..5,
        seed in 0u64..300,
    ) {
        let (x, y) = batch(12, dim, classes, seed);
        let mut rng = rng_for(seed, 3);
        let mut m = Mlp::new(dim, &[8], classes, 0.001, &mut rng);
        let before = m.loss(&x, &y);
        for _ in 0..25 {
            let (_, g) = m.loss_and_grad(&x, &y);
            let p = m.params().added(-0.2, &g);
            m.set_params(p);
        }
        let after = m.loss(&x, &y);
        prop_assert!(after < before + 1e-5, "{before} -> {after}");
    }

    #[test]
    fn eta_hat_always_in_unit_interval(
        seed in 0u64..200,
        local_steps in 1usize..12,
    ) {
        use fedl_data::synth::small_fmnist;
        use fedl_ml::dane::{local_update, DaneConfig};
        let (train, _) = small_fmnist(60, 5, seed);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.01);
        let (x, y) = (train.features.clone(), train.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps, ..Default::default() };
        let mut rng = rng_for(seed, 4);
        let out = local_update(&model, &train, &j, &cfg, &mut rng);
        prop_assert!((0.0..1.0).contains(&out.eta_hat), "eta {}", out.eta_hat);
        prop_assert!(!out.delta.has_non_finite());
        prop_assert!(out.loss_at_w.is_finite() && out.loss_after.is_finite());
    }
}
