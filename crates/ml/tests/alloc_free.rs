//! Zero-steady-state-allocation regression test for the DANE local solve.
//!
//! Installs the counting allocator as this binary's global allocator and
//! asserts that, once the reusable scratch is warmed, repeated local
//! solves perform no heap allocation at all. A regression here means a
//! buffer stopped being reused somewhere inside the mini-batch / loss /
//! gradient / momentum pipeline.
//!
//! Kept to a single `#[test]` so no sibling test can allocate
//! concurrently while the measured region runs.

use fedl_data::synth::small_fmnist;
use fedl_linalg::alloc_counter::CountingAllocator;
use fedl_linalg::rng::rng_for;
use fedl_ml::dane::{local_update_scratch, DaneConfig, DaneScratch, LocalOutcome};
use fedl_ml::model::{Mlp, Model};
use fedl_ml::params::ParamSet;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Asserts that some execution of `run` allocates nothing. The libtest
/// harness's main thread can allocate concurrently with the measured
/// window (event plumbing), so a dirty window is retried — a hot loop
/// that genuinely allocates per call fails every attempt.
fn assert_allocation_free(what: &str, mut run: impl FnMut()) {
    for attempt in 0..5 {
        let allocs = ALLOC.allocations();
        let bytes = ALLOC.bytes();
        run();
        if ALLOC.allocations() == allocs && ALLOC.bytes() == bytes {
            return;
        }
        eprintln!("{what}: allocation in measured window (attempt {attempt}); retrying");
    }
    panic!("{what} allocated in every measured window");
}

#[test]
fn dane_local_solve_is_allocation_free_once_warm() {
    fedl_linalg::par::force_max_threads(1);
    let (train, _) = small_fmnist(64, 10, 0xA11);
    let mut rng = rng_for(0xA12, 0);
    let model = Mlp::new(train.dim(), &[16], train.num_classes, 0.0005, &mut rng);
    let (_, j) = model.loss_and_grad(&train.features, &train.one_hot_labels());
    let cfg = DaneConfig::default();

    let mut scratch = DaneScratch::new();
    let mut out = LocalOutcome {
        delta: ParamSet::new(Vec::new()),
        grad_at_w: ParamSet::new(Vec::new()),
        eta_hat: 0.0,
        loss_at_w: 0.0,
        loss_after: 0.0,
    };
    let mut rng = rng_for(0xA13, 0);
    // Warm-up: sizes the scratch buffers and clones the work model once.
    for _ in 0..2 {
        local_update_scratch(&model, &train, &j, &cfg, &mut rng, &mut scratch, &mut out);
    }

    assert_allocation_free("DANE local solve", || {
        for _ in 0..5 {
            local_update_scratch(&model, &train, &j, &cfg, &mut rng, &mut scratch, &mut out);
        }
    });
    // The solve still did real work.
    assert!(out.loss_at_w.is_finite() && out.eta_hat >= 0.0);
}
