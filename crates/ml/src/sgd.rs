//! Mini-batch stochastic gradient descent.

use fedl_linalg::rng::Rng;
use fedl_linalg::Matrix;

use fedl_data::Dataset;

use crate::model::Model;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Step size α.
    pub lr: f32,
    /// Mini-batch size (capped at the dataset size per step).
    pub batch: usize,
    /// Number of gradient steps.
    pub steps: usize,
    /// Gradient clipping threshold (`None` disables).
    pub clip: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self { lr: 0.1, batch: 32, steps: 10, clip: Some(10.0) }
    }
}

/// Draws a mini-batch (indices with replacement) as feature/one-hot pair.
pub fn sample_batch(data: &Dataset, batch: usize, rng: &mut impl Rng) -> (Matrix, Matrix) {
    let (mut x, mut y) = (Matrix::default(), Matrix::default());
    sample_batch_into(data, batch, rng, &mut x, &mut y);
    (x, y)
}

/// [`sample_batch`] writing into caller-owned matrices; steady-state
/// reuse performs no allocation. Draws the same index sequence from
/// `rng` as [`sample_batch`] (one `gen_range` per sample, in order), so
/// the two forms are interchangeable mid-stream.
pub fn sample_batch_into(
    data: &Dataset,
    batch: usize,
    rng: &mut impl Rng,
    x: &mut Matrix,
    y: &mut Matrix,
) {
    assert!(!data.is_empty(), "cannot batch an empty dataset");
    let b = batch.clamp(1, data.len());
    x.resize_to(b, data.dim());
    y.resize_to(b, data.num_classes);
    for r in 0..b {
        let i = rng.gen_range(0..data.len());
        x.row_mut(r).copy_from_slice(data.features.row(i));
        y.set(r, data.labels[i], 1.0);
    }
}

/// Runs `config.steps` SGD steps on `model` over `data`, returning the
/// final mini-batch loss observed.
pub fn run(model: &mut dyn Model, data: &Dataset, config: &SgdConfig, rng: &mut impl Rng) -> f32 {
    assert!(config.lr > 0.0, "non-positive learning rate");
    let mut last = f32::INFINITY;
    for _ in 0..config.steps {
        let (x, y) = sample_batch(data, config.batch, rng);
        let (loss, mut grad) = model.loss_and_grad(&x, &y);
        if let Some(limit) = config.clip {
            grad.clip(limit);
        }
        let updated = model.params().added(-config.lr, &grad);
        model.set_params(updated);
        last = loss;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SoftmaxRegression;
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;

    #[test]
    fn sgd_reduces_training_loss() {
        let (train, _) = small_fmnist(300, 10, 1);
        let mut model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let x = train.features.clone();
        let y = train.one_hot_labels();
        let before = model.loss(&x, &y);
        let mut rng = rng_for(1, 0);
        let cfg = SgdConfig { lr: 0.5, batch: 32, steps: 200, clip: Some(10.0) };
        run(&mut model, &train, &cfg, &mut rng);
        let after = model.loss(&x, &y);
        assert!(after < before * 0.7, "loss {before} -> {after}");
    }

    #[test]
    fn batch_shapes_and_cap() {
        let (train, _) = small_fmnist(10, 5, 2);
        let mut rng = rng_for(2, 0);
        let (x, y) = sample_batch(&train, 64, &mut rng);
        assert_eq!(x.rows(), 10); // capped at dataset size
        assert_eq!(y.shape(), (10, 10));
        let (x2, _) = sample_batch(&train, 4, &mut rng);
        assert_eq!(x2.rows(), 4);
    }

    #[test]
    fn deterministic_under_same_rng_stream() {
        let (train, _) = small_fmnist(100, 5, 3);
        let run_once = || {
            let mut model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.0);
            let mut rng = rng_for(9, 9);
            run(&mut model, &train, &SgdConfig::default(), &mut rng);
            model.params().clone()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "non-positive learning rate")]
    fn rejects_bad_lr() {
        let (train, _) = small_fmnist(10, 5, 4);
        let mut model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.0);
        let cfg = SgdConfig { lr: 0.0, ..Default::default() };
        run(&mut model, &train, &cfg, &mut rng_for(0, 0));
    }
}
