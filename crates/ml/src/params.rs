//! Flat vector-space view over a model's parameter tensors.

use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_linalg::Matrix;

/// An ordered collection of parameter tensors treated as one big vector.
///
/// The DANE update `w ← w + d`, the surrogate gradient algebra, and the
/// server-side averaging all operate on whole parameter vectors; this
/// type gives those operations without flattening tensors into a single
/// buffer (shapes are preserved for the model's forward pass).
///
/// # Examples
///
/// ```
/// use fedl_linalg::Matrix;
/// use fedl_ml::ParamSet;
///
/// let w = ParamSet::new(vec![Matrix::full(2, 2, 1.0)]);
/// let d = ParamSet::new(vec![Matrix::full(2, 2, 0.5)]);
/// let updated = w.added(1.0, &d); // w + d, the DANE server update
/// assert_eq!(updated.tensors()[0].get(0, 0), 1.5);
/// assert_eq!(w.dot(&d), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSet(Vec<Matrix>);

impl ParamSet {
    /// Wraps a list of tensors.
    pub fn new(tensors: Vec<Matrix>) -> Self {
        Self(tensors)
    }

    /// A set of zero tensors with the same shapes as `self`.
    pub fn zeros_like(&self) -> ParamSet {
        ParamSet(self.0.iter().map(|m| Matrix::zeros(m.rows(), m.cols())).collect())
    }

    /// Makes `self` an exact copy of `other`, reusing tensor storage when
    /// capacity allows; steady-state reuse performs no allocation.
    pub fn copy_from(&mut self, other: &ParamSet) {
        self.0.resize_with(other.0.len(), Matrix::default);
        for (dst, src) in self.0.iter_mut().zip(&other.0) {
            dst.copy_from(src);
        }
    }

    /// Reshapes `self` into zero tensors with `like`'s shapes, reusing
    /// tensor storage when capacity allows (the allocation-free twin of
    /// `like.zeros_like()`).
    pub fn set_zeros_like(&mut self, like: &ParamSet) {
        self.0.resize_with(like.0.len(), Matrix::default);
        for (dst, src) in self.0.iter_mut().zip(&like.0) {
            dst.resize_to(src.rows(), src.cols());
        }
    }

    /// Tensor views.
    pub fn tensors(&self) -> &[Matrix] {
        &self.0
    }

    /// Mutable tensor views.
    pub fn tensors_mut(&mut self) -> &mut [Matrix] {
        &mut self.0
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when there are no tensors.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.0.iter().map(Matrix::len).sum()
    }

    /// `self += alpha * other`, tensor by tensor.
    ///
    /// # Panics
    /// Panics if the two sets disagree in tensor count or shapes.
    pub fn axpy(&mut self, alpha: f32, other: &ParamSet) {
        assert_eq!(self.0.len(), other.0.len(), "param set arity mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            a.axpy(alpha, b);
        }
    }

    /// Scales every parameter by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for m in &mut self.0 {
            m.scale(alpha);
        }
    }

    /// Inner product across all tensors.
    pub fn dot(&self, other: &ParamSet) -> f32 {
        assert_eq!(self.0.len(), other.0.len(), "param set arity mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a.dot(b)).sum()
    }

    /// Squared Euclidean norm across all tensors.
    pub fn norm_sq(&self) -> f32 {
        self.0.iter().map(Matrix::norm_sq).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// `self + alpha * other` as a new set.
    pub fn added(&self, alpha: f32, other: &ParamSet) -> ParamSet {
        let mut out = self.clone();
        out.axpy(alpha, other);
        out
    }

    /// Clips every scalar into `[-limit, limit]`; returns clipped count.
    pub fn clip(&mut self, limit: f32) -> usize {
        self.0.iter_mut().map(|m| fedl_linalg::ops::clip_inplace(m, limit)).sum()
    }

    /// `true` if any scalar is NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.0.iter().any(Matrix::has_non_finite)
    }

    /// Averages a non-empty list of same-shaped sets (server aggregation).
    pub fn average(sets: &[&ParamSet]) -> ParamSet {
        assert!(!sets.is_empty(), "cannot average zero param sets");
        let mut acc = sets[0].zeros_like();
        for s in sets {
            acc.axpy(1.0, s);
        }
        acc.scale(1.0 / sets.len() as f32);
        acc
    }
}

impl ToJson for ParamSet {
    fn to_json_value(&self) -> Value {
        // Shape + flat data per tensor. f32 scalars survive the JSON
        // round trip exactly: the f32→f64 widening is exact and the
        // writer prints shortest-round-trip digits, so checkpointed
        // model parameters restore bit-for-bit.
        let tensors: Vec<Value> = self
            .0
            .iter()
            .map(|m| {
                obj(vec![
                    ("rows", m.rows().to_json_value()),
                    ("cols", m.cols().to_json_value()),
                    ("data", m.as_slice().to_vec().to_json_value()),
                ])
            })
            .collect();
        obj(vec![("tensors", Value::Arr(tensors))])
    }
}

impl FromJson for ParamSet {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        let arr = v
            .field("tensors")?
            .as_arr()
            .ok_or_else(|| fedl_json::Error::msg("tensors must be an array"))?;
        let tensors = arr
            .iter()
            .map(|t| {
                let rows: usize = read_field(t, "rows")?;
                let cols: usize = read_field(t, "cols")?;
                let data: Vec<f32> = read_field(t, "data")?;
                if data.len() != rows * cols {
                    return Err(fedl_json::Error::msg(format!(
                        "tensor data length {} does not match shape {rows}x{cols}",
                        data.len()
                    )));
                }
                Ok(Matrix::from_vec(rows, cols, data))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParamSet::new(tensors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(vals: &[f32]) -> ParamSet {
        ParamSet::new(vec![
            Matrix::from_vec(1, 2, vals[..2].to_vec()),
            Matrix::from_vec(1, 1, vals[2..3].to_vec()),
        ])
    }

    #[test]
    fn axpy_and_added() {
        let mut a = ps(&[1.0, 2.0, 3.0]);
        let b = ps(&[10.0, 20.0, 30.0]);
        let c = a.added(0.1, &b);
        a.axpy(0.1, &b);
        assert_eq!(a, c);
        assert_eq!(a.tensors()[0].as_slice(), &[2.0, 4.0]);
        assert_eq!(a.tensors()[1].as_slice(), &[6.0]);
    }

    #[test]
    fn dot_and_norm_span_tensors() {
        let a = ps(&[1.0, 2.0, 2.0]);
        assert_eq!(a.norm_sq(), 9.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.dot(&a), 9.0);
        assert_eq!(a.num_scalars(), 3);
    }

    #[test]
    fn zeros_like_matches_shapes() {
        let a = ps(&[1.0, 2.0, 3.0]);
        let z = a.zeros_like();
        assert_eq!(z.tensors()[0].shape(), (1, 2));
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn copy_from_and_set_zeros_like_reuse_storage() {
        let a = ps(&[1.0, 2.0, 3.0]);
        let mut b = ParamSet::new(vec![Matrix::zeros(4, 4)]);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.set_zeros_like(&a);
        assert_eq!(b, a.zeros_like());
    }

    #[test]
    fn json_round_trip_is_exact() {
        // Deliberately awkward scalars: non-dyadic, tiny, huge, negative.
        let p = ParamSet::new(vec![
            Matrix::from_vec(2, 2, vec![0.1, -3.75e-39, 1.0e38, -0.333_333_34]),
            Matrix::from_vec(1, 3, vec![f32::MIN_POSITIVE, -0.0, 42.5]),
        ]);
        let text = p.to_json_value().to_json();
        let back = ParamSet::from_json_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in p.tensors().iter().zip(back.tensors()) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} round-tripped to {y}");
            }
        }
    }

    #[test]
    fn json_rejects_shape_mismatch() {
        let v = Value::parse(r#"{"tensors":[{"rows":2,"cols":2,"data":[1.0,2.0,3.0]}]}"#).unwrap();
        assert!(ParamSet::from_json_value(&v).is_err());
    }

    #[test]
    fn average_of_sets() {
        let a = ps(&[1.0, 2.0, 3.0]);
        let b = ps(&[3.0, 6.0, 9.0]);
        let avg = ParamSet::average(&[&a, &b]);
        assert_eq!(avg, ps(&[2.0, 4.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "cannot average zero")]
    fn average_rejects_empty() {
        let _ = ParamSet::average(&[]);
    }

    #[test]
    fn clip_and_non_finite() {
        let mut a = ps(&[5.0, -7.0, 0.5]);
        assert_eq!(a.clip(1.0), 2);
        assert!(!a.has_non_finite());
        a.tensors_mut()[0].set(0, 0, f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn axpy_rejects_arity_mismatch() {
        let mut a = ps(&[1.0, 2.0, 3.0]);
        let b = ParamSet::new(vec![Matrix::zeros(1, 2)]);
        a.axpy(1.0, &b);
    }
}
