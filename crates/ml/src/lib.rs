//! Machine-learning substrate for the FedL reproduction.
//!
//! The paper's federated process (§3.1) trains a model per epoch with the
//! distributed approximate Newton (DANE) scheme of FEDL [7, 25]: every
//! iteration each selected client minimizes a *surrogate*
//!
//! ```text
//! G_{t,k}(d) = F_{t,k}(w + d) + (σ₁/2)·‖d‖² − (∇F_{t,k}(w) − σ₂·J_t(w))ᵀ (w + d)
//! ```
//!
//! over its local data by SGD and uploads the resulting direction `d` for
//! the server to average. This crate builds that whole stack from scratch:
//!
//! * [`params`] — [`ParamSet`], the flat view of a model's parameter
//!   tensors, with the vector-space operations (`axpy`, `dot`, `norm`)
//!   the DANE algebra needs;
//! * [`model`] — the object-safe [`model::Model`] trait plus two concrete
//!   models with hand-derived backprop: multinomial softmax regression
//!   and a ReLU MLP of arbitrary depth (the reproduction's substitute for
//!   the paper's small CNNs — see DESIGN.md §2);
//! * [`loss`] — numerically stable cross-entropy on logits;
//! * [`sgd`] — mini-batch SGD used inside local solves;
//! * [`dane`] — the local surrogate solve itself, including the measured
//!   local convergence accuracy `η̂_{t,k}` that FedL's constraint (3c)
//!   consumes;
//! * [`metrics`] — accuracy/loss evaluation on held-out data.
//!
//! System-inventory row **S2** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dane;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod params;
pub mod sgd;

pub use dane::{DaneConfig, DaneScratch, LocalOutcome};
pub use model::{Model, ModelScratch};
pub use params::ParamSet;
