//! Evaluation metrics: accuracy, loss, and per-class breakdowns.

use fedl_data::Dataset;

use crate::model::Model;

/// Classification accuracy of `model` on `data` in `[0, 1]`.
pub fn accuracy(model: &dyn Model, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let preds = model.forward(&data.features).row_argmax();
    let correct = preds.iter().zip(&data.labels).filter(|(p, l)| p == l).count();
    correct as f64 / data.len() as f64
}

/// Regularized loss of `model` on `data`.
pub fn loss(model: &dyn Model, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    model.loss(&data.features, &data.one_hot_labels()) as f64
}

/// Per-class recall (diagonal of the row-normalized confusion matrix).
/// Classes absent from `data` report recall 0.
pub fn per_class_recall(model: &dyn Model, data: &Dataset) -> Vec<f64> {
    let mut correct = vec![0usize; data.num_classes];
    let mut total = vec![0usize; data.num_classes];
    if !data.is_empty() {
        let preds = model.forward(&data.features).row_argmax();
        for (p, &l) in preds.iter().zip(&data.labels) {
            total[l] += 1;
            if *p == l {
                correct[l] += 1;
            }
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f64 / t as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SoftmaxRegression;
    use crate::sgd::{run, SgdConfig};
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;

    #[test]
    fn untrained_model_near_chance() {
        let (_, test) = small_fmnist(10, 500, 1);
        let model = SoftmaxRegression::new(test.dim(), test.num_classes, 0.0);
        let acc = accuracy(&model, &test);
        // Zero weights -> uniform logits -> argmax is class 0 everywhere;
        // with balanced classes that's ~10%.
        assert!(acc < 0.2, "{acc}");
    }

    #[test]
    fn trained_model_beats_chance_substantially() {
        let (train, test) = small_fmnist(1500, 400, 2);
        let mut model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.001);
        let cfg = SgdConfig { lr: 0.5, batch: 32, steps: 600, clip: Some(10.0) };
        run(&mut model, &train, &cfg, &mut rng_for(1, 0));
        let acc = accuracy(&model, &test);
        assert!(acc > 0.6, "trained accuracy only {acc}");
        assert!(loss(&model, &test) < (10.0f64).ln());
    }

    #[test]
    fn per_class_recall_shape_and_range() {
        let (train, test) = small_fmnist(200, 100, 3);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.0);
        let recall = per_class_recall(&model, &test);
        assert_eq!(recall.len(), 10);
        assert!(recall.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn empty_dataset_conventions() {
        let (train, _) = small_fmnist(10, 5, 4);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.0);
        let empty = train.subset(&[]);
        assert_eq!(accuracy(&model, &empty), 0.0);
        assert_eq!(loss(&model, &empty), 0.0);
    }
}
