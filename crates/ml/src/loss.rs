//! Numerically stable cross-entropy on logits.

use fedl_linalg::{ops, Matrix};

/// Mean cross-entropy of `logits` against one-hot `targets`.
///
/// Computed as `mean(logsumexp(row) − logit_true)`, which never
/// exponentiates un-shifted logits.
///
/// # Panics
/// Panics on shape mismatch or empty batch.
pub fn cross_entropy(logits: &Matrix, targets: &Matrix) -> f32 {
    cross_entropy_scratch(logits, targets, &mut Vec::new())
}

/// [`cross_entropy`] with a caller-owned log-sum-exp buffer; steady-state
/// reuse performs no allocation. Same fold order, same result bits.
pub fn cross_entropy_scratch(logits: &Matrix, targets: &Matrix, lse: &mut Vec<f32>) -> f32 {
    assert_eq!(logits.shape(), targets.shape(), "loss shape mismatch");
    assert!(logits.rows() > 0, "cross entropy of an empty batch");
    ops::log_sum_exp_rows_into(logits, lse);
    let mut total = 0.0f32;
    for (r, (logit_row, target_row)) in logits.row_iter().zip(targets.row_iter()).enumerate() {
        let true_logit: f32 = logit_row.iter().zip(target_row).map(|(l, t)| l * t).sum();
        total += lse[r] - true_logit;
    }
    total / logits.rows() as f32
}

/// Cross-entropy and its gradient with respect to the logits:
/// `(softmax(logits) − targets) / batch`.
pub fn cross_entropy_with_grad(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    let mut grad = Matrix::default();
    let loss = cross_entropy_with_grad_into(logits, targets, &mut Vec::new(), &mut grad);
    (loss, grad)
}

/// [`cross_entropy_with_grad`] writing the gradient into a caller-owned
/// matrix (reshaped to match `logits`) with a reusable log-sum-exp
/// buffer; steady-state reuse performs no allocation.
pub fn cross_entropy_with_grad_into(
    logits: &Matrix,
    targets: &Matrix,
    lse: &mut Vec<f32>,
    grad: &mut Matrix,
) -> f32 {
    let loss = cross_entropy_scratch(logits, targets, lse);
    ops::softmax_rows_into(logits, grad);
    grad.axpy(-1.0, targets);
    grad.scale(1.0 / logits.rows() as f32);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_linalg::approx_eq;

    fn one_hot(labels: &[usize], classes: usize) -> Matrix {
        let mut m = Matrix::zeros(labels.len(), classes);
        for (r, &l) in labels.iter().enumerate() {
            m.set(r, l, 1.0);
        }
        m
    }

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(4, 10);
        let targets = one_hot(&[0, 3, 5, 9], 10);
        let loss = cross_entropy(&logits, &targets);
        assert!(approx_eq(loss, (10.0f32).ln(), 1e-5), "{loss}");
    }

    #[test]
    fn confident_correct_prediction_has_tiny_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 30.0);
        let loss = cross_entropy(&logits, &one_hot(&[1], 3));
        assert!(loss < 1e-5, "{loss}");
    }

    #[test]
    fn confident_wrong_prediction_has_large_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 0, 30.0);
        let loss = cross_entropy(&logits, &one_hot(&[1], 3));
        assert!(loss > 20.0, "{loss}");
    }

    #[test]
    fn stable_for_extreme_logits() {
        let logits = Matrix::from_vec(1, 3, vec![1e4, -1e4, 0.0]);
        let loss = cross_entropy(&logits, &one_hot(&[0], 3));
        assert!(loss.is_finite());
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let targets = one_hot(&[2, 0], 3);
        let (_, grad) = cross_entropy_with_grad(&logits, &targets);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let fd = (cross_entropy(&plus, &targets) - cross_entropy(&minus, &targets))
                    / (2.0 * eps);
                assert!(
                    approx_eq(grad.get(r, c), fd, 1e-2),
                    "grad {} vs fd {} at ({r},{c})",
                    grad.get(r, c),
                    fd
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax minus one-hot always sums to zero per row.
        let logits = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 2.0]);
        let targets = one_hot(&[0, 3], 4);
        let (_, grad) = cross_entropy_with_grad(&logits, &targets);
        for row in grad.row_iter() {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6, "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = cross_entropy(&Matrix::zeros(0, 3), &Matrix::zeros(0, 3));
    }
}
