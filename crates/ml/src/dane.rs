//! The DANE/FEDL local surrogate solve (paper §3.1, "Model Training").
//!
//! Each global iteration, a selected client receives the global model `w`
//! and the server's aggregated gradient `J` and minimizes
//!
//! ```text
//! G_{t,k}(d) = F_{t,k}(w + d) + (σ₁/2)·‖d‖² − (∇F_{t,k}(w) − σ₂·J)ᵀ (w + d)
//! ```
//!
//! over the update direction `d` with a fixed number of SGD steps
//! (`d⁰ = 0`, `dʲ = dʲ⁻¹ − α·∇G(dʲ⁻¹)`). The gradient is
//!
//! ```text
//! ∇G(d) = ∇F_{t,k}(w + d) + σ₁·d − ∇F_{t,k}(w) + σ₂·J ,
//! ```
//!
//! so at `d = 0` the (full-batch) gradient is exactly `σ₂·J`: the local
//! step follows the *global* descent direction corrected by local
//! curvature, which is what lets FEDL-style training tolerate partial
//! participation.
//!
//! The paper's `J_t` notation aggregates `F_{t,k}` values; following the
//! FEDL system it cites (\[7\], \[25\]) we aggregate client *gradients* —
//! loss values carry no direction and could not drive the surrogate.
//!
//! The solve also reports the measured local convergence accuracy
//!
//! ```text
//! η̂_{t,k} = ‖∇G(d_final)‖ / ‖∇G(0)‖  ∈ [0, 1),
//! ```
//!
//! the gradient-norm form of the paper's
//! `G(d) − G* ≤ η·[G(0) − G*]` criterion. FedL's constraint (3c) compares
//! this observed value against the iteration-control decision ηₜ.

use std::cell::RefCell;

use fedl_linalg::rng::Rng;

use fedl_data::Dataset;
use fedl_linalg::Matrix;
use fedl_telemetry::Telemetry;

use crate::model::{Model, ModelScratch};
use crate::params::ParamSet;
use crate::sgd::sample_batch_into;

/// Hyper-parameters of the local surrogate solve.
#[derive(Debug, Clone, Copy)]
pub struct DaneConfig {
    /// Proximal coefficient σ₁ (strong-convexity injection).
    pub sigma1: f32,
    /// Global-gradient weight σ₂ (FEDL's η).
    pub sigma2: f32,
    /// SGD step size α.
    pub lr: f32,
    /// Number of local SGD steps per global iteration (the paper treats
    /// this as a pre-defined constant).
    pub local_steps: usize,
    /// Mini-batch size for the stochastic surrogate gradients.
    pub batch: usize,
    /// Gradient clipping threshold.
    pub clip: f32,
    /// Momentum coefficient for the local SGD steps, in `[0, 1)`.
    /// `0` is the paper's plain SGD; positive values give the
    /// Momentum-FL-style accelerated local solve (Liu et al., cited as
    /// \[17\] in the paper's related work).
    pub momentum: f32,
}

impl Default for DaneConfig {
    fn default() -> Self {
        Self {
            sigma1: 0.1,
            sigma2: 1.0,
            lr: 0.2,
            local_steps: 8,
            batch: 32,
            clip: 10.0,
            momentum: 0.0,
        }
    }
}

impl fedl_json::ToJson for DaneConfig {
    fn to_json_value(&self) -> fedl_json::Value {
        // Canonical field order — part of the result-cache key contract
        // (docs/CHECKPOINT.md), so reordering fields invalidates caches.
        fedl_json::obj(vec![
            ("sigma1", self.sigma1.to_json_value()),
            ("sigma2", self.sigma2.to_json_value()),
            ("lr", self.lr.to_json_value()),
            ("local_steps", self.local_steps.to_json_value()),
            ("batch", self.batch.to_json_value()),
            ("clip", self.clip.to_json_value()),
            ("momentum", self.momentum.to_json_value()),
        ])
    }
}

/// What a client uploads after its local solve.
#[derive(Debug, Clone)]
pub struct LocalOutcome {
    /// Update direction `d` (the server averages these).
    pub delta: ParamSet,
    /// Full-batch `∇F_{t,k}(w)` at the broadcast model (aggregated by the
    /// server into the next `J`).
    pub grad_at_w: ParamSet,
    /// Measured local convergence accuracy `η̂ ∈ [0, 1)`.
    pub eta_hat: f32,
    /// Full-batch local loss at the broadcast model.
    pub loss_at_w: f32,
    /// Full-batch local loss at `w + d`.
    pub loss_after: f32,
}

/// Reusable workspace for [`local_update_scratch`].
///
/// Holds every intermediate the local solve needs — the working model
/// clone, the DANE parameter-vector temporaries, the mini-batch
/// matrices, and the model's forward/backward workspace. Buffers grow to
/// the workload's high-water mark and are then reused, so a steady-state
/// solve performs zero heap allocation (pinned by
/// `crates/ml/tests/alloc_free.rs`).
///
/// The cached working-model clone is revalidated against the incoming
/// model by parameter shapes only; hyper-parameters the shapes cannot
/// see (such as a different L2 coefficient on the same architecture) are
/// the caller's responsibility — use one scratch per model, or go
/// through [`local_update`], which refreshes the clone on every call.
pub struct DaneScratch {
    work: Option<Box<dyn Model>>,
    wd: ParamSet,
    velocity: ParamSet,
    neg_linear: ParamSet,
    g: ParamSet,
    bx: Matrix,
    by: Matrix,
    y_full: Matrix,
    ws: ModelScratch,
}

impl DaneScratch {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self {
            work: None,
            wd: ParamSet::new(Vec::new()),
            velocity: ParamSet::new(Vec::new()),
            neg_linear: ParamSet::new(Vec::new()),
            g: ParamSet::new(Vec::new()),
            bx: Matrix::default(),
            by: Matrix::default(),
            y_full: Matrix::default(),
            ws: ModelScratch::new(),
        }
    }
}

impl Default for DaneScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Value of the surrogate `G(d)` on the client's full working set —
/// used by tests and the theory-validation benches.
pub fn surrogate_value(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    delta: &ParamSet,
) -> f32 {
    let (x, y) = full_batch(data);
    let w = model_at_w.params().clone();
    let (loss_w, grad_w) = model_at_w.loss_and_grad(&x, &y);
    let _ = loss_w;
    let mut shifted = model_at_w.clone_model();
    shifted.set_params(w.added(1.0, delta));
    let f_wd = shifted.loss(&x, &y);
    // linear = ∇F(w) − σ₂·J ; G = F(w+d) + σ₁/2‖d‖² − linear·(w + d).
    let linear = grad_w.added(-cfg.sigma2, j_agg);
    let wd = w.added(1.0, delta);
    f_wd + 0.5 * cfg.sigma1 * delta.norm_sq() - linear.dot(&wd)
}

fn full_batch(data: &Dataset) -> (Matrix, Matrix) {
    (data.features.clone(), data.one_hot_labels())
}

/// Runs one client's local surrogate solve.
///
/// `model_at_w` carries the broadcast global model `w` (it is not
/// mutated); `j_agg` is the server's aggregated gradient from the
/// previous iteration (zeros on the very first iteration, making the
/// first local step a pure proximal solve, as in the FEDL bootstrap).
///
/// # Panics
/// Panics on an empty working set or a non-positive learning rate.
pub fn local_update(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    rng: &mut impl Rng,
) -> LocalOutcome {
    thread_local! {
        static SCRATCH: RefCell<DaneScratch> = RefCell::new(DaneScratch::new());
    }
    let mut out = LocalOutcome {
        delta: ParamSet::new(Vec::new()),
        grad_at_w: ParamSet::new(Vec::new()),
        eta_hat: 0.0,
        loss_at_w: 0.0,
        loss_after: 0.0,
    };
    SCRATCH.with(|s| {
        let mut scratch = s.borrow_mut();
        // The cached work clone can go stale in hyper-parameters that
        // parameter shapes cannot distinguish (e.g. a different L2 on
        // the same architecture), so the safe entry point re-clones per
        // call — the same clone count as the historical implementation.
        scratch.work = Some(model_at_w.clone_model());
        local_update_scratch(model_at_w, data, j_agg, cfg, rng, &mut scratch, &mut out);
    });
    out
}

/// `true` when the two sets have identical tensor arity and shapes.
fn same_shapes(a: &ParamSet, b: &ParamSet) -> bool {
    a.len() == b.len() && a.tensors().iter().zip(b.tensors()).all(|(x, y)| x.shape() == y.shape())
}

/// [`local_update`] with caller-owned workspace and outcome buffers.
///
/// Bit-identical to [`local_update`] (same operations in the same order,
/// same draws from `rng`), but a warmed `scratch`/`out` pair makes the
/// whole solve — including the per-step model forward/backward — free of
/// heap allocation. See [`DaneScratch`] for the working-model caching
/// contract.
pub fn local_update_scratch(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    rng: &mut impl Rng,
    scratch: &mut DaneScratch,
    out: &mut LocalOutcome,
) {
    assert!(!data.is_empty(), "local update on an empty working set");
    assert!(cfg.lr > 0.0, "non-positive DANE learning rate");
    assert!(cfg.local_steps > 0, "need at least one local step");
    assert!((0.0..1.0).contains(&cfg.momentum), "momentum must be in [0, 1), got {}", cfg.momentum);

    let x_full = &data.features;
    data.one_hot_labels_into(&mut scratch.y_full);
    let w = model_at_w.params();
    out.loss_at_w = model_at_w.loss_and_grad_scratch(
        x_full,
        &scratch.y_full,
        &mut out.grad_at_w,
        &mut scratch.ws,
    );
    // Constant linear term of ∇G: −∇F(w) + σ₂·J.
    scratch.neg_linear.copy_from(&out.grad_at_w);
    scratch.neg_linear.scale(-1.0);
    scratch.neg_linear.axpy(cfg.sigma2, j_agg);

    // ‖∇G(0)‖ on the full batch = ‖σ₂·J‖ (denominator of η̂).
    let grad0_norm = cfg.sigma2 * j_agg.norm();

    if scratch.work.as_ref().is_none_or(|m| !same_shapes(m.params(), w)) {
        scratch.work = Some(model_at_w.clone_model());
    }
    let work = scratch.work.as_mut().expect("work model ensured above");
    out.delta.set_zeros_like(w);
    scratch.velocity.set_zeros_like(w);
    for _ in 0..cfg.local_steps {
        scratch.wd.copy_from(w);
        scratch.wd.axpy(1.0, &out.delta);
        work.set_params_from(&scratch.wd);
        sample_batch_into(data, cfg.batch, rng, &mut scratch.bx, &mut scratch.by);
        let _ =
            work.loss_and_grad_scratch(&scratch.bx, &scratch.by, &mut scratch.g, &mut scratch.ws);
        // ∇G(d) = ∇F(w+d) + σ₁·d − ∇F(w) + σ₂·J.
        scratch.g.axpy(cfg.sigma1, &out.delta);
        scratch.g.axpy(1.0, &scratch.neg_linear);
        scratch.g.clip(cfg.clip);
        // Heavy-ball update: v ← γ·v − α·∇G, d ← d + v.
        scratch.velocity.scale(cfg.momentum);
        scratch.velocity.axpy(-cfg.lr, &scratch.g);
        out.delta.axpy(1.0, &scratch.velocity);
    }

    // Final full-batch surrogate gradient for η̂ and the post-solve loss.
    scratch.wd.copy_from(w);
    scratch.wd.axpy(1.0, &out.delta);
    work.set_params_from(&scratch.wd);
    out.loss_after =
        work.loss_and_grad_scratch(x_full, &scratch.y_full, &mut scratch.g, &mut scratch.ws);
    scratch.g.axpy(cfg.sigma1, &out.delta);
    scratch.g.axpy(1.0, &scratch.neg_linear);
    out.eta_hat = if grad0_norm > 1e-12 {
        (scratch.g.norm() / grad0_norm).clamp(0.0, 0.999)
    } else {
        // No aggregated direction yet (first iteration): the surrogate
        // started at its stationary point, so the solve is "exact".
        0.0
    };
}

/// [`local_update`] with the solve's observables recorded into
/// `telemetry`: counters `ml.local_updates` / `ml.local_steps` and
/// histograms `ml.eta_hat` (the measured accuracy η̂, dimensionless),
/// `ml.local_loss` (loss at the broadcast model), and
/// `ml.solve_secs` (wall-clock solve time).
///
/// The workspace simulator calls this from its worker threads — the
/// [`Telemetry`] handle is `Sync`, and every recording is a few atomic
/// operations, so instrumentation does not serialise the parallel
/// solves. A disabled handle makes this exactly [`local_update`].
pub fn local_update_observed(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    rng: &mut impl Rng,
    telemetry: &Telemetry,
) -> LocalOutcome {
    let start = std::time::Instant::now();
    let outcome = local_update(model_at_w, data, j_agg, cfg, rng);
    telemetry.counter("ml.local_updates").incr();
    telemetry.counter("ml.local_steps").add(cfg.local_steps as u64);
    telemetry.histogram("ml.eta_hat").record(outcome.eta_hat as f64);
    telemetry.histogram("ml.local_loss").record(outcome.loss_at_w as f64);
    telemetry.histogram("ml.solve_secs").record(start.elapsed().as_secs_f64());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SoftmaxRegression;
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;

    fn setup() -> (SoftmaxRegression, Dataset) {
        let (train, _) = small_fmnist(200, 10, 17);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.01);
        (model, train)
    }

    /// With a real aggregated gradient, the local solve must reduce the
    /// surrogate value relative to d = 0.
    #[test]
    fn local_solve_descends_surrogate() {
        let (model, data) = setup();
        // Build a meaningful J: the client's own full-batch gradient.
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps: 20, ..Default::default() };
        let mut rng = rng_for(1, 0);
        let out = local_update(&model, &data, &j, &cfg, &mut rng);
        let g0 = surrogate_value(&model, &data, &j, &cfg, &out.delta.zeros_like());
        let g_end = surrogate_value(&model, &data, &j, &cfg, &out.delta);
        assert!(g_end < g0, "surrogate did not decrease: {g0} -> {g_end}");
    }

    #[test]
    fn eta_hat_in_range_and_improves_with_more_steps() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let eta_for = |steps: usize| {
            let cfg = DaneConfig { local_steps: steps, lr: 0.2, ..Default::default() };
            let mut rng = rng_for(2, steps as u64);
            local_update(&model, &data, &j, &cfg, &mut rng).eta_hat
        };
        let few = eta_for(1);
        let many = eta_for(40);
        assert!((0.0..1.0).contains(&few));
        assert!((0.0..1.0).contains(&many));
        assert!(many < few, "more local steps should tighten accuracy: {few} vs {many}");
    }

    #[test]
    fn zero_j_bootstrap_reports_exact_accuracy() {
        let (model, data) = setup();
        let j = model.params().zeros_like();
        let mut rng = rng_for(3, 0);
        let out = local_update(&model, &data, &j, &DaneConfig::default(), &mut rng);
        assert_eq!(out.eta_hat, 0.0);
        assert!(out.delta.norm().is_finite());
    }

    #[test]
    fn applying_aggregated_direction_reduces_global_loss() {
        // One FEDL macro-iteration on a single client must make progress
        // on that client's loss.
        let (mut model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let mut j = model.params().zeros_like();
        let cfg = DaneConfig { local_steps: 25, lr: 0.2, ..Default::default() };
        let before = model.loss(&x, &y);
        let mut rng = rng_for(4, 0);
        for it in 0..5 {
            let out = local_update(&model, &data, &j, &cfg, &mut rng);
            let updated = model.params().added(1.0, &out.delta);
            model.set_params(updated);
            j = out.grad_at_w;
            let _ = it;
        }
        let after = model.loss(&x, &y);
        assert!(after < before * 0.9, "loss {before} -> {after}");
    }

    #[test]
    fn grad_at_w_matches_direct_computation() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, direct) = model.loss_and_grad(&x, &y);
        let j = model.params().zeros_like();
        let mut rng = rng_for(5, 0);
        let out = local_update(&model, &data, &j, &DaneConfig::default(), &mut rng);
        assert_eq!(out.grad_at_w, direct);
        assert!((out.loss_at_w - model.loss(&x, &y)).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_the_local_solve() {
        // At matched step counts, momentum must reach a lower (or equal)
        // surrogate value than plain SGD on this smooth problem.
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let solve = |momentum: f32| {
            let cfg = DaneConfig { local_steps: 12, lr: 0.1, momentum, ..Default::default() };
            let mut rng = rng_for(6, 0);
            let out = local_update(&model, &data, &j, &cfg, &mut rng);
            surrogate_value(&model, &data, &j, &cfg, &out.delta)
        };
        let plain = solve(0.0);
        let heavy = solve(0.6);
        assert!(
            heavy <= plain + 1e-3,
            "momentum should not slow the solve: plain {plain} vs momentum {heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_rejected() {
        let (model, data) = setup();
        let j = model.params().zeros_like();
        let cfg = DaneConfig { momentum: 1.0, ..Default::default() };
        let _ = local_update(&model, &data, &j, &cfg, &mut rng_for(0, 0));
    }

    #[test]
    fn scratch_solve_matches_plain_bitwise() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps: 6, momentum: 0.3, ..Default::default() };
        let plain = local_update(&model, &data, &j, &cfg, &mut rng_for(21, 0));
        let mut scratch = DaneScratch::new();
        let mut out = LocalOutcome {
            delta: ParamSet::new(Vec::new()),
            grad_at_w: ParamSet::new(Vec::new()),
            eta_hat: 0.0,
            loss_at_w: 0.0,
            loss_after: 0.0,
        };
        // Twice: the second call runs with fully warmed buffers and a
        // cached work model, and must still match bit-for-bit.
        for round in 0..2 {
            local_update_scratch(
                &model,
                &data,
                &j,
                &cfg,
                &mut rng_for(21, 0),
                &mut scratch,
                &mut out,
            );
            assert_eq!(out.delta, plain.delta, "round {round}");
            assert_eq!(out.grad_at_w, plain.grad_at_w, "round {round}");
            assert_eq!(out.eta_hat.to_bits(), plain.eta_hat.to_bits(), "round {round}");
            assert_eq!(out.loss_at_w.to_bits(), plain.loss_at_w.to_bits(), "round {round}");
            assert_eq!(out.loss_after.to_bits(), plain.loss_after.to_bits(), "round {round}");
        }
    }

    #[test]
    fn observed_update_matches_plain_and_records_metrics() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps: 4, ..Default::default() };
        let plain = local_update(&model, &data, &j, &cfg, &mut rng_for(9, 0));
        let (tel, _handle) = Telemetry::in_memory();
        let observed = local_update_observed(&model, &data, &j, &cfg, &mut rng_for(9, 0), &tel);
        // Instrumentation must not change the numerics.
        assert_eq!(observed.delta, plain.delta);
        assert_eq!(observed.eta_hat, plain.eta_hat);
        assert_eq!(tel.counter("ml.local_updates").value(), 1);
        assert_eq!(tel.counter("ml.local_steps").value(), 4);
        assert_eq!(tel.histogram("ml.eta_hat").count(), 1);
        assert_eq!(tel.histogram("ml.local_loss").count(), 1);
        assert_eq!(tel.histogram("ml.solve_secs").count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty working set")]
    fn empty_data_rejected() {
        let (model, data) = setup();
        let empty = data.subset(&[]);
        let j = model.params().zeros_like();
        let _ = local_update(&model, &empty, &j, &DaneConfig::default(), &mut rng_for(0, 0));
    }
}
