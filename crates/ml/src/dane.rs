//! The DANE/FEDL local surrogate solve (paper §3.1, "Model Training").
//!
//! Each global iteration, a selected client receives the global model `w`
//! and the server's aggregated gradient `J` and minimizes
//!
//! ```text
//! G_{t,k}(d) = F_{t,k}(w + d) + (σ₁/2)·‖d‖² − (∇F_{t,k}(w) − σ₂·J)ᵀ (w + d)
//! ```
//!
//! over the update direction `d` with a fixed number of SGD steps
//! (`d⁰ = 0`, `dʲ = dʲ⁻¹ − α·∇G(dʲ⁻¹)`). The gradient is
//!
//! ```text
//! ∇G(d) = ∇F_{t,k}(w + d) + σ₁·d − ∇F_{t,k}(w) + σ₂·J ,
//! ```
//!
//! so at `d = 0` the (full-batch) gradient is exactly `σ₂·J`: the local
//! step follows the *global* descent direction corrected by local
//! curvature, which is what lets FEDL-style training tolerate partial
//! participation.
//!
//! The paper's `J_t` notation aggregates `F_{t,k}` values; following the
//! FEDL system it cites (\[7\], \[25\]) we aggregate client *gradients* —
//! loss values carry no direction and could not drive the surrogate.
//!
//! The solve also reports the measured local convergence accuracy
//!
//! ```text
//! η̂_{t,k} = ‖∇G(d_final)‖ / ‖∇G(0)‖  ∈ [0, 1),
//! ```
//!
//! the gradient-norm form of the paper's
//! `G(d) − G* ≤ η·[G(0) − G*]` criterion. FedL's constraint (3c) compares
//! this observed value against the iteration-control decision ηₜ.

use fedl_linalg::rng::Rng;

use fedl_data::Dataset;
use fedl_linalg::Matrix;
use fedl_telemetry::Telemetry;

use crate::model::Model;
use crate::params::ParamSet;
use crate::sgd::sample_batch;

/// Hyper-parameters of the local surrogate solve.
#[derive(Debug, Clone, Copy)]
pub struct DaneConfig {
    /// Proximal coefficient σ₁ (strong-convexity injection).
    pub sigma1: f32,
    /// Global-gradient weight σ₂ (FEDL's η).
    pub sigma2: f32,
    /// SGD step size α.
    pub lr: f32,
    /// Number of local SGD steps per global iteration (the paper treats
    /// this as a pre-defined constant).
    pub local_steps: usize,
    /// Mini-batch size for the stochastic surrogate gradients.
    pub batch: usize,
    /// Gradient clipping threshold.
    pub clip: f32,
    /// Momentum coefficient for the local SGD steps, in `[0, 1)`.
    /// `0` is the paper's plain SGD; positive values give the
    /// Momentum-FL-style accelerated local solve (Liu et al., cited as
    /// \[17\] in the paper's related work).
    pub momentum: f32,
}

impl Default for DaneConfig {
    fn default() -> Self {
        Self {
            sigma1: 0.1,
            sigma2: 1.0,
            lr: 0.2,
            local_steps: 8,
            batch: 32,
            clip: 10.0,
            momentum: 0.0,
        }
    }
}

impl fedl_json::ToJson for DaneConfig {
    fn to_json_value(&self) -> fedl_json::Value {
        // Canonical field order — part of the result-cache key contract
        // (docs/CHECKPOINT.md), so reordering fields invalidates caches.
        fedl_json::obj(vec![
            ("sigma1", self.sigma1.to_json_value()),
            ("sigma2", self.sigma2.to_json_value()),
            ("lr", self.lr.to_json_value()),
            ("local_steps", self.local_steps.to_json_value()),
            ("batch", self.batch.to_json_value()),
            ("clip", self.clip.to_json_value()),
            ("momentum", self.momentum.to_json_value()),
        ])
    }
}

/// What a client uploads after its local solve.
#[derive(Debug, Clone)]
pub struct LocalOutcome {
    /// Update direction `d` (the server averages these).
    pub delta: ParamSet,
    /// Full-batch `∇F_{t,k}(w)` at the broadcast model (aggregated by the
    /// server into the next `J`).
    pub grad_at_w: ParamSet,
    /// Measured local convergence accuracy `η̂ ∈ [0, 1)`.
    pub eta_hat: f32,
    /// Full-batch local loss at the broadcast model.
    pub loss_at_w: f32,
    /// Full-batch local loss at `w + d`.
    pub loss_after: f32,
}

/// Value of the surrogate `G(d)` on the client's full working set —
/// used by tests and the theory-validation benches.
pub fn surrogate_value(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    delta: &ParamSet,
) -> f32 {
    let (x, y) = full_batch(data);
    let w = model_at_w.params().clone();
    let (loss_w, grad_w) = model_at_w.loss_and_grad(&x, &y);
    let _ = loss_w;
    let mut shifted = model_at_w.clone_model();
    shifted.set_params(w.added(1.0, delta));
    let f_wd = shifted.loss(&x, &y);
    // linear = ∇F(w) − σ₂·J ; G = F(w+d) + σ₁/2‖d‖² − linear·(w + d).
    let linear = grad_w.added(-cfg.sigma2, j_agg);
    let wd = w.added(1.0, delta);
    f_wd + 0.5 * cfg.sigma1 * delta.norm_sq() - linear.dot(&wd)
}

fn full_batch(data: &Dataset) -> (Matrix, Matrix) {
    (data.features.clone(), data.one_hot_labels())
}

/// Runs one client's local surrogate solve.
///
/// `model_at_w` carries the broadcast global model `w` (it is not
/// mutated); `j_agg` is the server's aggregated gradient from the
/// previous iteration (zeros on the very first iteration, making the
/// first local step a pure proximal solve, as in the FEDL bootstrap).
///
/// # Panics
/// Panics on an empty working set or a non-positive learning rate.
pub fn local_update(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    rng: &mut impl Rng,
) -> LocalOutcome {
    assert!(!data.is_empty(), "local update on an empty working set");
    assert!(cfg.lr > 0.0, "non-positive DANE learning rate");
    assert!(cfg.local_steps > 0, "need at least one local step");
    assert!((0.0..1.0).contains(&cfg.momentum), "momentum must be in [0, 1), got {}", cfg.momentum);

    let (x_full, y_full) = full_batch(data);
    let w = model_at_w.params().clone();
    let (loss_at_w, grad_at_w) = model_at_w.loss_and_grad(&x_full, &y_full);
    // Constant linear term of ∇G: −∇F(w) + σ₂·J.
    let mut neg_linear = grad_at_w.clone();
    neg_linear.scale(-1.0);
    neg_linear.axpy(cfg.sigma2, j_agg);

    // ‖∇G(0)‖ on the full batch = ‖σ₂·J‖ (denominator of η̂).
    let grad0_norm = cfg.sigma2 * j_agg.norm();

    let mut work = model_at_w.clone_model();
    let mut delta = w.zeros_like();
    let mut velocity = w.zeros_like();
    for _ in 0..cfg.local_steps {
        work.set_params(w.added(1.0, &delta));
        let (bx, by) = sample_batch(data, cfg.batch, rng);
        let (_, mut g) = work.loss_and_grad(&bx, &by);
        // ∇G(d) = ∇F(w+d) + σ₁·d − ∇F(w) + σ₂·J.
        g.axpy(cfg.sigma1, &delta);
        g.axpy(1.0, &neg_linear);
        g.clip(cfg.clip);
        // Heavy-ball update: v ← γ·v − α·∇G, d ← d + v.
        velocity.scale(cfg.momentum);
        velocity.axpy(-cfg.lr, &g);
        delta.axpy(1.0, &velocity);
    }

    // Final full-batch surrogate gradient for η̂ and the post-solve loss.
    work.set_params(w.added(1.0, &delta));
    let (loss_after, mut g_final) = work.loss_and_grad(&x_full, &y_full);
    g_final.axpy(cfg.sigma1, &delta);
    g_final.axpy(1.0, &neg_linear);
    let eta_hat = if grad0_norm > 1e-12 {
        (g_final.norm() / grad0_norm).clamp(0.0, 0.999)
    } else {
        // No aggregated direction yet (first iteration): the surrogate
        // started at its stationary point, so the solve is "exact".
        0.0
    };

    LocalOutcome { delta, grad_at_w, eta_hat, loss_at_w, loss_after }
}

/// [`local_update`] with the solve's observables recorded into
/// `telemetry`: counters `ml.local_updates` / `ml.local_steps` and
/// histograms `ml.eta_hat` (the measured accuracy η̂, dimensionless),
/// `ml.local_loss` (loss at the broadcast model), and
/// `ml.solve_secs` (wall-clock solve time).
///
/// The workspace simulator calls this from its worker threads — the
/// [`Telemetry`] handle is `Sync`, and every recording is a few atomic
/// operations, so instrumentation does not serialise the parallel
/// solves. A disabled handle makes this exactly [`local_update`].
pub fn local_update_observed(
    model_at_w: &dyn Model,
    data: &Dataset,
    j_agg: &ParamSet,
    cfg: &DaneConfig,
    rng: &mut impl Rng,
    telemetry: &Telemetry,
) -> LocalOutcome {
    let start = std::time::Instant::now();
    let outcome = local_update(model_at_w, data, j_agg, cfg, rng);
    telemetry.counter("ml.local_updates").incr();
    telemetry.counter("ml.local_steps").add(cfg.local_steps as u64);
    telemetry.histogram("ml.eta_hat").record(outcome.eta_hat as f64);
    telemetry.histogram("ml.local_loss").record(outcome.loss_at_w as f64);
    telemetry.histogram("ml.solve_secs").record(start.elapsed().as_secs_f64());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SoftmaxRegression;
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;

    fn setup() -> (SoftmaxRegression, Dataset) {
        let (train, _) = small_fmnist(200, 10, 17);
        let model = SoftmaxRegression::new(train.dim(), train.num_classes, 0.01);
        (model, train)
    }

    /// With a real aggregated gradient, the local solve must reduce the
    /// surrogate value relative to d = 0.
    #[test]
    fn local_solve_descends_surrogate() {
        let (model, data) = setup();
        // Build a meaningful J: the client's own full-batch gradient.
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps: 20, ..Default::default() };
        let mut rng = rng_for(1, 0);
        let out = local_update(&model, &data, &j, &cfg, &mut rng);
        let g0 = surrogate_value(&model, &data, &j, &cfg, &out.delta.zeros_like());
        let g_end = surrogate_value(&model, &data, &j, &cfg, &out.delta);
        assert!(g_end < g0, "surrogate did not decrease: {g0} -> {g_end}");
    }

    #[test]
    fn eta_hat_in_range_and_improves_with_more_steps() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let eta_for = |steps: usize| {
            let cfg = DaneConfig { local_steps: steps, lr: 0.2, ..Default::default() };
            let mut rng = rng_for(2, steps as u64);
            local_update(&model, &data, &j, &cfg, &mut rng).eta_hat
        };
        let few = eta_for(1);
        let many = eta_for(40);
        assert!((0.0..1.0).contains(&few));
        assert!((0.0..1.0).contains(&many));
        assert!(many < few, "more local steps should tighten accuracy: {few} vs {many}");
    }

    #[test]
    fn zero_j_bootstrap_reports_exact_accuracy() {
        let (model, data) = setup();
        let j = model.params().zeros_like();
        let mut rng = rng_for(3, 0);
        let out = local_update(&model, &data, &j, &DaneConfig::default(), &mut rng);
        assert_eq!(out.eta_hat, 0.0);
        assert!(out.delta.norm().is_finite());
    }

    #[test]
    fn applying_aggregated_direction_reduces_global_loss() {
        // One FEDL macro-iteration on a single client must make progress
        // on that client's loss.
        let (mut model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let mut j = model.params().zeros_like();
        let cfg = DaneConfig { local_steps: 25, lr: 0.2, ..Default::default() };
        let before = model.loss(&x, &y);
        let mut rng = rng_for(4, 0);
        for it in 0..5 {
            let out = local_update(&model, &data, &j, &cfg, &mut rng);
            let updated = model.params().added(1.0, &out.delta);
            model.set_params(updated);
            j = out.grad_at_w;
            let _ = it;
        }
        let after = model.loss(&x, &y);
        assert!(after < before * 0.9, "loss {before} -> {after}");
    }

    #[test]
    fn grad_at_w_matches_direct_computation() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, direct) = model.loss_and_grad(&x, &y);
        let j = model.params().zeros_like();
        let mut rng = rng_for(5, 0);
        let out = local_update(&model, &data, &j, &DaneConfig::default(), &mut rng);
        assert_eq!(out.grad_at_w, direct);
        assert!((out.loss_at_w - model.loss(&x, &y)).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_the_local_solve() {
        // At matched step counts, momentum must reach a lower (or equal)
        // surrogate value than plain SGD on this smooth problem.
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let solve = |momentum: f32| {
            let cfg = DaneConfig { local_steps: 12, lr: 0.1, momentum, ..Default::default() };
            let mut rng = rng_for(6, 0);
            let out = local_update(&model, &data, &j, &cfg, &mut rng);
            surrogate_value(&model, &data, &j, &cfg, &out.delta)
        };
        let plain = solve(0.0);
        let heavy = solve(0.6);
        assert!(
            heavy <= plain + 1e-3,
            "momentum should not slow the solve: plain {plain} vs momentum {heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_rejected() {
        let (model, data) = setup();
        let j = model.params().zeros_like();
        let cfg = DaneConfig { momentum: 1.0, ..Default::default() };
        let _ = local_update(&model, &data, &j, &cfg, &mut rng_for(0, 0));
    }

    #[test]
    fn observed_update_matches_plain_and_records_metrics() {
        let (model, data) = setup();
        let (x, y) = (data.features.clone(), data.one_hot_labels());
        let (_, j) = model.loss_and_grad(&x, &y);
        let cfg = DaneConfig { local_steps: 4, ..Default::default() };
        let plain = local_update(&model, &data, &j, &cfg, &mut rng_for(9, 0));
        let (tel, _handle) = Telemetry::in_memory();
        let observed = local_update_observed(&model, &data, &j, &cfg, &mut rng_for(9, 0), &tel);
        // Instrumentation must not change the numerics.
        assert_eq!(observed.delta, plain.delta);
        assert_eq!(observed.eta_hat, plain.eta_hat);
        assert_eq!(tel.counter("ml.local_updates").value(), 1);
        assert_eq!(tel.counter("ml.local_steps").value(), 4);
        assert_eq!(tel.histogram("ml.eta_hat").count(), 1);
        assert_eq!(tel.histogram("ml.local_loss").count(), 1);
        assert_eq!(tel.histogram("ml.solve_secs").count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty working set")]
    fn empty_data_rejected() {
        let (model, data) = setup();
        let empty = data.subset(&[]);
        let j = model.params().zeros_like();
        let _ = local_update(&model, &empty, &j, &DaneConfig::default(), &mut rng_for(0, 0));
    }
}
