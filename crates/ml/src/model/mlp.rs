//! Fully connected ReLU network of arbitrary depth.

use fedl_linalg::rng::Rng;
use fedl_linalg::{ops, Matrix};

use crate::loss::{cross_entropy_scratch, cross_entropy_with_grad_into};
use crate::params::ParamSet;

use super::{check_shapes, Model, ModelScratch};

/// Multi-layer perceptron: `x → [Linear → ReLU]* → Linear → logits`,
/// cross-entropy loss, L2 regularization on all weight matrices.
///
/// This is the reproduction's substitute for the paper's two small CNNs
/// (DESIGN.md §2): it exercises exactly the same federated code path
/// (non-convex local loss, SGD surrogate solves, direction upload,
/// server averaging) at a fraction of the implementation and runtime
/// cost. Parameter layout inside the [`ParamSet`]:
/// `[W₁, b₁, W₂, b₂, …]`.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: ParamSet,
    layer_dims: Vec<usize>, // [input, hidden..., classes]
    l2: f32,
}

impl Mlp {
    /// Builds an MLP with the given hidden widths; `hidden` may be empty,
    /// in which case the model degenerates to (randomly initialized)
    /// softmax regression.
    pub fn new(
        input_dim: usize,
        hidden: &[usize],
        classes: usize,
        l2: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(input_dim > 0 && classes >= 2, "bad architecture");
        assert!(hidden.iter().all(|&h| h > 0), "zero-width hidden layer");
        assert!(l2 >= 0.0, "negative regularization");
        let mut layer_dims = Vec::with_capacity(hidden.len() + 2);
        layer_dims.push(input_dim);
        layer_dims.extend_from_slice(hidden);
        layer_dims.push(classes);

        let mut tensors = Vec::with_capacity(2 * (layer_dims.len() - 1));
        for w in layer_dims.windows(2) {
            tensors.push(Matrix::glorot(w[0], w[1], rng));
            tensors.push(Matrix::zeros(1, w[1]));
        }
        Self { params: ParamSet::new(tensors), layer_dims, l2 }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layer_dims.len() - 1
    }

    /// Layer widths including input and output.
    pub fn layer_dims(&self) -> &[usize] {
        &self.layer_dims
    }

    fn weight(&self, layer: usize) -> &Matrix {
        &self.params.tensors()[2 * layer]
    }

    fn bias(&self, layer: usize) -> &Matrix {
        &self.params.tensors()[2 * layer + 1]
    }

    fn l2_term(&self) -> f32 {
        let w_norm: f32 = (0..self.depth()).map(|l| self.weight(l).norm_sq()).sum();
        0.5 * self.l2 * w_norm
    }

    /// Forward pass caching pre-activations (needed by backprop) into the
    /// workspace without allocating: `ws.pres[l]` is layer `l`'s linear
    /// output and `ws.acts[l]` its activation (`ws.acts[depth-1]` is the
    /// logits; the input itself is never copied).
    fn forward_scratch(&self, x: &Matrix, ws: &mut ModelScratch) {
        assert_eq!(x.cols(), self.layer_dims[0], "input dimension mismatch");
        let depth = self.depth();
        ws.acts.resize_with(depth, Matrix::default);
        ws.pres.resize_with(depth, Matrix::default);
        let (acts, pres) = (&mut ws.acts, &mut ws.pres);
        for l in 0..depth {
            {
                let input: &Matrix = if l == 0 { x } else { &acts[l - 1] };
                input.matmul_into(self.weight(l), &mut pres[l]);
            }
            ops::add_row_broadcast(&mut pres[l], self.bias(l));
            if l + 1 < depth {
                ops::relu_into(&pres[l], &mut acts[l]);
            } else {
                acts[l].copy_from(&pres[l]);
            }
        }
    }
}

impl Model for Mlp {
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut ws = ModelScratch::new();
        self.forward_scratch(x, &mut ws);
        ws.acts.pop().expect("at least one layer")
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn set_params(&mut self, params: ParamSet) {
        check_shapes(&self.params, &params);
        self.params = params;
    }

    fn set_params_from(&mut self, params: &ParamSet) {
        check_shapes(&self.params, params);
        self.params.copy_from(params);
    }

    fn loss_and_grad(&self, x: &Matrix, y: &Matrix) -> (f32, ParamSet) {
        let mut grad = ParamSet::new(Vec::new());
        let loss = self.loss_and_grad_scratch(x, y, &mut grad, &mut ModelScratch::new());
        (loss, grad)
    }

    fn loss(&self, x: &Matrix, y: &Matrix) -> f32 {
        self.loss_scratch(x, y, &mut ModelScratch::new())
    }

    fn loss_and_grad_scratch(
        &self,
        x: &Matrix,
        y: &Matrix,
        grad: &mut ParamSet,
        ws: &mut ModelScratch,
    ) -> f32 {
        let depth = self.depth();
        self.forward_scratch(x, ws);
        let ce = cross_entropy_with_grad_into(&ws.acts[depth - 1], y, &mut ws.lse, &mut ws.delta);

        grad.set_zeros_like(&self.params);
        for l in (0..depth).rev() {
            // dW_l = a_lᵀ · delta + l2·W_l ; db_l = col sums of delta.
            {
                let a_l: &Matrix = if l == 0 { x } else { &ws.acts[l - 1] };
                a_l.t_matmul_into(&ws.delta, &mut grad.tensors_mut()[2 * l]);
            }
            grad.tensors_mut()[2 * l].axpy(self.l2, self.weight(l));
            ws.delta.col_sums_into(&mut grad.tensors_mut()[2 * l + 1]);
            if l > 0 {
                // delta_{l-1} = (delta · W_lᵀ) ⊙ relu'(z_{l-1}).
                ws.delta.matmul_t_into(self.weight(l), &mut ws.upstream);
                ops::relu_backward_inplace(&mut ws.upstream, &ws.pres[l - 1]);
                std::mem::swap(&mut ws.delta, &mut ws.upstream);
            }
        }
        ce + self.l2_term()
    }

    fn loss_scratch(&self, x: &Matrix, y: &Matrix, ws: &mut ModelScratch) -> f32 {
        let depth = self.depth();
        self.forward_scratch(x, ws);
        cross_entropy_scratch(&ws.acts[depth - 1], y, &mut ws.lse) + self.l2_term()
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn input_dim(&self) -> usize {
        self.layer_dims[0]
    }

    fn num_classes(&self) -> usize {
        *self.layer_dims.last().expect("non-empty dims")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::gradient_check;
    use fedl_linalg::rng::rng_for;

    fn batch(classes: usize) -> (Matrix, Matrix) {
        let mut rng = rng_for(11, 0);
        let x = Matrix::uniform(8, 5, 1.0, &mut rng);
        let mut y = Matrix::zeros(8, classes);
        for r in 0..8 {
            y.set(r, r % classes, 1.0);
        }
        (x, y)
    }

    #[test]
    fn gradient_check_one_hidden_layer() {
        let (x, y) = batch(3);
        let mut rng = rng_for(1, 1);
        let mut m = Mlp::new(5, &[7], 3, 0.01, &mut rng);
        gradient_check(&mut m, &x, &y);
    }

    #[test]
    fn gradient_check_two_hidden_layers() {
        let (x, y) = batch(4);
        let mut rng = rng_for(2, 1);
        let mut m = Mlp::new(5, &[6, 5], 4, 0.05, &mut rng);
        gradient_check(&mut m, &x, &y);
    }

    #[test]
    fn gradient_check_no_hidden_layer() {
        let (x, y) = batch(3);
        let mut rng = rng_for(3, 1);
        let mut m = Mlp::new(5, &[], 3, 0.0, &mut rng);
        gradient_check(&mut m, &x, &y);
    }

    #[test]
    fn training_fits_a_small_batch() {
        let (x, y) = batch(3);
        let mut rng = rng_for(4, 1);
        let mut m = Mlp::new(5, &[16], 3, 0.0, &mut rng);
        let before = m.loss(&x, &y);
        for _ in 0..300 {
            let (_, g) = m.loss_and_grad(&x, &y);
            let p = m.params().added(-0.5, &g);
            m.set_params(p);
        }
        let after = m.loss(&x, &y);
        assert!(after < 0.05, "loss {before} -> {after}: failed to overfit 8 samples");
    }

    #[test]
    fn architecture_accessors() {
        let mut rng = rng_for(5, 1);
        let m = Mlp::new(10, &[8, 6], 4, 0.0, &mut rng);
        assert_eq!(m.depth(), 3);
        assert_eq!(m.layer_dims(), &[10, 8, 6, 4]);
        assert_eq!(m.input_dim(), 10);
        assert_eq!(m.num_classes(), 4);
        assert_eq!(m.params().len(), 6);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let a = Mlp::new(4, &[3], 2, 0.0, &mut rng_for(7, 1));
        let b = Mlp::new(4, &[3], 2, 0.0, &mut rng_for(7, 1));
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn rejects_zero_width_layer() {
        let _ = Mlp::new(4, &[0], 2, 0.0, &mut rng_for(8, 1));
    }
}
