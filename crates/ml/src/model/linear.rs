//! Multinomial softmax regression.

use fedl_linalg::rng::Rng;
use fedl_linalg::{ops, Matrix};

use crate::loss::{cross_entropy_scratch, cross_entropy_with_grad_into};
use crate::params::ParamSet;

use super::{check_shapes, Model, ModelScratch};

/// Linear classifier `logits = x·W + b` with cross-entropy loss and L2
/// regularization on `W`.
///
/// With `l2 > 0` the loss is γ-strongly convex (γ = `l2`), so this model
/// satisfies the paper's convergence assumptions *exactly* — it is the
/// reference model for the theory-validation experiments, while [`super::Mlp`]
/// plays the role of the paper's CNNs in the headline figures.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    params: ParamSet, // [W (dim x classes), b (1 x classes)]
    input_dim: usize,
    classes: usize,
    l2: f32,
}

impl SoftmaxRegression {
    /// Creates a zero-initialized model (the symmetric start is fine for
    /// a convex loss).
    pub fn new(input_dim: usize, classes: usize, l2: f32) -> Self {
        assert!(input_dim > 0 && classes >= 2, "bad architecture");
        assert!(l2 >= 0.0, "negative regularization");
        let params =
            ParamSet::new(vec![Matrix::zeros(input_dim, classes), Matrix::zeros(1, classes)]);
        Self { params, input_dim, classes, l2 }
    }

    /// Creates a randomly initialized model (useful when several clients
    /// should start from distinct points).
    pub fn new_random(input_dim: usize, classes: usize, l2: f32, rng: &mut impl Rng) -> Self {
        let mut model = Self::new(input_dim, classes, l2);
        model.params =
            ParamSet::new(vec![Matrix::glorot(input_dim, classes, rng), Matrix::zeros(1, classes)]);
        model
    }

    /// L2 coefficient.
    pub fn l2(&self) -> f32 {
        self.l2
    }

    fn weights(&self) -> &Matrix {
        &self.params.tensors()[0]
    }

    fn bias(&self) -> &Matrix {
        &self.params.tensors()[1]
    }

    fn l2_term(&self) -> f32 {
        0.5 * self.l2 * self.weights().norm_sq()
    }

    /// Logits into `ws.acts[0]` without allocating.
    fn forward_scratch(&self, x: &Matrix, ws: &mut ModelScratch) {
        assert_eq!(x.cols(), self.input_dim, "input dimension mismatch");
        ws.acts.resize_with(1, Matrix::default);
        let logits = &mut ws.acts[0];
        x.matmul_into(self.weights(), logits);
        ops::add_row_broadcast(logits, self.bias());
    }
}

impl Model for SoftmaxRegression {
    fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "input dimension mismatch");
        let mut logits = x.matmul(self.weights());
        ops::add_row_broadcast(&mut logits, self.bias());
        logits
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn set_params(&mut self, params: ParamSet) {
        check_shapes(&self.params, &params);
        self.params = params;
    }

    fn set_params_from(&mut self, params: &ParamSet) {
        check_shapes(&self.params, params);
        self.params.copy_from(params);
    }

    fn loss_and_grad(&self, x: &Matrix, y: &Matrix) -> (f32, ParamSet) {
        let mut grad = ParamSet::new(Vec::new());
        let loss = self.loss_and_grad_scratch(x, y, &mut grad, &mut ModelScratch::new());
        (loss, grad)
    }

    fn loss(&self, x: &Matrix, y: &Matrix) -> f32 {
        self.loss_scratch(x, y, &mut ModelScratch::new())
    }

    fn loss_and_grad_scratch(
        &self,
        x: &Matrix,
        y: &Matrix,
        grad: &mut ParamSet,
        ws: &mut ModelScratch,
    ) -> f32 {
        self.forward_scratch(x, ws);
        let ce = cross_entropy_with_grad_into(&ws.acts[0], y, &mut ws.lse, &mut ws.delta);
        // dW = xᵀ·dlogits + l2·W ; db = column sums of dlogits.
        grad.set_zeros_like(&self.params);
        let tensors = grad.tensors_mut();
        x.t_matmul_into(&ws.delta, &mut tensors[0]);
        tensors[0].axpy(self.l2, self.weights());
        ws.delta.col_sums_into(&mut tensors[1]);
        ce + self.l2_term()
    }

    fn loss_scratch(&self, x: &Matrix, y: &Matrix, ws: &mut ModelScratch) -> f32 {
        self.forward_scratch(x, ws);
        cross_entropy_scratch(&ws.acts[0], y, &mut ws.lse) + self.l2_term()
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::gradient_check;
    use fedl_linalg::rng::rng_for;

    fn batch() -> (Matrix, Matrix) {
        let mut rng = rng_for(3, 0);
        let x = Matrix::uniform(6, 4, 1.0, &mut rng);
        let mut y = Matrix::zeros(6, 3);
        for r in 0..6 {
            y.set(r, r % 3, 1.0);
        }
        (x, y)
    }

    #[test]
    fn gradient_check_zero_init() {
        let (x, y) = batch();
        let mut m = SoftmaxRegression::new(4, 3, 0.01);
        gradient_check(&mut m, &x, &y);
    }

    #[test]
    fn gradient_check_random_init() {
        let (x, y) = batch();
        let mut rng = rng_for(5, 0);
        let mut m = SoftmaxRegression::new_random(4, 3, 0.1, &mut rng);
        gradient_check(&mut m, &x, &y);
    }

    #[test]
    fn descent_reduces_loss() {
        let (x, y) = batch();
        let mut m = SoftmaxRegression::new(4, 3, 0.01);
        let before = m.loss(&x, &y);
        for _ in 0..50 {
            let (_, g) = m.loss_and_grad(&x, &y);
            let p = m.params().added(-0.5, &g);
            m.set_params(p);
        }
        let after = m.loss(&x, &y);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn l2_pulls_weights_toward_zero() {
        let (x, y) = batch();
        let train = |l2: f32| {
            let mut m = SoftmaxRegression::new(4, 3, l2);
            for _ in 0..200 {
                let (_, g) = m.loss_and_grad(&x, &y);
                let p = m.params().added(-0.3, &g);
                m.set_params(p);
            }
            m.params().tensors()[0].norm()
        };
        assert!(train(1.0) < train(0.001));
    }

    #[test]
    fn forward_shape() {
        let m = SoftmaxRegression::new(4, 3, 0.0);
        let x = Matrix::zeros(5, 4);
        assert_eq!(m.forward(&x).shape(), (5, 3));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_params_rejects_wrong_shape() {
        let mut m = SoftmaxRegression::new(4, 3, 0.0);
        m.set_params(ParamSet::new(vec![Matrix::zeros(2, 3), Matrix::zeros(1, 3)]));
    }

    #[test]
    fn boxed_clone_is_independent() {
        let m = SoftmaxRegression::new(2, 2, 0.0);
        let mut b: Box<dyn Model> = m.clone_model();
        let p = b.params().added(1.0, &b.params().clone());
        b.set_params(p);
        assert_eq!(m.params().norm(), 0.0);
        assert_eq!(b.params().norm(), 0.0); // zero + zero is still zero
    }
}
