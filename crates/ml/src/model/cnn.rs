//! Convolutional network with hand-derived backprop.
//!
//! The paper's models are two small CNNs (§6.1): 5×5 convolutions, max
//! pooling, fully connected heads. This module implements that model
//! family from scratch on top of the crate's GEMM:
//!
//! * convolution is evaluated as a matrix product over an *im2col* patch
//!   matrix (the standard reduction; it reuses the thread-pooled GEMM in `fedl-linalg`);
//! * max-pooling records argmax indices on the forward pass and
//!   scatters gradients back through them;
//! * the fully connected head shares the MLP's backprop algebra.
//!
//! Layout conventions: every sample is a row holding a channel-planar
//! image (`c · h · w` values, channel-major), matching the CIFAR binary
//! format and the flattened IDX images.

use fedl_linalg::rng::Rng;
use fedl_linalg::{ops, Matrix};

use crate::loss::{cross_entropy, cross_entropy_with_grad};
use crate::params::ParamSet;

use super::{check_shapes, Model};

/// Spatial shape of a feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl MapShape {
    /// Flattened length of one sample.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// `true` when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn after_conv(&self, kernel: usize, out_c: usize) -> MapShape {
        assert!(
            self.h >= kernel && self.w >= kernel,
            "kernel {kernel} exceeds map {}x{}",
            self.h,
            self.w
        );
        MapShape { c: out_c, h: self.h - kernel + 1, w: self.w - kernel + 1 }
    }

    fn after_pool(&self) -> MapShape {
        MapShape { c: self.c, h: self.h / 2, w: self.w / 2 }
    }
}

/// Unfolds a batch of channel-planar images into the im2col patch
/// matrix: one row per (sample, output position), one column per
/// (input channel, kernel row, kernel col). Valid convolution, stride 1.
pub fn im2col(x: &Matrix, shape: MapShape, kernel: usize) -> Matrix {
    assert_eq!(x.cols(), shape.len(), "image width mismatch");
    let out = shape.after_conv(kernel, 1);
    let (oh, ow) = (out.h, out.w);
    let cols = shape.c * kernel * kernel;
    let mut patches = Matrix::zeros(x.rows() * oh * ow, cols);
    for s in 0..x.rows() {
        let img = x.row(s);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = patches.row_mut(s * oh * ow + oy * ow + ox);
                let mut col = 0;
                for c in 0..shape.c {
                    let plane = &img[c * shape.h * shape.w..(c + 1) * shape.h * shape.w];
                    for ky in 0..kernel {
                        let base = (oy + ky) * shape.w + ox;
                        row[col..col + kernel].copy_from_slice(&plane[base..base + kernel]);
                        col += kernel;
                    }
                }
            }
        }
    }
    patches
}

/// Folds patch-matrix gradients back into image gradients — the adjoint
/// of [`im2col`] (overlapping patches accumulate).
pub fn col2im(dpatches: &Matrix, shape: MapShape, kernel: usize, batch: usize) -> Matrix {
    let out = shape.after_conv(kernel, 1);
    let (oh, ow) = (out.h, out.w);
    assert_eq!(dpatches.rows(), batch * oh * ow, "patch row mismatch");
    assert_eq!(dpatches.cols(), shape.c * kernel * kernel, "patch col mismatch");
    let mut dx = Matrix::zeros(batch, shape.len());
    for s in 0..batch {
        let img = dx.row_mut(s);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = dpatches.row(s * oh * ow + oy * ow + ox);
                let mut col = 0;
                for c in 0..shape.c {
                    let plane_base = c * shape.h * shape.w;
                    for ky in 0..kernel {
                        let base = plane_base + (oy + ky) * shape.w + ox;
                        for kx in 0..kernel {
                            img[base + kx] += row[col + kx];
                        }
                        col += kernel;
                    }
                }
            }
        }
    }
    dx
}

/// 2×2 max-pool (stride 2) over channel-planar rows. Returns the pooled
/// batch and the flat argmax index (into each input row) per pooled
/// element.
pub fn maxpool2(x: &Matrix, shape: MapShape) -> (Matrix, Vec<usize>) {
    assert_eq!(x.cols(), shape.len(), "image width mismatch");
    let out = shape.after_pool();
    let mut pooled = Matrix::zeros(x.rows(), out.len());
    let mut argmax = vec![0usize; x.rows() * out.len()];
    for s in 0..x.rows() {
        let img = x.row(s);
        for c in 0..shape.c {
            let plane = c * shape.h * shape.w;
            for py in 0..out.h {
                for px in 0..out.w {
                    let mut best_idx = plane + (2 * py) * shape.w + 2 * px;
                    let mut best = img[best_idx];
                    for (dy, dx_) in [(0, 1), (1, 0), (1, 1)] {
                        let idx = plane + (2 * py + dy) * shape.w + 2 * px + dx_;
                        if img[idx] > best {
                            best = img[idx];
                            best_idx = idx;
                        }
                    }
                    let o = c * out.h * out.w + py * out.w + px;
                    pooled.set(s, o, best);
                    argmax[s * out.len() + o] = best_idx;
                }
            }
        }
    }
    (pooled, argmax)
}

/// Scatters pooled-gradient rows back through the recorded argmaxes —
/// the adjoint of [`maxpool2`].
pub fn maxpool2_backward(dpooled: &Matrix, argmax: &[usize], shape: MapShape) -> Matrix {
    let out = shape.after_pool();
    assert_eq!(dpooled.cols(), out.len(), "pooled width mismatch");
    assert_eq!(argmax.len(), dpooled.rows() * out.len(), "argmax length mismatch");
    let mut dx = Matrix::zeros(dpooled.rows(), shape.len());
    for s in 0..dpooled.rows() {
        let drow = dpooled.row(s);
        let dst = dx.row_mut(s);
        for (o, &g) in drow.iter().enumerate() {
            dst[argmax[s * out.len() + o]] += g;
        }
    }
    dx
}

/// One convolution block: `conv(k×k) → ReLU → maxpool(2×2)`.
#[derive(Debug, Clone, Copy)]
pub struct ConvBlockSpec {
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size (paper: 5).
    pub kernel: usize,
}

/// A small CNN: a stack of [`ConvBlockSpec`] blocks followed by a fully
/// connected softmax head — the architecture family of the paper's two
/// models.
#[derive(Debug, Clone)]
pub struct Cnn {
    params: ParamSet, // [convW, convB]* then [fcW, fcB]
    input: MapShape,
    blocks: Vec<ConvBlockSpec>,
    /// Feature-map shape entering each block (cached at construction).
    block_inputs: Vec<MapShape>,
    flat_dim: usize,
    classes: usize,
    l2: f32,
}

impl Cnn {
    /// Builds the network for `input`-shaped samples.
    ///
    /// # Panics
    /// Panics if any block's kernel exceeds its incoming map or a pooled
    /// map vanishes.
    pub fn new(
        input: MapShape,
        blocks: Vec<ConvBlockSpec>,
        classes: usize,
        l2: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!input.is_empty(), "empty input shape");
        assert!(classes >= 2, "need at least two classes");
        assert!(l2 >= 0.0, "negative regularization");
        let mut tensors = Vec::new();
        let mut shape = input;
        let mut block_inputs = Vec::with_capacity(blocks.len());
        for b in &blocks {
            assert!(b.out_channels > 0 && b.kernel > 0, "degenerate block");
            block_inputs.push(shape);
            let fan_in = shape.c * b.kernel * b.kernel;
            tensors.push(Matrix::glorot(b.out_channels, fan_in, rng));
            tensors.push(Matrix::zeros(1, b.out_channels));
            shape = shape.after_conv(b.kernel, b.out_channels).after_pool();
            assert!(!shape.is_empty(), "feature map vanished after block");
        }
        let flat_dim = shape.len();
        tensors.push(Matrix::glorot(flat_dim, classes, rng));
        tensors.push(Matrix::zeros(1, classes));
        Self { params: ParamSet::new(tensors), input, blocks, block_inputs, flat_dim, classes, l2 }
    }

    /// The input map shape.
    pub fn input_shape(&self) -> MapShape {
        self.input
    }

    /// Flattened feature dimension entering the FC head.
    pub fn flat_dim(&self) -> usize {
        self.flat_dim
    }

    fn conv_w(&self, b: usize) -> &Matrix {
        &self.params.tensors()[2 * b]
    }

    fn conv_b(&self, b: usize) -> &Matrix {
        &self.params.tensors()[2 * b + 1]
    }

    fn fc_w(&self) -> &Matrix {
        &self.params.tensors()[2 * self.blocks.len()]
    }

    fn fc_b(&self) -> &Matrix {
        &self.params.tensors()[2 * self.blocks.len() + 1]
    }

    fn l2_term(&self) -> f32 {
        let mut acc = self.fc_w().norm_sq();
        for b in 0..self.blocks.len() {
            acc += self.conv_w(b).norm_sq();
        }
        0.5 * self.l2 * acc
    }

    /// Rearranges conv output from patch-row layout
    /// (`n·oh·ow × out_c`) into channel-planar rows (`n × out_c·oh·ow`).
    fn to_planar(y: &Matrix, batch: usize, out: MapShape) -> Matrix {
        let spatial = out.h * out.w;
        let mut planar = Matrix::zeros(batch, out.len());
        for s in 0..batch {
            let dst = planar.row_mut(s);
            for p in 0..spatial {
                let src = y.row(s * spatial + p);
                for (c, &v) in src.iter().enumerate() {
                    dst[c * spatial + p] = v;
                }
            }
        }
        planar
    }

    /// Adjoint of [`Cnn::to_planar`].
    fn from_planar(dplanar: &Matrix, batch: usize, out: MapShape) -> Matrix {
        let spatial = out.h * out.w;
        let mut y = Matrix::zeros(batch * spatial, out.c);
        for s in 0..batch {
            let src = dplanar.row(s);
            for p in 0..spatial {
                let dst = y.row_mut(s * spatial + p);
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = src[c * spatial + p];
                }
            }
        }
        y
    }

    /// Full forward pass with everything backprop needs.
    #[allow(clippy::type_complexity)]
    fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<(Matrix, Matrix, Vec<usize>)>, Matrix) {
        assert_eq!(x.cols(), self.input.len(), "input dimension mismatch");
        let batch = x.rows();
        // Per block: (patches, pre-activation planar, pool argmax).
        let mut caches = Vec::with_capacity(self.blocks.len());
        let mut cur = x.clone();
        for (b, spec) in self.blocks.iter().enumerate() {
            let shape = self.block_inputs[b];
            let patches = im2col(&cur, shape, spec.kernel);
            let mut y = patches.matmul_t(self.conv_w(b)); // n·oh·ow × out_c
            ops::add_row_broadcast(&mut y, self.conv_b(b));
            let conv_out = shape.after_conv(spec.kernel, spec.out_channels);
            let planar = Self::to_planar(&y, batch, conv_out);
            let activated = ops::relu(&planar);
            let (pooled, argmax) = maxpool2(&activated, conv_out);
            caches.push((patches, planar, argmax));
            cur = pooled;
        }
        let mut logits = cur.matmul(self.fc_w());
        ops::add_row_broadcast(&mut logits, self.fc_b());
        (cur, caches, logits)
    }
}

impl Model for Cnn {
    fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).2
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn set_params(&mut self, params: ParamSet) {
        check_shapes(&self.params, &params);
        self.params = params;
    }

    fn loss_and_grad(&self, x: &Matrix, y: &Matrix) -> (f32, ParamSet) {
        let batch = x.rows();
        let (flat, caches, logits) = self.forward_cached(x);
        let (ce, dlogits) = cross_entropy_with_grad(&logits, y);

        // FC head.
        let mut dfc_w = flat.t_matmul(&dlogits);
        dfc_w.axpy(self.l2, self.fc_w());
        let dfc_b = dlogits.col_sums();
        let mut dcur = dlogits.matmul_t(self.fc_w()); // grad wrt pooled planar

        // Blocks in reverse.
        let mut conv_grads: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.blocks.len());
        for (b, spec) in self.blocks.iter().enumerate().rev() {
            let shape = self.block_inputs[b];
            let conv_out = shape.after_conv(spec.kernel, spec.out_channels);
            let (patches, pre_planar, argmax) = &caches[b];
            // Through the pool, then the ReLU.
            let dact = maxpool2_backward(&dcur, argmax, conv_out);
            let dplanar = dact.hadamard(&ops::relu_grad_mask(pre_planar));
            // Back to patch-row layout.
            let dy = Self::from_planar(&dplanar, batch, conv_out); // n·oh·ow × out_c
            let mut dw = dy.t_matmul(patches); // out_c × fan_in
            dw.axpy(self.l2, self.conv_w(b));
            let db = dy.col_sums();
            conv_grads.push((dw, db));
            if b > 0 {
                let dpatches = dy.matmul(self.conv_w(b)); // n·oh·ow × fan_in
                dcur = col2im(&dpatches, shape, spec.kernel, batch);
            }
        }
        conv_grads.reverse();
        let mut tensors = Vec::with_capacity(self.params.len());
        for (dw, db) in conv_grads {
            tensors.push(dw);
            tensors.push(db);
        }
        tensors.push(dfc_w);
        tensors.push(dfc_b);
        (ce + self.l2_term(), ParamSet::new(tensors))
    }

    fn loss(&self, x: &Matrix, y: &Matrix) -> f32 {
        cross_entropy(&self.forward(x), y) + self.l2_term()
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn input_dim(&self) -> usize {
        self.input.len()
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::gradient_check;
    use fedl_linalg::rng::rng_for;

    fn small_shape() -> MapShape {
        MapShape { c: 1, h: 8, w: 8 }
    }

    fn batch(shape: MapShape, n: usize, classes: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = rng_for(seed, 0xC44);
        let x = Matrix::uniform(n, shape.len(), 0.5, &mut rng);
        let mut y = Matrix::zeros(n, classes);
        for r in 0..n {
            y.set(r, r % classes, 1.0);
        }
        (x, y)
    }

    #[test]
    fn im2col_known_values() {
        // 1x3x3 image, k=2: four 2x2 patches.
        let shape = MapShape { c: 1, h: 3, w: 3 };
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f32).collect());
        let p = im2col(&x, shape, 2);
        assert_eq!(p.shape(), (4, 4));
        assert_eq!(p.row(0), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(p.row(1), &[2.0, 3.0, 5.0, 6.0]);
        assert_eq!(p.row(2), &[4.0, 5.0, 7.0, 8.0]);
        assert_eq!(p.row(3), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), P> == <x, col2im(P)> for random x, P.
        let shape = MapShape { c: 2, h: 5, w: 4 };
        let mut rng = rng_for(2, 0);
        let x = Matrix::uniform(3, shape.len(), 1.0, &mut rng);
        let patches = im2col(&x, shape, 3);
        let p = Matrix::uniform(patches.rows(), patches.cols(), 1.0, &mut rng);
        let lhs = patches.dot(&p);
        let folded = col2im(&p, shape, 3, 3);
        let rhs = x.dot(&folded);
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_picks_maxima_and_routes_gradients() {
        let shape = MapShape { c: 1, h: 2, w: 4 };
        let x = Matrix::from_vec(1, 8, vec![1.0, 5.0, 2.0, 1.0, 3.0, 0.0, 8.0, 1.0]);
        let (pooled, argmax) = maxpool2(&x, shape);
        assert_eq!(pooled.as_slice(), &[5.0, 8.0]);
        let dp = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        let dx = maxpool2_backward(&dp, &argmax, shape);
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 20.0, 0.0]);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = rng_for(3, 0);
        let cnn = Cnn::new(
            small_shape(),
            vec![ConvBlockSpec { out_channels: 4, kernel: 3 }],
            5,
            0.0,
            &mut rng,
        );
        // 8x8 -> conv3 -> 6x6 -> pool -> 3x3, 4 channels = 36 flat.
        assert_eq!(cnn.flat_dim(), 36);
        let (x, _) = batch(small_shape(), 2, 5, 1);
        assert_eq!(cnn.forward(&x).shape(), (2, 5));
    }

    #[test]
    fn gradient_check_single_block() {
        let mut rng = rng_for(4, 0);
        let mut cnn = Cnn::new(
            small_shape(),
            vec![ConvBlockSpec { out_channels: 3, kernel: 3 }],
            4,
            0.01,
            &mut rng,
        );
        let (x, y) = batch(small_shape(), 4, 4, 2);
        gradient_check(&mut cnn, &x, &y);
    }

    #[test]
    fn gradient_check_two_blocks_multichannel() {
        let shape = MapShape { c: 2, h: 10, w: 10 };
        let mut rng = rng_for(5, 0);
        let mut cnn = Cnn::new(
            shape,
            vec![
                ConvBlockSpec { out_channels: 3, kernel: 3 },
                ConvBlockSpec { out_channels: 4, kernel: 2 },
            ],
            3,
            0.005,
            &mut rng,
        );
        let (x, y) = batch(shape, 3, 3, 3);
        gradient_check(&mut cnn, &x, &y);
    }

    #[test]
    fn cnn_overfits_a_tiny_batch() {
        let mut rng = rng_for(6, 0);
        let mut cnn = Cnn::new(
            small_shape(),
            vec![ConvBlockSpec { out_channels: 4, kernel: 3 }],
            3,
            0.0,
            &mut rng,
        );
        let (x, y) = batch(small_shape(), 6, 3, 4);
        let before = cnn.loss(&x, &y);
        for _ in 0..200 {
            let (_, g) = cnn.loss_and_grad(&x, &y);
            let p = cnn.params().added(-0.3, &g);
            cnn.set_params(p);
        }
        let after = cnn.loss(&x, &y);
        assert!(after < 0.1, "CNN failed to overfit: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_rejected() {
        let mut rng = rng_for(7, 0);
        let _ = Cnn::new(
            MapShape { c: 1, h: 4, w: 4 },
            vec![ConvBlockSpec { out_channels: 2, kernel: 5 }],
            3,
            0.0,
            &mut rng,
        );
    }
}
