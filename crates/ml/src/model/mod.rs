//! Models with hand-derived backprop.

mod cnn;
mod linear;
mod mlp;

pub use cnn::{Cnn, ConvBlockSpec, MapShape};
pub use linear::SoftmaxRegression;
pub use mlp::Mlp;

use fedl_linalg::Matrix;

use crate::params::ParamSet;

/// Reusable forward/backward workspace for the `_scratch` model methods.
///
/// Holds every intermediate a model's loss/gradient computation needs
/// (logits, per-layer activations and pre-activations, the backprop
/// delta, the log-sum-exp buffer). All buffers grow to the workload's
/// high-water mark and are then reused, so a steady-state training step
/// performs zero heap allocation. One scratch serves any model and any
/// batch size; buffers reshape on use.
#[derive(Debug, Default)]
pub struct ModelScratch {
    /// Log-sum-exp per row (cross-entropy).
    pub(crate) lse: Vec<f32>,
    /// Loss gradient w.r.t. the current layer's output during backprop.
    pub(crate) delta: Matrix,
    /// Ping-pong buffer for the next backprop delta.
    pub(crate) upstream: Matrix,
    /// `acts[l]`: activation after layer `l` (`acts[depth-1]` = logits).
    pub(crate) acts: Vec<Matrix>,
    /// `pres[l]`: layer `l`'s linear output before the nonlinearity.
    pub(crate) pres: Vec<Matrix>,
}

impl ModelScratch {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An object-safe trainable classifier.
///
/// The federated machinery only ever needs four things from a model:
/// score a batch, read/replace its parameters as a [`ParamSet`], and
/// compute loss+gradient on a batch. The gradient includes the model's
/// own L2 regularization term, which is what gives the per-client loss
/// the γ-strong convexity the paper assumes for its convergence bounds
/// (exactly true for [`SoftmaxRegression`], a standard idealization for
/// the MLP).
pub trait Model: Send + Sync {
    /// Class logits for a batch (`batch x classes`).
    fn forward(&self, x: &Matrix) -> Matrix;

    /// Current parameters.
    fn params(&self) -> &ParamSet;

    /// Replaces the parameters.
    ///
    /// # Panics
    /// Implementations panic if the shapes don't match the architecture.
    fn set_params(&mut self, params: ParamSet);

    /// Regularized loss and gradient on a batch of features `x` and
    /// one-hot targets `y`.
    fn loss_and_grad(&self, x: &Matrix, y: &Matrix) -> (f32, ParamSet);

    /// Regularized loss only (cheaper: skips the backward pass).
    fn loss(&self, x: &Matrix, y: &Matrix) -> f32;

    /// [`Model::loss_and_grad`] writing the gradient into a caller-owned
    /// [`ParamSet`] using a reusable workspace. [`SoftmaxRegression`] and
    /// [`Mlp`] implement their numerics here (zero steady-state
    /// allocation) and derive the allocating form from it, so both paths
    /// are bit-identical by construction. The default delegates the
    /// other way for models without a scratch path (e.g. [`Cnn`]).
    fn loss_and_grad_scratch(
        &self,
        x: &Matrix,
        y: &Matrix,
        grad: &mut ParamSet,
        ws: &mut ModelScratch,
    ) -> f32 {
        let _ = ws;
        let (loss, g) = self.loss_and_grad(x, y);
        *grad = g;
        loss
    }

    /// [`Model::loss`] using a reusable workspace (see
    /// [`Model::loss_and_grad_scratch`]).
    fn loss_scratch(&self, x: &Matrix, y: &Matrix, ws: &mut ModelScratch) -> f32 {
        let _ = ws;
        self.loss(x, y)
    }

    /// Replaces the parameters by copying from a borrowed set, reusing
    /// the model's tensor storage (the allocation-free twin of
    /// [`Model::set_params`]).
    ///
    /// # Panics
    /// Implementations panic if the shapes don't match the architecture.
    fn set_params_from(&mut self, params: &ParamSet) {
        self.set_params(params.clone());
    }

    /// Deep copy behind the trait object.
    fn clone_model(&self) -> Box<dyn Model>;

    /// Input dimensionality.
    fn input_dim(&self) -> usize;

    /// Number of classes.
    fn num_classes(&self) -> usize;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// Validates that a replacement [`ParamSet`] matches the architecture's
/// tensor shapes; shared by `set_params` implementations.
pub(crate) fn check_shapes(current: &ParamSet, incoming: &ParamSet) {
    assert_eq!(current.len(), incoming.len(), "param arity mismatch");
    for (i, (a, b)) in current.tensors().iter().zip(incoming.tensors()).enumerate() {
        assert_eq!(a.shape(), b.shape(), "param tensor {i} shape mismatch");
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use fedl_linalg::approx_eq;

    /// Central finite-difference check of `loss_and_grad` for any model —
    /// the single most load-bearing correctness test in the ML substrate.
    pub fn gradient_check(model: &mut dyn Model, x: &Matrix, y: &Matrix) {
        let (_, grad) = model.loss_and_grad(x, y);
        let base = model.params().clone();
        let eps = 2e-3f32;
        for t in 0..base.len() {
            // Probe a handful of coordinates per tensor to keep it fast.
            let len = base.tensors()[t].len();
            let probes = [0, len / 2, len.saturating_sub(1)];
            for &i in &probes {
                let mut plus = base.clone();
                let v = plus.tensors()[t].as_slice()[i];
                plus.tensors_mut()[t].as_mut_slice()[i] = v + eps;
                model.set_params(plus);
                let f_plus = model.loss(x, y);

                let mut minus = base.clone();
                minus.tensors_mut()[t].as_mut_slice()[i] = v - eps;
                model.set_params(minus);
                let f_minus = model.loss(x, y);

                let fd = (f_plus - f_minus) / (2.0 * eps);
                let an = grad.tensors()[t].as_slice()[i];
                assert!(
                    approx_eq(an, fd, 0.05) || (an - fd).abs() < 5e-3,
                    "tensor {t} coord {i}: analytic {an} vs finite-diff {fd}"
                );
            }
        }
        model.set_params(base);
    }
}
