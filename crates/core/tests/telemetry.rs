//! End-to-end telemetry integration: a full runner scenario must emit
//! the complete event set — `run_start`, one `epoch`/`train`/`ledger`
//! triple per executed epoch, phase `span`s, a `metrics` snapshot, and
//! `run_end` — and the disabled handle must leave results untouched.

use fedl_core::runner::{ExperimentRunner, ModelArch, ScenarioConfig};
use fedl_core::PolicyKind;
use fedl_json::Value;
use fedl_telemetry::{RunLog, Telemetry};

fn scenario() -> ScenarioConfig {
    let mut s = ScenarioConfig::small_fmnist(8, 120.0, 2).with_seed(11);
    s.train_size = 600;
    s.test_size = 200;
    s.max_epochs = 40;
    s.model = ModelArch::Linear { l2: 0.001 };
    s.dane.lr = 0.3;
    s
}

fn kind_of(event: &Value) -> &str {
    event.get("kind").unwrap().as_str().unwrap()
}

#[test]
fn full_run_emits_complete_event_stream() {
    let (tel, handle) = Telemetry::in_memory();
    let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedL).with_telemetry(tel);
    let outcome = runner.run();
    assert!(!outcome.epochs.is_empty());

    let events = handle.events().unwrap();
    assert_eq!(kind_of(&events[0]), "run_start", "run_start must lead the log");
    assert_eq!(events[0].get("policy").unwrap().as_str(), Some("FedL"));
    assert_eq!(events[0].get("budget").unwrap().as_f64(), Some(120.0));
    assert_eq!(kind_of(events.last().unwrap()), "metrics");
    assert_eq!(kind_of(&events[events.len() - 2]), "run_end");

    // One select/epoch/train/ledger event per executed epoch.
    let n = outcome.epochs.len();
    for kind in ["select", "epoch", "train", "ledger"] {
        let count = events.iter().filter(|e| kind_of(e) == kind).count();
        assert_eq!(count, n, "expected {n} `{kind}` events");
    }

    // Every select event pairs the cohort with aligned estimates.
    for event in events.iter().filter(|e| kind_of(e) == "select") {
        let cohort = event.get("cohort").unwrap().as_arr().unwrap();
        let estimates = event.get("estimates").unwrap().as_arr().unwrap();
        assert!(!cohort.is_empty());
        assert_eq!(estimates.len(), cohort.len());
    }

    // Every train event attributes rent and latency splits per client.
    for event in events.iter().filter(|e| kind_of(e) == "train") {
        let cohort = event.get("cohort").unwrap().as_arr().unwrap();
        let charged = event.get("charged").unwrap().as_arr().unwrap();
        let costs = event.get("per_client_cost").unwrap().as_arr().unwrap();
        assert!(charged.len() >= cohort.len(), "charged covers dropouts too");
        assert_eq!(costs.len(), charged.len());
        let total: f64 = costs.iter().map(|c| c.as_f64().unwrap()).sum();
        assert!((total - event.get("cost").unwrap().as_f64().unwrap()).abs() < 1e-9);
        let compute = event.get("per_client_compute_secs").unwrap().as_arr().unwrap();
        let upload = event.get("per_client_upload_secs").unwrap().as_arr().unwrap();
        assert_eq!(compute.len(), cohort.len(), "equal-share FDMA has a split");
        assert_eq!(upload.len(), cohort.len());
    }

    // Every epoch event carries the full schema with sane values.
    let mut prev_remaining = f64::INFINITY;
    for event in events.iter().filter(|e| kind_of(e) == "epoch") {
        let cohort = event.get("cohort").unwrap().as_arr().unwrap();
        assert!(!cohort.is_empty());
        let est = event.get("est_iter_latency").unwrap().as_arr().unwrap();
        let realized = event.get("realized_iter_latency").unwrap().as_arr().unwrap();
        let eta = event.get("eta_hats").unwrap().as_arr().unwrap();
        assert_eq!(est.len(), cohort.len());
        assert_eq!(realized.len(), cohort.len());
        assert_eq!(eta.len(), cohort.len());
        for v in est.iter().chain(realized) {
            assert!(v.as_f64().unwrap() > 0.0);
        }
        assert!(event.get("cost").unwrap().as_f64().unwrap() > 0.0);
        let remaining = event.get("budget_remaining").unwrap().as_f64().unwrap();
        assert!(remaining < prev_remaining, "budget must shrink monotonically");
        prev_remaining = remaining;
        // FedL has a regret tracker, so the terms must be finite.
        assert!(event.get("regret").unwrap().as_f64().unwrap().is_finite());
        assert!(event.get("fit").unwrap().as_f64().unwrap().is_finite());
        assert!(event.get("accuracy").unwrap().as_f64().unwrap() >= 0.0);
    }

    // run_end totals agree with the outcome.
    let run_end = &events[events.len() - 2];
    assert_eq!(run_end.get("epochs").unwrap().as_i64(), Some(n as i64));
    assert_eq!(run_end.get("final_accuracy").unwrap().as_f64(), Some(outcome.final_accuracy()));

    // Phase spans: every executed epoch times epoch/select/train/evaluate.
    let log = RunLog::parse(&handle.lines().join("\n"));
    assert!(log
        .missing_kinds(&[
            "run_start",
            "select",
            "epoch",
            "train",
            "ledger",
            "span",
            "metrics",
            "run_end"
        ])
        .is_empty());

    // The dashboard aggregation sees real rent and, for FedL, per-client
    // quality estimates, once the policy has observed a client.
    let usage = log.client_usage();
    assert!(!usage.is_empty());
    assert!(usage.iter().all(|u| u.selections > 0));
    assert!(usage.iter().any(|u| u.payment > 0.0));
    assert!(usage.iter().any(|u| u.total_secs > 0.0));
    assert!(
        usage.iter().any(|u| u.last_estimate.is_some()),
        "FedL must surface η̂ estimates in the select events"
    );
    let stats = log.phase_stats();
    for phase in ["epoch", "select", "train", "evaluate"] {
        let s = stats
            .iter()
            .find(|s| s.name == phase)
            .unwrap_or_else(|| panic!("missing span stats for phase `{phase}`"));
        assert_eq!(s.count, n, "phase `{phase}`");
    }
    // round spans: one per iteration, at least one iteration per epoch.
    let rounds = stats.iter().find(|s| s.name == "round").unwrap();
    assert!(rounds.count >= n);

    // The metrics snapshot aggregates the whole run.
    let metrics = events.last().unwrap().get("registry").unwrap();
    let counters = metrics.get("counters").unwrap();
    assert_eq!(counters.get("budget.epochs_charged").unwrap().as_i64(), Some(n as i64));
    assert!(counters.get("ml.local_updates").unwrap().as_i64().unwrap() > 0);
    let histograms = metrics.get("histograms").unwrap();
    for name in ["span.epoch", "ml.eta_hat", "sim.epoch_latency_secs", "run.epoch_cost"] {
        let h = histograms.get(name).unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.get("count").unwrap().as_i64().unwrap() > 0, "{name}");
        assert!(h.get("p50").unwrap().as_f64().is_some(), "{name}");
    }
}

#[test]
fn disabled_telemetry_matches_untelemetered_run() {
    let mut plain = ExperimentRunner::new(scenario(), PolicyKind::FedL);
    let mut disabled =
        ExperimentRunner::new(scenario(), PolicyKind::FedL).with_telemetry(Telemetry::disabled());
    let a = plain.run();
    let b = disabled.run();
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.accuracy, y.accuracy);
        assert_eq!(x.spent, y.spent);
        assert_eq!(x.cohort_size, y.cohort_size);
    }
}

#[test]
fn baseline_policies_report_nan_regret_terms() {
    let (tel, handle) = Telemetry::in_memory();
    let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedAvg).with_telemetry(tel);
    let outcome = runner.run();
    assert!(!outcome.epochs.is_empty());
    let events = handle.events().unwrap();
    let epoch = events.iter().find(|e| kind_of(e) == "epoch").unwrap();
    // FedAvg has no regret tracker; fedl-json serialises NaN as null.
    assert!(epoch.get("regret").unwrap().as_f64().is_none_or(f64::is_nan));
}
