//! Columnar-vs-scalar determinism parity (docs/SCALE.md).
//!
//! The million-client scale-out rebuilt the population store
//! (`fedl_sim::ClientColumns`), the epoch realization
//! (`fedl_sim::EpochColumns`), the learner memory
//! (`fedl_core::state::ScoreColumns`), and RDCS rounding (Fenwick
//! order-statistics tree) as dense columnar kernels. Each rewrite
//! retained its scalar predecessor as a reference path; these tests hold
//! the two bit-identical on seeded populations at M = 100 and M = 10 000
//! and drive a full 100 000-client scheduler epoch through the columnar
//! path end-to-end.

use fedl_core::columnar::scale_context;
use fedl_core::online::{OnlineLearner, StepSizes};
use fedl_core::policy::EpochContext;
use fedl_core::rounding;
use fedl_core::{FedLConfig, PolicyKind};
use fedl_linalg::rng::{rng_for, Rng};
use fedl_net::{ChannelModel, LatencyModel};
use fedl_sim::{ClientColumns, ClientProfile, EnvConfig, EpochClientView, EpochReport, ScaleTier};

/// Synthetic sample width used by every context in this file; any value
/// works as long as both construction paths share it.
const BITS_PER_SAMPLE: f64 = 64.0;

fn population(m: usize, seed: u64) -> (EnvConfig, ChannelModel, ClientColumns, Vec<ClientProfile>) {
    let config = if m >= 10_000 {
        assert_eq!(m, ScaleTier::Tier10k.num_clients(), "only the 10k tier is scalar-tractable");
        EnvConfig::scale(ScaleTier::Tier10k, seed)
    } else {
        EnvConfig::small(m, seed)
    };
    let channel = ChannelModel::default();
    let cols = ClientColumns::build(&config, &channel);
    let pools = (0..m).map(|k| vec![k]).collect();
    let profiles = ClientProfile::build_population(&config, &channel, pools);
    (config, channel, cols, profiles)
}

/// The runner-shaped context assembled the pre-columnar way: one
/// `epoch_view` per client, one scalar latency-model call per available
/// client. This is the reference `scale_context` must reproduce.
#[allow(clippy::too_many_arguments)]
fn reference_context(
    profiles: &[ClientProfile],
    config: &EnvConfig,
    channel: &ChannelModel,
    latency: &LatencyModel,
    hint_epoch: usize,
    epoch: usize,
    budget: f64,
    n: usize,
) -> Option<EpochContext> {
    let now: Vec<EpochClientView> =
        profiles.iter().map(|p| p.epoch_view(epoch, config, channel)).collect();
    let hint: Vec<EpochClientView> =
        profiles.iter().map(|p| p.epoch_view(hint_epoch, config, channel)).collect();
    let available: Vec<usize> = now.iter().filter(|v| v.available).map(|v| v.id).collect();
    if available.is_empty() {
        return None;
    }
    let share_model = LatencyModel { bandwidth_hz: latency.bandwidth_hz / n as f64, ..*latency };
    let lat_of = |views: &[EpochClientView], k: usize| {
        share_model.per_iteration_secs(
            &[&views[k].radio],
            &[&profiles[k].compute],
            &[views[k].data_volume],
        )[0]
    };
    Some(EpochContext {
        epoch,
        num_clients: profiles.len(),
        costs: available.iter().map(|&k| now[k].cost).collect(),
        data_volumes: available.iter().map(|&k| now[k].data_volume).collect(),
        latency_hint: available.iter().map(|&k| lat_of(&hint, k)).collect(),
        true_latency: available.iter().map(|&k| lat_of(&now, k)).collect(),
        loss_hint: vec![(10.0f64).ln(); available.len()],
        available,
        remaining_budget: budget,
        min_participants: n,
        seed: config.seed,
    })
}

fn assert_contexts_bit_identical(a: &EpochContext, b: &EpochContext, what: &str) {
    assert_eq!(a.available, b.available, "{what}: availability sets differ");
    assert_eq!(a.data_volumes, b.data_volumes, "{what}: data volumes differ");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&a.costs), bits(&b.costs), "{what}: costs differ");
    assert_eq!(bits(&a.latency_hint), bits(&b.latency_hint), "{what}: latency hints differ");
    assert_eq!(bits(&a.true_latency), bits(&b.true_latency), "{what}: true latencies differ");
    assert_eq!(bits(&a.loss_hint), bits(&b.loss_hint), "{what}: loss hints differ");
}

#[test]
fn contexts_bit_identical_to_scalar_reference() {
    for &m in &[100usize, 10_000] {
        let (config, channel, cols, profiles) = population(m, 0x5CA1E);
        let latency = LatencyModel::paper_defaults(config.upload_bits, BITS_PER_SAMPLE);
        let n = (m / 10).max(2);
        for epoch in [0usize, 3] {
            let hint_epoch = epoch.saturating_sub(1);
            let e_hint = cols.epoch_columns(hint_epoch, &config, &channel);
            let e_now = cols.epoch_columns(epoch, &config, &channel);
            let col =
                scale_context(&cols, &e_hint, &e_now, &latency, 500.0, n, config.seed).unwrap();
            let refc = reference_context(
                &profiles, &config, &channel, &latency, hint_epoch, epoch, 500.0, n,
            )
            .unwrap();
            assert_contexts_bit_identical(&col, &refc, &format!("M={m} epoch={epoch}"));
        }
    }
}

#[test]
fn policies_select_identically_on_columnar_and_reference_contexts() {
    // Identical context bits in, identical cohorts out — across the
    // learned policy (FedL: columnar score store + det_sum objective +
    // Fenwick RDCS) and the two memoryless baselines, at both tiers.
    for &m in &[100usize, 10_000] {
        let (config, channel, cols, profiles) = population(m, 0xD1FF);
        let latency = LatencyModel::paper_defaults(config.upload_bits, BITS_PER_SAMPLE);
        let n = (m / 100).max(2);
        let budget = 10_000.0;
        let e0 = cols.epoch_columns(0, &config, &channel);
        let col = scale_context(&cols, &e0, &e0, &latency, budget, n, config.seed).unwrap();
        let refc =
            reference_context(&profiles, &config, &channel, &latency, 0, 0, budget, n).unwrap();
        assert_contexts_bit_identical(&col, &refc, &format!("M={m} epoch=0"));
        for kind in [PolicyKind::FedL, PolicyKind::FedAvg, PolicyKind::PowD] {
            let mut on_columns = kind.build(m, budget, n, FedLConfig::default());
            let mut on_reference = kind.build(m, budget, n, FedLConfig::default());
            let a = on_columns.select(&col);
            let b = on_reference.select(&refc);
            assert_eq!(a, b, "{} diverges at M={m}", kind.label());
            assert!(a.cohort.iter().all(|k| col.available.contains(k)));
            assert!(a.cohort.len() >= col.effective_n().min(a.cohort.len()));
        }
    }
}

#[test]
fn fenwick_rounding_matches_reference_at_10k() {
    let k = 10_000;
    let mut seed_rng = rng_for(0xF31, k as u64);
    let x0: Vec<f64> = (0..k).map(|_| seed_rng.next_f64()).collect();
    let mut fast_x = x0.clone();
    let mut slow_x = x0;
    let mut fast_rng = rng_for(0xF32, k as u64);
    let mut slow_rng = rng_for(0xF32, k as u64);
    let fast = rounding::rdcs(&mut fast_x, &mut fast_rng);
    let slow = rounding::rdcs_reference(&mut slow_x, &mut slow_rng);
    assert_eq!(fast, slow, "selected sets differ");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&fast_x), bits(&slow_x), "rounded vectors differ");
}

#[test]
fn hundred_k_scheduler_epoch_completes_through_columns() {
    // The acceptance tier: one full scheduler epoch — context assembly,
    // problem build, rounding, repair, and the realized-epoch fold-back
    // — through the columnar path at M = 100 000. The PGD descent step
    // is exercised at the scalar-tractable tiers above; its iteration
    // count does not grow with M (docs/SCALE.md).
    let tier = ScaleTier::Tier100k;
    let m = tier.num_clients();
    let config = EnvConfig::scale(tier, 0xACCE);
    let channel = ChannelModel::default();
    let cols = ClientColumns::build(&config, &channel);
    assert_eq!(cols.len(), m);
    let e0 = cols.epoch_columns(0, &config, &channel);
    let e1 = cols.epoch_columns(1, &config, &channel);
    let latency = LatencyModel::paper_defaults(config.upload_bits, BITS_PER_SAMPLE);
    let n = 50;
    let budget = 5_000.0;
    let ctx = scale_context(&cols, &e0, &e1, &latency, budget, n, config.seed).unwrap();
    ctx.validate();
    assert_eq!(ctx.num_clients, m);
    assert!(ctx.available.len() > m / 2, "Bernoulli(0.8) availability collapsed");

    let mut learner = OnlineLearner::new(m, StepSizes::fixed(0.3, 0.3), 1.0, 10.0, 0.05);
    let problem = learner.build_problem(&ctx);
    assert_eq!(problem.ids, ctx.available);

    // A deterministic fractional decision in place of the descent step.
    let frac_x: Vec<f64> = (0..ctx.available.len()).map(|i| (i % 10) as f64 / 10.0).collect();
    let mut rounded = frac_x.clone();
    let mut rng = rng_for(config.seed, 0x100_000);
    let mut slots = rounding::rdcs(&mut rounded, &mut rng);
    let mass: f64 = frac_x.iter().sum();
    assert!(
        (slots.len() as f64 - mass).abs() <= 1.0,
        "RDCS must preserve the fractional mass: {} picks for Σx̃ = {mass}",
        slots.len()
    );
    rounding::repair(&mut slots, &ctx.costs, n, budget);
    assert!(slots.len() >= n, "repair must keep the participation floor");
    let cohort: Vec<usize> = slots.iter().take(64).map(|&s| ctx.available[s]).collect();

    let nc = cohort.len();
    let report = EpochReport {
        epoch: 1,
        cohort: cohort.clone(),
        iterations: 2,
        latency_secs: 0.5,
        per_client_iter_latency: vec![0.25; nc],
        cost: nc as f64,
        eta_hats: vec![0.5f32; nc],
        global_loss_all: 1.2,
        global_loss_selected: 1.1,
        grad_dot_delta: vec![-0.1f32; nc],
        local_losses: vec![1.2f32; nc],
        failed: vec![],
    };
    let frac = fedl_core::objective::FracDecision { x: frac_x, rho: 2.0 };
    learner.observe(&ctx, &report, &frac, &problem);

    let (mu0, mu) = learner.multipliers();
    assert!(mu0.is_finite() && mu0 >= 0.0);
    assert_eq!(mu.len(), m);
    assert!(mu.iter().all(|v| v.is_finite() && *v >= 0.0));
    assert_eq!(learner.state().len(), m);
    for &k in &cohort {
        let s = learner.state().stats(k).expect("cohort members must be remembered");
        assert!(s.observations >= 1, "client {k} lost its observation");
    }
}

#[test]
fn learner_snapshot_round_trips_at_10k() {
    // The columnar score store must stay snapshot/restorable through
    // the fedl-store contract at scale-tier populations.
    let tier = ScaleTier::Tier10k;
    let m = tier.num_clients();
    let config = EnvConfig::scale(tier, 0x570E);
    let channel = ChannelModel::default();
    let cols = ClientColumns::build(&config, &channel);
    let e0 = cols.epoch_columns(0, &config, &channel);
    let latency = LatencyModel::paper_defaults(config.upload_bits, BITS_PER_SAMPLE);
    let ctx = scale_context(&cols, &e0, &e0, &latency, 1_000.0, 20, config.seed).unwrap();
    let mut learner = OnlineLearner::new(m, StepSizes::fixed(0.3, 0.3), 1.0, 10.0, 0.05);
    let problem = learner.build_problem(&ctx);
    let cohort: Vec<usize> = ctx.available.iter().copied().take(32).collect();
    let nc = cohort.len();
    let report = EpochReport {
        epoch: 0,
        cohort,
        iterations: 2,
        latency_secs: 0.5,
        per_client_iter_latency: vec![0.25; nc],
        cost: nc as f64,
        eta_hats: vec![0.5f32; nc],
        global_loss_all: 1.2,
        global_loss_selected: 1.1,
        grad_dot_delta: vec![-0.1f32; nc],
        local_losses: vec![1.2f32; nc],
        failed: vec![],
    };
    let frac = fedl_core::objective::FracDecision { x: vec![0.1; ctx.available.len()], rho: 2.0 };
    learner.observe(&ctx, &report, &frac, &problem);

    let snapshot = learner.to_json();
    let restored = OnlineLearner::from_json(&snapshot).expect("snapshot must parse");
    assert_eq!(restored.to_json(), snapshot, "round-trip must be byte-stable");
    assert_eq!(restored.multipliers().0.to_bits(), learner.multipliers().0.to_bits());
    assert_eq!(restored.state().len(), m);
}
