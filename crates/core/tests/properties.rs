//! Property-based tests of the FedL core: RDCS invariants (Theorem 3's
//! building blocks), descent-step feasibility, repair guarantees, and
//! the h/f algebra, under randomized problem instances.

use fedl_core::objective::{FracDecision, OneShot};
use fedl_core::regret::hindsight_optimum;
use fedl_core::rounding;
use fedl_linalg::rng::rng_for;
use proptest::prelude::*;

fn frac_vec(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, k)
}

fn problem_strategy() -> impl Strategy<Value = OneShot> {
    (2usize..10, 0u64..500).prop_map(|(k, seed)| {
        use rand::Rng;
        let mut rng = rng_for(seed, k as u64);
        OneShot {
            ids: (0..k).collect(),
            tau: (0..k).map(|_| rng.gen_range(0.01..3.0)).collect(),
            costs: (0..k).map(|_| rng.gen_range(0.1..12.0)).collect(),
            eta: (0..k).map(|_| rng.gen_range(0.05..0.95)).collect(),
            g: (0..k).map(|_| rng.gen_range(-1.0..0.2)).collect(),
            bonus: vec![0.0; k],
            loss_all: rng.gen_range(0.2..2.5),
            theta: rng.gen_range(0.5..1.5),
            min_participants: rng.gen_range(1..=k),
            budget: rng.gen_range(5.0..200.0),
            rho_max: rng.gen_range(2.0..12.0),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rdcs_sum_within_one_and_integral(x0 in frac_vec(8), seed in 0u64..1000) {
        let mut rng = rng_for(seed, 1);
        let mut x = x0.clone();
        let selected = rounding::rdcs(&mut x, &mut rng);
        prop_assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
        let sum0: f64 = x0.iter().sum();
        prop_assert!((selected.len() as f64 - sum0).abs() < 1.0 + 1e-9);
        // Returned indices are exactly the ones set to 1.
        for (i, &v) in x.iter().enumerate() {
            prop_assert_eq!(v == 1.0, selected.contains(&i));
        }
    }

    #[test]
    fn rdcs_pairwise_step_preserves_certain_coordinates(
        x0 in frac_vec(6),
        seed in 0u64..1000,
    ) {
        // Coordinates that start integral must never change.
        let mut rng = rng_for(seed, 2);
        let mut x = x0.clone();
        // Force a couple of integral coordinates.
        x[0] = 1.0;
        x[5] = 0.0;
        let sel = rounding::rdcs(&mut x, &mut rng);
        prop_assert!(sel.contains(&0));
        prop_assert!(!sel.contains(&5));
    }

    #[test]
    fn repair_always_feasible_when_possible(
        costs in proptest::collection::vec(0.1f64..12.0, 3..12),
        selected_bits in proptest::collection::vec(any::<bool>(), 3..12),
        n in 1usize..5,
        budget in 1.0f64..60.0,
    ) {
        let k = costs.len().min(selected_bits.len());
        let costs = &costs[..k];
        let mut selected: Vec<usize> =
            (0..k).filter(|&i| selected_bits[i]).collect();
        rounding::repair(&mut selected, costs, n, budget);
        let n_eff = n.min(k).max(1);
        prop_assert!(selected.len() >= n_eff, "floor violated");
        let total: f64 = selected.iter().map(|&i| costs[i]).sum();
        // Either within budget, or already at the minimum cohort size
        // (overshoot allowed only at the floor).
        prop_assert!(
            total <= budget + 1e-9 || selected.len() == n_eff,
            "cost {total} over budget {budget} with {} > n {} members",
            selected.len(),
            n_eff
        );
        // No duplicates, all in range.
        let mut sorted = selected.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), selected.len());
        prop_assert!(selected.iter().all(|&i| i < k));
    }

    #[test]
    fn descent_stays_in_box_and_floor(p in problem_strategy(), seed in 0u64..200) {
        use rand::Rng;
        let k = p.ids.len();
        let mut rng = rng_for(seed, 3);
        let anchor = FracDecision {
            x: (0..k).map(|_| rng.gen_range(0.0..1.0)).collect(),
            rho: rng.gen_range(1.0..p.rho_max),
        };
        let mu: Vec<f64> = (0..=k).map(|_| rng.gen_range(0.0..5.0)).collect();
        let d = p.descend(&anchor, &mu, 0.4);
        prop_assert_eq!(d.x.len(), k);
        prop_assert!(d.x.iter().all(|&x| (0.0..=1.0).contains(&x)), "{:?}", d.x);
        prop_assert!(d.rho >= 1.0 && d.rho <= p.rho_max);
        let sum: f64 = d.x.iter().sum();
        prop_assert!(
            sum >= p.effective_n() as f64 - 5e-2,
            "participation {} < n {}",
            sum,
            p.effective_n()
        );
        prop_assert!(d.iterations() >= 1);
    }

    #[test]
    fn hindsight_is_feasible_and_no_worse_than_descent(
        p in problem_strategy(),
        seed in 0u64..200,
    ) {
        use rand::Rng;
        let k = p.ids.len();
        let mut rng = rng_for(seed, 4);
        let anchor = FracDecision {
            x: (0..k).map(|_| rng.gen_range(0.0..1.0)).collect(),
            rho: 2.0f64.min(p.rho_max),
        };
        let online = p.descend(&anchor, &vec![0.0; k + 1], 0.4);
        let star = hindsight_optimum(&p);
        prop_assert!(star.x.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sum: f64 = star.x.iter().sum();
        prop_assert!(sum >= p.effective_n() as f64 - 5e-2);
        // The comparator minimizes f with penalties; when the online
        // point satisfies all h-constraints the comparator must not be
        // substantially worse on f.
        let h_online = p.h_value(&online.x, online.rho);
        if h_online.iter().all(|&h| h <= 0.0) {
            let f_star = p.f_value(&star.x, star.rho);
            let f_online = p.f_value(&online.x, online.rho);
            prop_assert!(
                f_star <= f_online + 0.05 * f_online.abs() + 1e-3,
                "comparator f {} > online f {}",
                f_star,
                f_online
            );
        }
    }

    #[test]
    fn h_and_f_respond_to_their_inputs(p in problem_strategy()) {
        let k = p.ids.len();
        let x_none = vec![0.0; k];
        let x_all = vec![1.0; k];
        // f grows with selection and with rho.
        let f0 = p.f_value(&x_none, 2.0);
        let f1 = p.f_value(&x_all, 2.0);
        prop_assert!(f0 == 0.0 && f1 > 0.0);
        prop_assert!(p.f_value(&x_all, 3.0) > f1);
        // Local constraints are satisfied when nothing is selected.
        let h = p.h_value(&x_none, 2.0);
        for &v in &h[1..] {
            prop_assert!(v <= 0.0);
        }
        // And tighten as rho falls to 1 with everything selected.
        let h_lo = p.h_value(&x_all, 1.0);
        for (i, &v) in h_lo[1..].iter().enumerate() {
            prop_assert!((v - p.eta[i]).abs() < 1e-12);
        }
    }
}
