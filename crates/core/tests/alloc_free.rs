//! Zero-steady-state-allocation regression tests for the scheduler hot
//! loops: RDCS dependent rounding and the columnar UCB score-update
//! assembly (`build_problem_into` + `h_value_into`). Installs the
//! counting allocator as this binary's global allocator; once the
//! reusable scratch structures are warm, the measured regions must not
//! touch the heap.
//!
//! Kept to a single `#[test]` so no sibling test can allocate
//! concurrently while the measured regions run.

use fedl_core::objective::OneShot;
use fedl_core::online::{OnlineLearner, StepSizes};
use fedl_core::policy::EpochContext;
use fedl_core::rounding::{rdcs_with, RdcsScratch};
use fedl_linalg::alloc_counter::CountingAllocator;
use fedl_linalg::rng::{rng_for, Rng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Asserts that some execution of `run` allocates nothing. The libtest
/// harness's main thread can allocate concurrently with the measured
/// window (event plumbing), so a dirty window is retried — a hot loop
/// that genuinely allocates per call fails every attempt.
fn assert_allocation_free(what: &str, mut run: impl FnMut()) {
    for attempt in 0..5 {
        let allocs = ALLOC.allocations();
        let bytes = ALLOC.bytes();
        run();
        if ALLOC.allocations() == allocs && ALLOC.bytes() == bytes {
            return;
        }
        eprintln!("{what}: allocation in measured window (attempt {attempt}); retrying");
    }
    panic!("{what} allocated in every measured window");
}

fn context(m: usize) -> EpochContext {
    EpochContext {
        epoch: 0,
        num_clients: m,
        available: (0..m).collect(),
        costs: (0..m).map(|i| 0.5 + (i % 11) as f64).collect(),
        data_volumes: vec![20; m],
        latency_hint: (0..m).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect(),
        loss_hint: vec![2.0; m],
        true_latency: (0..m).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect(),
        remaining_budget: 10_000.0,
        min_participants: m / 8,
        seed: 0xF00,
    }
}

#[test]
fn scheduler_hot_loops_are_allocation_free_once_warm() {
    fedl_linalg::par::force_max_threads(1);

    // --- RDCS rounding -------------------------------------------------
    let k = 256;
    let mut seed_rng = rng_for(0xA21, k as u64);
    let x0: Vec<f64> = (0..k).map(|_| seed_rng.next_f64()).collect();
    let mut x = x0.clone();
    let mut rng = rng_for(0xA22, 0);
    let mut scratch = RdcsScratch::new();
    let mut selected = Vec::with_capacity(k);
    rdcs_with(&mut x, &mut rng, &mut scratch, &mut selected); // warm

    assert_allocation_free("RDCS rounding", || {
        for _ in 0..5 {
            x.copy_from_slice(&x0);
            rdcs_with(&mut x, &mut rng, &mut scratch, &mut selected);
        }
    });
    assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));

    // --- Columnar UCB score-update assembly ----------------------------
    let m = 64;
    let ctx = context(m);
    let mut learner = OnlineLearner::new(m, StepSizes::fixed(0.3, 0.3), 1.0, 10.0, 0.1);
    let mut problem = OneShot::default();
    let mut h = Vec::new();
    let frac_x = vec![0.5f64; m];
    learner.build_problem_into(&ctx, &mut problem); // warm
    problem.h_value_into(&frac_x, 0.4, &mut h); // warm

    assert_allocation_free("UCB score-update assembly", || {
        for _ in 0..5 {
            learner.build_problem_into(&ctx, &mut problem);
            problem.h_value_into(&frac_x, 0.4, &mut h);
        }
    });
    assert_eq!(problem.ids.len(), m);
    assert!(!h.is_empty());
}
