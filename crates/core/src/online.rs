//! The online learning algorithm (paper §4.3): alternating modified
//! descent on the primal decision and standard ascent on the Lagrange
//! multipliers, using only observed information.
//!
//! Since the million-client scale-out (docs/SCALE.md) the per-epoch
//! bookkeeping runs as dense column passes: the latency fold and prior
//! creation go through [`LearnerState::fold_latency`], the problem
//! assembly gathers from [`crate::state::ScoreColumns`] slices, and the
//! dual ascent is a masked dense kernel over the multiplier column —
//! all sharded via `fedl_linalg::par` with per-element arithmetic
//! identical to the scalar path, so results are bit-for-bit unchanged.

use crate::objective::{FracDecision, OneShot};
use crate::policy::EpochContext;
use crate::state::LearnerState;
use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_linalg::par::{det_sum, par_zip_chunks_grained};
use fedl_sim::EpochReport;

/// Sequential grain for the learner's columnar passes: cohorts up to
/// this size run inline on the caller with zero dispatch overhead (and
/// zero allocation); only the large scale tiers fan out to the pool.
/// Purely a scheduling knob — results are bit-identical either way
/// because every pass is element-independent.
const COLUMN_GRAIN: usize = 2048;

/// Reusable buffers for the learner's per-epoch passes
/// ([`OnlineLearner::build_problem_into`] / [`OnlineLearner::decide`] /
/// [`OnlineLearner::observe`]). Not part of the learner's logical state:
/// excluded from snapshots and comparisons, rebuilt empty on restore.
#[derive(Debug, Clone, Default)]
struct LearnerScratch {
    /// Dense availability mask by client id.
    mask: Vec<bool>,
    /// Dense latency hints by client id.
    hint: Vec<f64>,
    /// Anchor decision for the descent step.
    anchor_x: Vec<f64>,
    /// Gathered multipliers `[μ⁰, μ^k…]` for the available clients.
    mu_gather: Vec<f64>,
    /// Observed-constraint copy of the decision problem.
    observed: OneShot,
    /// Observed constraint vector `h_t(Φ̃_t)`.
    h: Vec<f64>,
    /// `h` scattered into a dense id-indexed column.
    h_dense: Vec<f64>,
}

/// Step sizes β (primal) and δ (dual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSizes {
    /// Primal (proximal) step size β.
    pub beta: f64,
    /// Dual ascent step size δ.
    pub delta: f64,
}

impl StepSizes {
    /// The Corollary-1 schedule `β = δ = scale·T_C^{−1/3}` with the
    /// stopping-epoch estimate `T̂_C = C/(n·c̄)`.
    pub fn corollary1(budget: f64, min_participants: usize, mean_cost: f64, scale: f64) -> Self {
        assert!(budget > 0.0 && mean_cost > 0.0 && min_participants > 0, "bad schedule inputs");
        assert!(scale > 0.0, "non-positive scale");
        let t_c = (budget / (min_participants as f64 * mean_cost)).max(1.0);
        let step = scale * t_c.powf(-1.0 / 3.0);
        Self { beta: step, delta: step }
    }

    /// Fixed step sizes (for the step-size ablation).
    pub fn fixed(beta: f64, delta: f64) -> Self {
        assert!(beta > 0.0 && delta > 0.0, "non-positive step size");
        Self { beta, delta }
    }
}

impl ToJson for StepSizes {
    fn to_json_value(&self) -> Value {
        obj(vec![("beta", self.beta.to_json_value()), ("delta", self.delta.to_json_value())])
    }
}

impl FromJson for StepSizes {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self { beta: read_field(v, "beta")?, delta: read_field(v, "delta")? })
    }
}

/// State of the online learner: per-client observation memory plus the
/// Lagrange multipliers `μ = [μ⁰, μ¹ … μ^M]` (μ⁰ for the global
/// convergence constraint (3d), μ^k for each client's local constraint
/// (3c); a client's multiplier persists across the epochs in which it is
/// unavailable).
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    state: LearnerState,
    mu0: f64,
    mu: Vec<f64>,
    steps: StepSizes,
    theta: f64,
    rho_max: f64,
    /// Fairness weight (0 = the paper's FedL; positive values give
    /// rarely-selected clients a standing objective discount — the
    /// paper's stated future-work direction).
    fairness_weight: f64,
    /// Reusable per-epoch buffers (not logical state; not serialized).
    scratch: LearnerScratch,
}

impl OnlineLearner {
    /// Creates the learner with `μ₁ = 0` (the initialization Lemma 2 and
    /// Theorem 2 assume). `prior_x` is the fractional anchor given to
    /// never-observed clients — FedL passes `n/M`, the selection rate a
    /// budget-efficient policy settles at.
    pub fn new(
        num_clients: usize,
        steps: StepSizes,
        theta: f64,
        rho_max: f64,
        prior_x: f64,
    ) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        assert!(rho_max >= 1.0, "rho_max below 1");
        Self {
            state: LearnerState::new(num_clients, prior_x),
            mu0: 0.0,
            mu: vec![0.0; num_clients],
            steps,
            theta,
            rho_max,
            fairness_weight: 0.0,
            scratch: LearnerScratch::default(),
        }
    }

    /// Enables the fairness extension with the given weight (see
    /// [`crate::objective::OneShot::bonus`]).
    pub fn with_fairness(mut self, weight: f64) -> Self {
        assert!(weight >= 0.0, "negative fairness weight");
        self.fairness_weight = weight;
        self
    }

    /// Serializes the complete learner state (per-client memory,
    /// multipliers, step sizes) for checkpointing a long FL campaign.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Restores a learner from a [`OnlineLearner::to_json`] snapshot.
    pub fn from_json(snapshot: &str) -> Result<Self, fedl_json::Error> {
        Self::from_json_value(&Value::parse(snapshot)?)
    }

    /// Current multipliers `(μ⁰, μ^k)` — exposed for the boundedness
    /// check of Lemma 2 in tests/benches.
    pub fn multipliers(&self) -> (f64, &[f64]) {
        (self.mu0, &self.mu)
    }

    /// The configured step sizes.
    pub fn steps(&self) -> StepSizes {
        self.steps
    }

    /// Per-client observation memory.
    pub fn state(&self) -> &LearnerState {
        &self.state
    }

    /// Assembles the one-shot problem for this epoch from current prices
    /// and remembered observations, as dense column passes.
    pub fn build_problem(&mut self, ctx: &EpochContext) -> OneShot {
        let mut out = OneShot::default();
        self.build_problem_into(ctx, &mut out);
        out
    }

    /// [`OnlineLearner::build_problem`] written into a caller-owned
    /// problem (all coefficient vectors reshaped in place); steady-state
    /// reuse of the same `OneShot` performs no allocation.
    pub fn build_problem_into(&mut self, ctx: &EpochContext, out: &mut OneShot) {
        ctx.validate();
        let m = self.state.len();
        let a = ctx.available.len();
        let scratch = &mut self.scratch;
        // Scatter the per-available hints into dense id-indexed columns
        // (serial: writes land at arbitrary ids).
        let mask = &mut scratch.mask;
        mask.clear();
        mask.resize(m, false);
        let hint = &mut scratch.hint;
        hint.clear();
        hint.resize(m, 0.0);
        for (pos, &k) in ctx.available.iter().enumerate() {
            assert!(k < m, "unknown client {k}");
            mask[k] = true;
            hint[k] = ctx.latency_hint[pos];
        }
        // The latency hint is last epoch's realized channel state —
        // fresh observable data for every available client, selected
        // or not — so fold it into the estimates before reading them
        // (the dense UCB score-update kernel).
        self.state.fold_latency(mask, hint);
        // Gather the one-shot vectors from the columns at the available
        // ids (sharded above the grain, read-only).
        let cols = self.state.columns();
        let gather = |col: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.resize(a, 0.0);
            par_zip_chunks_grained(out, 1, &ctx.available, 1, COLUMN_GRAIN, |_, o, id| {
                o[0] = col[id[0]]
            });
        };
        gather(&cols.tau, &mut out.tau);
        gather(&cols.eta, &mut out.eta);
        gather(&cols.g, &mut out.g);
        let fairness = self.fairness_weight;
        let observations = &cols.observations;
        let bonus = &mut out.bonus;
        bonus.clear();
        bonus.resize(a, 0.0);
        par_zip_chunks_grained(bonus, 1, &ctx.available, 1, COLUMN_GRAIN, |_, o, id| {
            o[0] = fairness / (1.0 + observations[id[0]] as f64);
        });
        out.loss_all = if self.state.last_global_loss.is_finite() {
            self.state.last_global_loss
        } else {
            // No observation yet: seed with the loss hints' mean.
            det_sum(0.0, ctx.loss_hint.len(), |i| ctx.loss_hint[i])
                / ctx.loss_hint.len().max(1) as f64
        };
        out.ids.clone_from(&ctx.available);
        out.costs.clone_from(&ctx.costs);
        out.theta = self.theta;
        out.min_participants = ctx.min_participants;
        out.budget = ctx.remaining_budget;
        out.rho_max = self.rho_max;
    }

    /// The modified descent step (paper eq. (8)): produces the fractional
    /// decision for this epoch, anchored at each client's previous
    /// fractional value.
    pub fn decide(&mut self, ctx: &EpochContext, problem: &OneShot) -> FracDecision {
        // Priors normally exist after `build_problem`; create them here
        // too so `decide` alone matches the scalar path's first-touch
        // behavior.
        for (pos, &k) in ctx.available.iter().enumerate() {
            self.state.ensure_touched(k, ctx.latency_hint[pos]);
        }
        let cols = self.state.columns();
        let anchor_x = &mut self.scratch.anchor_x;
        anchor_x.clear();
        anchor_x.resize(ctx.available.len(), 0.0);
        par_zip_chunks_grained(anchor_x, 1, &ctx.available, 1, COLUMN_GRAIN, |_, o, id| {
            o[0] = cols.last_x[id[0]];
        });
        let mu = &mut self.scratch.mu_gather;
        mu.clear();
        mu.resize(ctx.available.len() + 1, 0.0);
        mu[0] = self.mu0;
        let mu_col = &self.mu;
        par_zip_chunks_grained(&mut mu[1..], 1, &ctx.available, 1, COLUMN_GRAIN, |_, o, id| {
            o[0] = mu_col[id[0]]
        });
        problem.descend_from(anchor_x, self.state.last_rho, mu, self.steps.beta)
    }

    /// Observation + dual ascent (paper eq. (9)): fold the realized epoch
    /// into the per-client memory and update
    /// `μ ← [μ + δ·h_t(Φ̃_t)]⁺` using *observed* constraint values.
    pub fn observe(
        &mut self,
        ctx: &EpochContext,
        report: &EpochReport,
        frac: &FracDecision,
        problem: &OneShot,
    ) {
        assert_eq!(frac.x.len(), ctx.available.len(), "decision arity");
        // Position of client k within `available`. The runner builds the
        // list ascending, so binary search covers the hot path; the
        // linear fallback keeps arbitrary orders correct.
        let sorted = ctx.available.windows(2).all(|w| w[0] < w[1]);
        let pos_of = |k: usize| {
            if sorted {
                ctx.available.binary_search(&k).ok()
            } else {
                ctx.available.iter().position(|&a| a == k)
            }
        };
        // Update per-client memory from the realized cohort outcomes.
        for (slot, &k) in report.cohort.iter().enumerate() {
            let tau = report.per_client_iter_latency[slot];
            let eta = report.eta_hats[slot] as f64;
            let g = report.grad_dot_delta[slot] as f64;
            // The latency hint position for k (k is available, else it
            // could not have been selected).
            let hint = pos_of(k).map_or(tau, |p| ctx.latency_hint[p]);
            self.state.observe_cohort(k, hint, tau, eta, g);
        }
        self.state.last_global_loss = report.global_loss_all;

        // Anchors for the next descent step (dense scatter by id).
        for (pos, &k) in ctx.available.iter().enumerate() {
            self.state.ensure_touched(k, ctx.latency_hint[pos]);
            self.state.set_anchor(k, frac.x[pos]);
        }
        self.state.last_rho = frac.rho;

        // Observed constraint vector h_t(Φ̃_t): same structure as the
        // decision problem but with realized η̂ and realized global loss.
        let scratch = &mut self.scratch;
        let observed = &mut scratch.observed;
        observed.copy_from(problem);
        observed.loss_all = report.global_loss_all;
        for (slot, &k) in report.cohort.iter().enumerate() {
            if let Some(pos) = pos_of(k) {
                observed.eta[pos] = report.eta_hats[slot] as f64;
                observed.g[pos] = report.grad_dot_delta[slot] as f64;
            }
        }
        let h = &mut scratch.h;
        observed.h_value_into(&frac.x, frac.rho, h);
        self.mu0 = (self.mu0 + self.steps.delta * h[0]).max(0.0);
        // Dual ascent (eq. (9)) as a masked dense kernel pass over the
        // multiplier column: scatter h into an id-indexed column, then
        // update only the available rows (a client's multiplier persists
        // untouched across the epochs it is unavailable).
        let m = self.state.len();
        let h_dense = &mut scratch.h_dense;
        h_dense.clear();
        h_dense.resize(m, 0.0);
        let mask = &mut scratch.mask;
        mask.clear();
        mask.resize(m, false);
        for (pos, &k) in ctx.available.iter().enumerate() {
            h_dense[k] = h[1 + pos];
            mask[k] = true;
        }
        let delta = self.steps.delta;
        par_zip_chunks_grained(&mut self.mu, 1, h_dense, 1, COLUMN_GRAIN, |k, mu, h| {
            if mask[k] {
                mu[0] = (mu[0] + delta * h[0]).max(0.0);
            }
        });
    }
}

impl ToJson for OnlineLearner {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("state", self.state.to_json_value()),
            ("mu0", self.mu0.to_json_value()),
            ("mu", self.mu.to_json_value()),
            ("steps", self.steps.to_json_value()),
            ("theta", self.theta.to_json_value()),
            ("rho_max", self.rho_max.to_json_value()),
            ("fairness_weight", self.fairness_weight.to_json_value()),
        ])
    }
}

impl FromJson for OnlineLearner {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            state: read_field(v, "state")?,
            mu0: read_field(v, "mu0")?,
            mu: read_field(v, "mu")?,
            steps: read_field(v, "steps")?,
            theta: read_field(v, "theta")?,
            rho_max: read_field(v, "rho_max")?,
            fairness_weight: read_field(v, "fairness_weight")?,
            scratch: LearnerScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    fn learner(n_clients: usize) -> OnlineLearner {
        OnlineLearner::new(n_clients, StepSizes::fixed(0.5, 0.5), 0.5, 8.0, 0.4)
    }

    fn fake_report(ctx: &EpochContext, cohort: Vec<usize>, loss: f64) -> EpochReport {
        let k = cohort.len();
        let _ = ctx;
        EpochReport {
            epoch: ctx.epoch,
            cohort,
            iterations: 2,
            latency_secs: 1.0,
            per_client_iter_latency: vec![0.4; k],
            cost: 3.0,
            eta_hats: vec![0.6; k],
            global_loss_all: loss,
            global_loss_selected: loss,
            grad_dot_delta: vec![-0.3; k],
            local_losses: vec![loss as f32; k],
            failed: vec![],
        }
    }

    #[test]
    fn corollary1_schedule_shrinks_with_budget() {
        let small = StepSizes::corollary1(100.0, 5, 6.0, 1.0);
        let large = StepSizes::corollary1(10000.0, 5, 6.0, 1.0);
        assert!(large.beta < small.beta, "bigger T_C -> smaller steps");
        assert_eq!(small.beta, small.delta);
    }

    #[test]
    fn multipliers_start_at_zero_and_stay_nonnegative() {
        let c = ctx(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 50.0, 2);
        let mut l = learner(3);
        let (mu0, mu) = l.multipliers();
        assert_eq!(mu0, 0.0);
        assert!(mu.iter().all(|&m| m == 0.0));
        let p = l.build_problem(&c);
        let d = l.decide(&c, &p);
        // Low realized loss: h0 negative, mu0 stays at 0.
        let r = fake_report(
            &c,
            d.x.iter().enumerate().filter(|(_, &x)| x > 0.5).map(|(i, _)| c.available[i]).collect(),
            0.1,
        );
        let cohort = if r.cohort.is_empty() { fake_report(&c, vec![0], 0.1) } else { r };
        l.observe(&c, &cohort, &d, &p);
        let (mu0, mu) = l.multipliers();
        assert_eq!(mu0, 0.0, "satisfied constraint must not grow μ⁰");
        assert!(mu.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn violated_global_constraint_grows_mu0() {
        let c = ctx(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 50.0, 2);
        let mut l = learner(3);
        let p = l.build_problem(&c);
        let d = l.decide(&c, &p);
        let r = fake_report(&c, vec![0, 1], 5.0); // loss 5 >> theta 0.5
        l.observe(&c, &r, &d, &p);
        let (mu0, _) = l.multipliers();
        assert!(mu0 > 0.0, "violated loss constraint must raise μ⁰");
    }

    #[test]
    fn dual_pressure_changes_decision() {
        let c = ctx(vec![0, 1, 2, 3], vec![1.0; 4], 50.0, 2);
        let mut l = learner(4);
        let p0 = l.build_problem(&c);
        let before = l.decide(&c, &p0);
        // Several epochs of heavy violation.
        for _ in 0..10 {
            let p = l.build_problem(&c);
            let d = l.decide(&c, &p);
            let r = fake_report(&c, vec![0, 1], 5.0);
            l.observe(&c, &r, &d, &p);
        }
        let p1 = l.build_problem(&c);
        let after = l.decide(&c, &p1);
        // Accumulated μ⁰ pushes toward loss-reducing selections and more
        // iterations; at minimum the decision must have moved.
        assert!(
            (after.rho - before.rho).abs() > 1e-6
                || after.x.iter().zip(&before.x).any(|(a, b)| (a - b).abs() > 1e-6),
            "dual ascent had no effect on the decision"
        );
    }

    #[test]
    fn memory_prefers_observed_fast_clients() {
        let c = ctx(vec![0, 1], vec![1.0, 1.0], 100.0, 1);
        let mut l = learner(2);
        // Observe client 0 as fast/high-quality repeatedly.
        for _ in 0..6 {
            let p = l.build_problem(&c);
            let d = l.decide(&c, &p);
            let mut r = fake_report(&c, vec![0], 0.4);
            r.per_client_iter_latency = vec![0.01];
            r.eta_hats = vec![0.1];
            r.grad_dot_delta = vec![-1.0];
            l.observe(&c, &r, &d, &p);
        }
        let p = l.build_problem(&c);
        // Client 0's remembered latency should now be far below 1's.
        assert!(p.tau[0] < p.tau[1] * 0.5, "tau {:?}", p.tau);
        assert!(p.eta[0] < p.eta[1], "eta {:?}", p.eta);
        let d = l.decide(&c, &p);
        assert!(d.x[0] >= d.x[1] - 1e-9, "learned preference ignored: {:?}", d.x);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_bad_theta() {
        let _ = OnlineLearner::new(2, StepSizes::fixed(0.1, 0.1), 0.0, 4.0, 0.4);
    }
}
