//! Compute-only bridge from the simulator's columnar population to the
//! policy-facing [`EpochContext`] — the million-client scale path
//! (docs/SCALE.md).
//!
//! The experiment runner builds its contexts through a full
//! [`fedl_sim::EdgeEnvironment`] (datasets, partitions, a seated model).
//! At 10⁵–10⁶ clients that apparatus is dead weight for the *scheduler*:
//! selection touches only availability, prices, volumes, and latency
//! estimates. [`scale_context`] derives all of those directly from
//! [`ClientColumns`]/[`EpochColumns`] with dense parallel passes and no
//! per-client structs, producing the same [`EpochContext`] the runner
//! would (identical latency arithmetic, same never-observed loss prior),
//! so a policy can be driven — and benchmarked — at population sizes the
//! training loop cannot reach.

use fedl_linalg::par::par_zip_chunks;
use fedl_net::{rate_bps, ClientRadio, LatencyModel};
use fedl_sim::{ClientColumns, EpochColumns};

use crate::policy::EpochContext;

/// Per-iteration latency estimate of each listed client from column
/// data, under a nominal FDMA share of `bandwidth / share_count` — the
/// columnar equivalent of `EdgeEnvironment::latency_with_share`, same
/// arithmetic bit-for-bit: `τ = e_k·D_k·bits/π_k + s/rate(B/n)`.
///
/// `realized` supplies the epoch's channel gains and data volumes;
/// `ids` are the clients to estimate (any subset, any order).
///
/// # Panics
/// Panics if `share_count` is zero or an id is out of range.
pub fn nominal_latency(
    cols: &ClientColumns,
    realized: &EpochColumns,
    latency: &LatencyModel,
    share_count: usize,
    ids: &[usize],
) -> Vec<f64> {
    assert!(share_count > 0, "share count must be positive");
    let share_hz = latency.bandwidth_hz / share_count as f64;
    let n0 = fedl_net::dbm_to_watts(latency.noise_dbm_per_hz);
    let mut out = vec![0.0f64; ids.len()];
    par_zip_chunks(&mut out, 1, ids, 1, |_, tau, id| {
        let k = id[0];
        let radio = ClientRadio {
            distance_m: cols.distance_m[k],
            tx_power_dbm: cols.tx_power_dbm,
            gain: realized.gain[k],
        };
        let data_bits = realized.data_volume[k] as f64 * latency.bits_per_sample;
        let compute_secs = cols.cycles_per_bit[k] * data_bits / cols.cpu_hz[k];
        let upload_secs = latency.upload_bits / rate_bps(&radio, share_hz, n0).max(1e-3);
        tau[0] = compute_secs + upload_secs;
    });
    out
}

/// Assembles the epoch-`t` decision context straight from columns — no
/// environment, no datasets. Mirrors the runner's context construction:
/// availability, costs, and volumes come from the current epoch `now`;
/// latency estimates use the *hint* epoch's channel state (0-lookahead —
/// the runner passes epoch `t−1`'s realization, or `t`'s own at `t = 0`);
/// `true_latency` is the current epoch's realization (oracle-only); the
/// loss hint is the never-observed prior `ln 10` everywhere, matching a
/// fresh runner before any training feedback. Returns `None` when no
/// client is available (the runner skips such epochs).
///
/// This is the policy-scoring kernel the `scale/` benches drive:
///
/// ```
/// use fedl_core::columnar::scale_context;
/// use fedl_core::{FedLConfig, FedLPolicy, SelectionPolicy};
/// use fedl_net::{ChannelModel, LatencyModel};
/// use fedl_sim::{ClientColumns, EnvConfig};
///
/// let config = EnvConfig::small(48, 9);
/// let channel = ChannelModel::default();
/// let cols = ClientColumns::build(&config, &channel);
/// let e0 = cols.epoch_columns(0, &config, &channel);
/// let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
/// // Epoch 0 hints from its own realization, like the runner.
/// let ctx = scale_context(&cols, &e0, &e0, &latency, 500.0, 6, config.seed)
///     .expect("someone is available at epoch 0");
/// ctx.validate();
///
/// let mut policy = FedLPolicy::new(FedLConfig::default(), cols.len(), 500.0, 6);
/// let decision = policy.select(&ctx);
/// assert!(decision.cohort.len() >= ctx.effective_n());
/// assert!(decision.cohort.iter().all(|k| ctx.available.contains(k)));
/// ```
pub fn scale_context(
    cols: &ClientColumns,
    hint: &EpochColumns,
    now: &EpochColumns,
    latency: &LatencyModel,
    remaining_budget: f64,
    min_participants: usize,
    seed: u64,
) -> Option<EpochContext> {
    let available = now.available_ids();
    if available.is_empty() {
        return None;
    }
    let k = available.len();
    let share = min_participants.max(1);

    let mut costs = vec![0.0f64; k];
    par_zip_chunks(&mut costs, 1, &available, 1, |_, c, id| c[0] = now.cost[id[0]]);
    let mut volumes = vec![0usize; k];
    par_zip_chunks(&mut volumes, 1, &available, 1, |_, d, id| {
        d[0] = now.data_volume[id[0]] as usize;
    });

    Some(EpochContext {
        epoch: now.epoch,
        num_clients: cols.len(),
        latency_hint: nominal_latency(cols, hint, latency, share, &available),
        true_latency: nominal_latency(cols, now, latency, share, &available),
        loss_hint: vec![(10.0f64).ln(); k],
        available,
        costs,
        data_volumes: volumes,
        remaining_budget,
        min_participants,
        seed,
    })
}

/// One shard's contribution to an [`EpochContext`] — the unit a
/// `fedl-dist` worker computes locally and ships to the coordinator.
///
/// All vectors are aligned to `available` (the shard's available clients
/// as *global* ids, ascending). Because shards are contiguous id ranges,
/// concatenating parts in shard order reproduces the full context's
/// ascending `available` ordering exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextPart {
    /// The realized epoch index.
    pub epoch: usize,
    /// Available clients of this shard (global ids, ascending).
    pub available: Vec<usize>,
    /// Rental cost per available client.
    pub costs: Vec<f64>,
    /// 0-lookahead latency estimate (hint epoch's channel state).
    pub latency_hint: Vec<f64>,
    /// The current epoch's realized latency (oracle-only column).
    pub true_latency: Vec<f64>,
    /// Fresh data volume per available client.
    pub data_volumes: Vec<usize>,
}

/// Computes one shard's [`ContextPart`] from (possibly shard-partial)
/// epoch realizations — the worker half of the distributed
/// [`scale_context`] split.
///
/// `hint` and `now` only need valid rows inside `shard` (see
/// [`fedl_sim::ClientColumns::epoch_columns_partial`]); ids outside the
/// shard are never touched. The latency arithmetic is per-client
/// independent, so each value is bit-identical to the one the
/// single-process [`scale_context`] would compute for the same client.
pub fn scale_context_part(
    cols: &ClientColumns,
    hint: &EpochColumns,
    now: &EpochColumns,
    latency: &LatencyModel,
    min_participants: usize,
    shard: std::ops::Range<usize>,
) -> ContextPart {
    let available: Vec<usize> = shard.filter(|&k| now.available[k]).collect();
    let n = available.len();
    let share = min_participants.max(1);
    let mut costs = vec![0.0f64; n];
    par_zip_chunks(&mut costs, 1, &available, 1, |_, c, id| c[0] = now.cost[id[0]]);
    let mut volumes = vec![0usize; n];
    par_zip_chunks(&mut volumes, 1, &available, 1, |_, d, id| {
        d[0] = now.data_volume[id[0]] as usize;
    });
    ContextPart {
        epoch: now.epoch,
        latency_hint: nominal_latency(cols, hint, latency, share, &available),
        true_latency: nominal_latency(cols, now, latency, share, &available),
        available,
        costs,
        data_volumes: volumes,
    }
}

/// Merges shard [`ContextPart`]s into the full [`EpochContext`] — the
/// coordinator half of the distributed [`scale_context`] split.
///
/// `parts` must arrive in shard order (ascending id ranges); simple
/// concatenation then reproduces the single-process context column for
/// column, bit for bit — there is no floating-point reduction in this
/// merge at all, which is what makes it trivially associative. Returns
/// `None` when no client is available anywhere, matching
/// [`scale_context`].
///
/// # Panics
/// Panics if the parts disagree on the epoch or break ascending-id
/// order (shards delivered out of order).
pub fn assemble_context(
    num_clients: usize,
    parts: &[ContextPart],
    remaining_budget: f64,
    min_participants: usize,
    seed: u64,
) -> Option<EpochContext> {
    let epoch = parts.first().map_or(0, |p| p.epoch);
    let mut available = Vec::new();
    let mut costs = Vec::new();
    let mut latency_hint = Vec::new();
    let mut true_latency = Vec::new();
    let mut data_volumes = Vec::new();
    for part in parts {
        assert_eq!(part.epoch, epoch, "context parts span different epochs");
        if let (Some(&last), Some(&first)) = (available.last(), part.available.first()) {
            assert!(last < first, "context parts delivered out of shard order");
        }
        available.extend_from_slice(&part.available);
        costs.extend_from_slice(&part.costs);
        latency_hint.extend_from_slice(&part.latency_hint);
        true_latency.extend_from_slice(&part.true_latency);
        data_volumes.extend_from_slice(&part.data_volumes);
    }
    if available.is_empty() {
        return None;
    }
    let k = available.len();
    Some(EpochContext {
        epoch,
        num_clients,
        latency_hint,
        true_latency,
        loss_hint: vec![(10.0f64).ln(); k],
        available,
        costs,
        data_volumes,
        remaining_budget,
        min_participants,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_net::ChannelModel;
    use fedl_sim::EnvConfig;

    fn setup(n: usize, seed: u64) -> (EnvConfig, ChannelModel, ClientColumns) {
        let config = EnvConfig::small(n, seed);
        let channel = ChannelModel::default();
        let cols = ClientColumns::build(&config, &channel);
        (config, channel, cols)
    }

    #[test]
    fn context_is_aligned_and_valid() {
        let (config, channel, cols) = setup(80, 21);
        let e0 = cols.epoch_columns(0, &config, &channel);
        let e1 = cols.epoch_columns(1, &config, &channel);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        let ctx = scale_context(&cols, &e0, &e1, &latency, 300.0, 5, config.seed).unwrap();
        ctx.validate();
        assert_eq!(ctx.epoch, 1);
        assert_eq!(ctx.num_clients, 80);
        assert_eq!(ctx.available, e1.available_ids());
        for (slot, &k) in ctx.available.iter().enumerate() {
            assert_eq!(ctx.costs[slot].to_bits(), e1.cost[k].to_bits());
            assert_eq!(ctx.data_volumes[slot], e1.data_volume[k] as usize);
        }
        assert!(ctx.latency_hint.iter().all(|&t| t.is_finite() && t > 0.0));
    }

    #[test]
    fn hint_and_truth_differ_when_the_channel_moves() {
        let (config, channel, cols) = setup(60, 22);
        assert!(config.time_varying_channel, "small config should vary the channel");
        let e0 = cols.epoch_columns(0, &config, &channel);
        let e1 = cols.epoch_columns(1, &config, &channel);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        let ctx = scale_context(&cols, &e0, &e1, &latency, 300.0, 5, config.seed).unwrap();
        // Same clients, different epochs realized: the 0-lookahead hint
        // and the oracle column must disagree somewhere.
        assert_ne!(ctx.latency_hint, ctx.true_latency);
    }

    #[test]
    fn nominal_latency_matches_the_scalar_model() {
        let (config, channel, cols) = setup(40, 23);
        let ec = cols.epoch_columns(2, &config, &channel);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        let ids = ec.available_ids();
        let fast = nominal_latency(&cols, &ec, &latency, 4, &ids);
        // Reference: the row-oriented LatencyModel on reconstructed rows.
        let share_model = LatencyModel { bandwidth_hz: latency.bandwidth_hz / 4.0, ..latency };
        let views = ec.views(&cols);
        for (slot, &k) in ids.iter().enumerate() {
            let radios = [&views[k].radio];
            let compute = fedl_net::ComputeProfile {
                cycles_per_bit: cols.cycles_per_bit[k],
                cpu_hz: cols.cpu_hz[k],
            };
            let computes = [&compute];
            let samples = [views[k].data_volume];
            let want = share_model.per_iteration_secs(&radios, &computes, &samples)[0];
            assert_eq!(fast[slot].to_bits(), want.to_bits(), "client {k}");
        }
    }

    #[test]
    fn sharded_parts_assemble_to_the_exact_full_context() {
        let (config, channel, cols) = setup(120, 25);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        for epoch in [0usize, 3, 11] {
            let hint_epoch = epoch.saturating_sub(1);
            let full_hint = cols.epoch_columns(hint_epoch, &config, &channel);
            let full_now = cols.epoch_columns(epoch, &config, &channel);
            let want = scale_context(&cols, &full_hint, &full_now, &latency, 400.0, 5, config.seed)
                .unwrap();
            for bounds in [vec![0usize, 40, 80, 120], vec![0, 120], vec![0, 7, 64, 65, 120]] {
                let parts: Vec<ContextPart> = bounds
                    .windows(2)
                    .map(|w| {
                        let shard = w[0]..w[1];
                        // Workers realize only their own rows.
                        let hint = cols.epoch_columns_partial(
                            hint_epoch,
                            &config,
                            &channel,
                            shard.clone(),
                        );
                        let now =
                            cols.epoch_columns_partial(epoch, &config, &channel, shard.clone());
                        scale_context_part(&cols, &hint, &now, &latency, 5, shard)
                    })
                    .collect();
                let got = assemble_context(cols.len(), &parts, 400.0, 5, config.seed).unwrap();
                assert_eq!(got.available, want.available);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&got.costs), bits(&want.costs));
                assert_eq!(bits(&got.latency_hint), bits(&want.latency_hint));
                assert_eq!(bits(&got.true_latency), bits(&want.true_latency));
                assert_eq!(got.data_volumes, want.data_volumes);
                assert_eq!(got.loss_hint.len(), want.loss_hint.len());
                assert_eq!(got.epoch, want.epoch);
                assert_eq!(got.num_clients, want.num_clients);
            }
        }
    }

    #[test]
    fn empty_availability_yields_no_context() {
        let (config, channel, cols) = setup(10, 24);
        let mut ec = cols.epoch_columns(0, &config, &channel);
        ec.available.iter_mut().for_each(|a| *a = false);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        assert!(scale_context(&cols, &ec, &ec, &latency, 100.0, 3, 1).is_none());
    }
}
