//! Per-client observation state maintained by the online learner.
//!
//! FedL is 0-lookahead: decisions for epoch `t+1` may use only what was
//! observed up to epoch `t`. This module holds that memory — per-client
//! exponential moving averages of the quantities that enter the one-shot
//! objective (latency τ, local convergence accuracy η̂, loss-impact
//! coefficient g = J·d) plus the last fractional decision (the proximal
//! anchor Φ_t of eq. (8)).

use fedl_json::{obj, read_field, FromJson, ToJson, Value};

/// EMA smoothing factor: weight of the newest observation.
const EMA_ALPHA: f64 = 0.5;

/// Observation memory for one client.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Smoothed per-iteration latency estimate (seconds).
    pub tau: f64,
    /// Smoothed local convergence accuracy η̂ ∈ [0, 1).
    pub eta: f64,
    /// Smoothed loss-impact coefficient `g_k = J·d_k` (negative = the
    /// client's updates reduce the global loss).
    pub g: f64,
    /// Last fractional selection value for this client.
    pub last_x: f64,
    /// How many times this client has been observed in a cohort.
    pub observations: usize,
}

impl ClientStats {
    /// Optimistic prior for a never-observed client: moderate latency
    /// hint supplied by the caller, mid-range η̂ (unknown quality), zero
    /// loss impact, and the caller's fractional anchor prior (FedL uses
    /// `n/M` — the selection rate a budget-efficient policy settles at).
    pub fn prior(tau_hint: f64, x0: f64) -> Self {
        Self {
            tau: tau_hint.max(1e-6),
            eta: 0.5,
            g: 0.0,
            last_x: x0.clamp(0.0, 1.0),
            observations: 0,
        }
    }

    /// Folds in a cohort observation.
    pub fn observe(&mut self, tau: f64, eta: f64, g: f64) {
        self.tau = ema(self.tau, tau);
        self.eta = ema(self.eta, eta.clamp(0.0, 0.999));
        self.g = ema(self.g, g);
        self.observations += 1;
    }

    /// Updates only the latency estimate (available for all listed
    /// clients each epoch, selected or not, from the channel model).
    pub fn observe_latency(&mut self, tau: f64) {
        self.tau = ema(self.tau, tau);
    }
}

impl ToJson for ClientStats {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("tau", self.tau.to_json_value()),
            ("eta", self.eta.to_json_value()),
            ("g", self.g.to_json_value()),
            ("last_x", self.last_x.to_json_value()),
            ("observations", self.observations.to_json_value()),
        ])
    }
}

impl FromJson for ClientStats {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            tau: read_field(v, "tau")?,
            eta: read_field(v, "eta")?,
            g: read_field(v, "g")?,
            last_x: read_field(v, "last_x")?,
            observations: read_field(v, "observations")?,
        })
    }
}

#[inline]
fn ema(old: f64, new: f64) -> f64 {
    (1.0 - EMA_ALPHA) * old + EMA_ALPHA * new
}

/// The whole federation's observation memory, indexed by client id.
#[derive(Debug, Clone)]
pub struct LearnerState {
    clients: Vec<Option<ClientStats>>,
    /// Anchor prior for never-observed clients.
    prior_x: f64,
    /// Last observed global loss `F_t(w_t^{l_t})` over all clients.
    pub last_global_loss: f64,
    /// Last fractional iteration-control variable ρ.
    pub last_rho: f64,
}

impl LearnerState {
    /// Fresh state for `num_clients` clients with the given fractional
    /// anchor prior.
    pub fn new(num_clients: usize, prior_x: f64) -> Self {
        Self {
            clients: vec![None; num_clients],
            prior_x: prior_x.clamp(0.0, 1.0),
            last_global_loss: f64::NAN,
            last_rho: 2.0,
        }
    }

    /// Number of clients tracked.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// `true` when tracking no clients.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Stats for client `k`, creating the prior on first touch.
    pub fn stats_mut(&mut self, k: usize, tau_hint: f64) -> &mut ClientStats {
        assert!(k < self.clients.len(), "unknown client {k}");
        let prior_x = self.prior_x;
        self.clients[k].get_or_insert_with(|| ClientStats::prior(tau_hint, prior_x))
    }

    /// Read-only stats for client `k` if ever touched.
    pub fn stats(&self, k: usize) -> Option<&ClientStats> {
        self.clients.get(k).and_then(Option::as_ref)
    }
}

impl ToJson for LearnerState {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("clients", self.clients.to_json_value()),
            ("prior_x", self.prior_x.to_json_value()),
            ("last_global_loss", self.last_global_loss.to_json_value()),
            ("last_rho", self.last_rho.to_json_value()),
        ])
    }
}

impl FromJson for LearnerState {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            clients: read_field(v, "clients")?,
            prior_x: read_field(v, "prior_x")?,
            last_global_loss: read_field(v, "last_global_loss")?,
            last_rho: read_field(v, "last_rho")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_is_sane() {
        let s = ClientStats::prior(0.1, 0.5);
        assert_eq!(s.tau, 0.1);
        assert_eq!(s.eta, 0.5);
        assert_eq!(s.g, 0.0);
        assert_eq!(s.observations, 0);
    }

    #[test]
    fn observe_moves_toward_new_values() {
        let mut s = ClientStats::prior(1.0, 0.5);
        s.observe(3.0, 0.9, -2.0);
        assert!(s.tau > 1.0 && s.tau < 3.0);
        assert!(s.eta > 0.5 && s.eta < 0.9);
        assert!(s.g < 0.0 && s.g > -2.0);
        assert_eq!(s.observations, 1);
        // Repeated observation converges.
        for _ in 0..50 {
            s.observe(3.0, 0.9, -2.0);
        }
        assert!((s.tau - 3.0).abs() < 1e-6);
        assert!((s.eta - 0.9).abs() < 1e-6);
        assert!((s.g + 2.0).abs() < 1e-6);
    }

    #[test]
    fn eta_clamped_below_one() {
        let mut s = ClientStats::prior(1.0, 0.5);
        for _ in 0..100 {
            s.observe(1.0, 5.0, 0.0);
        }
        assert!(s.eta < 1.0);
    }

    #[test]
    fn state_creates_priors_lazily() {
        let mut st = LearnerState::new(4, 0.3);
        assert!(st.stats(2).is_none());
        st.stats_mut(2, 0.7).observe(1.0, 0.3, 0.0);
        assert!(st.stats(2).is_some());
        assert!(st.stats(1).is_none());
        assert_eq!(st.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn out_of_range_client_rejected() {
        let mut st = LearnerState::new(2, 0.3);
        let _ = st.stats_mut(5, 0.1);
    }
}
