//! Per-client observation state maintained by the online learner.
//!
//! FedL is 0-lookahead: decisions for epoch `t+1` may use only what was
//! observed up to epoch `t`. This module holds that memory — per-client
//! exponential moving averages of the quantities that enter the one-shot
//! objective (latency τ, local convergence accuracy η̂, loss-impact
//! coefficient g = J·d) plus the last fractional decision (the proximal
//! anchor Φ_t of eq. (8)).
//!
//! Since the million-client scale-out (docs/SCALE.md), [`LearnerState`]
//! stores this memory as parallel columns ([`ScoreColumns`]) rather
//! than a `Vec<Option<ClientStats>>`: the per-epoch UCB score update is
//! then a handful of dense kernel passes over the columns instead of a
//! per-client pointer chase. [`ClientStats`] is retained as the scalar
//! reference — its `prior`/`observe`/`observe_latency` arithmetic is
//! what every column kernel replicates, held bit-identical by the
//! parity tests — and as the row view [`LearnerState::stats`]
//! materializes. The JSON snapshot layout (a `clients` array of
//! per-client objects or nulls) is unchanged from the row-oriented
//! representation, so existing fedl-store checkpoints load unmodified.

use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_linalg::par::par_zip_chunks_grained;

/// EMA smoothing factor: weight of the newest observation.
const EMA_ALPHA: f64 = 0.5;

/// Sequential grain for the column passes: federations up to this size
/// run the fold inline (zero dispatch, zero allocation); the large scale
/// tiers fan out to the worker pool. Scheduling only — per-element
/// arithmetic is independent, so results are bit-identical either way.
const COLUMN_GRAIN: usize = 2048;

/// Observation memory for one client.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Smoothed per-iteration latency estimate (seconds).
    pub tau: f64,
    /// Smoothed local convergence accuracy η̂ ∈ [0, 1).
    pub eta: f64,
    /// Smoothed loss-impact coefficient `g_k = J·d_k` (negative = the
    /// client's updates reduce the global loss).
    pub g: f64,
    /// Last fractional selection value for this client.
    pub last_x: f64,
    /// How many times this client has been observed in a cohort.
    pub observations: usize,
}

impl ClientStats {
    /// Optimistic prior for a never-observed client: moderate latency
    /// hint supplied by the caller, mid-range η̂ (unknown quality), zero
    /// loss impact, and the caller's fractional anchor prior (FedL uses
    /// `n/M` — the selection rate a budget-efficient policy settles at).
    pub fn prior(tau_hint: f64, x0: f64) -> Self {
        Self {
            tau: tau_hint.max(1e-6),
            eta: 0.5,
            g: 0.0,
            last_x: x0.clamp(0.0, 1.0),
            observations: 0,
        }
    }

    /// Folds in a cohort observation.
    pub fn observe(&mut self, tau: f64, eta: f64, g: f64) {
        self.tau = ema(self.tau, tau);
        self.eta = ema(self.eta, eta.clamp(0.0, 0.999));
        self.g = ema(self.g, g);
        self.observations += 1;
    }

    /// Updates only the latency estimate (available for all listed
    /// clients each epoch, selected or not, from the channel model).
    pub fn observe_latency(&mut self, tau: f64) {
        self.tau = ema(self.tau, tau);
    }
}

impl ToJson for ClientStats {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("tau", self.tau.to_json_value()),
            ("eta", self.eta.to_json_value()),
            ("g", self.g.to_json_value()),
            ("last_x", self.last_x.to_json_value()),
            ("observations", self.observations.to_json_value()),
        ])
    }
}

impl FromJson for ClientStats {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            tau: read_field(v, "tau")?,
            eta: read_field(v, "eta")?,
            g: read_field(v, "g")?,
            last_x: read_field(v, "last_x")?,
            observations: read_field(v, "observations")?,
        })
    }
}

#[inline]
fn ema(old: f64, new: f64) -> f64 {
    (1.0 - EMA_ALPHA) * old + EMA_ALPHA * new
}

/// The per-client observation memory as parallel columns
/// (struct-of-arrays; docs/SCALE.md). Row `k` across the columns is the
/// [`ClientStats`] of client `k`; `touched[k]` distinguishes a real row
/// from the all-zeros placeholder of a never-touched client.
#[derive(Debug, Clone)]
pub struct ScoreColumns {
    /// Smoothed per-iteration latency estimates (seconds).
    pub tau: Vec<f64>,
    /// Smoothed local convergence accuracies η̂ ∈ [0, 1).
    pub eta: Vec<f64>,
    /// Smoothed loss-impact coefficients `g_k = J·d_k`.
    pub g: Vec<f64>,
    /// Last fractional selection values (proximal anchors).
    pub last_x: Vec<f64>,
    /// Cohort observation counts (drives the fairness bonus decay).
    pub observations: Vec<usize>,
    /// Whether client `k` has ever been touched (has a prior).
    pub touched: Vec<bool>,
}

/// The whole federation's observation memory, indexed by client id.
///
/// Columnar since the scale-out: reads and the per-epoch latency fold
/// run as dense kernel passes over [`ScoreColumns`]. Every mutation
/// replicates the [`ClientStats`] scalar arithmetic exactly (same EMA,
/// same prior, same clamps), which the parity tests check bit-for-bit
/// against a `Vec<Option<ClientStats>>` shadow.
#[derive(Debug, Clone)]
pub struct LearnerState {
    cols: ScoreColumns,
    /// Anchor prior for never-observed clients.
    prior_x: f64,
    /// Last observed global loss `F_t(w_t^{l_t})` over all clients.
    pub last_global_loss: f64,
    /// Last fractional iteration-control variable ρ.
    pub last_rho: f64,
}

impl LearnerState {
    /// Fresh state for `num_clients` clients with the given fractional
    /// anchor prior.
    pub fn new(num_clients: usize, prior_x: f64) -> Self {
        Self {
            cols: ScoreColumns {
                tau: vec![0.0; num_clients],
                eta: vec![0.0; num_clients],
                g: vec![0.0; num_clients],
                last_x: vec![0.0; num_clients],
                observations: vec![0; num_clients],
                touched: vec![false; num_clients],
            },
            prior_x: prior_x.clamp(0.0, 1.0),
            last_global_loss: f64::NAN,
            last_rho: 2.0,
        }
    }

    /// Number of clients tracked.
    pub fn len(&self) -> usize {
        self.cols.touched.len()
    }

    /// `true` when tracking no clients.
    pub fn is_empty(&self) -> bool {
        self.cols.touched.is_empty()
    }

    /// Read access to the columns (policy scoring gathers from these).
    pub fn columns(&self) -> &ScoreColumns {
        &self.cols
    }

    /// The anchor prior for never-observed clients.
    pub fn prior_x(&self) -> f64 {
        self.prior_x
    }

    /// Creates client `k`'s prior row if it has never been touched
    /// (scalar form of the prior pass; [`ClientStats::prior`]).
    ///
    /// # Panics
    /// Panics on an out-of-range client id.
    pub fn ensure_touched(&mut self, k: usize, tau_hint: f64) {
        assert!(k < self.len(), "unknown client {k}");
        if !self.cols.touched[k] {
            let p = ClientStats::prior(tau_hint, self.prior_x);
            self.cols.tau[k] = p.tau;
            self.cols.eta[k] = p.eta;
            self.cols.g[k] = p.g;
            self.cols.last_x[k] = p.last_x;
            self.cols.observations[k] = p.observations;
            self.cols.touched[k] = true;
        }
    }

    /// The per-epoch UCB score-update kernel (docs/SCALE.md): for every
    /// client with `mask[k]` set, create the prior row on first touch
    /// and fold the dense latency hint into τ by EMA — exactly
    /// `stats_mut(k, hint).observe_latency(hint)` of the scalar path,
    /// for all masked clients at once, as sharded column passes.
    ///
    /// # Panics
    /// Panics if `mask` or `hint` is not exactly one entry per client.
    pub fn fold_latency(&mut self, mask: &[bool], hint: &[f64]) {
        let m = self.len();
        assert_eq!(mask.len(), m, "mask arity");
        assert_eq!(hint.len(), m, "hint arity");
        let touched = &self.cols.touched;
        // τ pass: EMA for touched rows, prior-then-EMA for fresh ones.
        par_zip_chunks_grained(&mut self.cols.tau, 1, hint, 1, COLUMN_GRAIN, |k, tau, h| {
            if mask[k] {
                let old = if touched[k] { tau[0] } else { h[0].max(1e-6) };
                tau[0] = ema(old, h[0]);
            }
        });
        // Prior passes for the remaining columns of fresh rows.
        let prior = ClientStats::prior(1.0, self.prior_x);
        par_zip_chunks_grained(&mut self.cols.eta, 1, mask, 1, COLUMN_GRAIN, |k, eta, m| {
            if m[0] && !touched[k] {
                eta[0] = prior.eta;
            }
        });
        par_zip_chunks_grained(&mut self.cols.g, 1, mask, 1, COLUMN_GRAIN, |k, g, m| {
            if m[0] && !touched[k] {
                g[0] = prior.g;
            }
        });
        par_zip_chunks_grained(&mut self.cols.last_x, 1, mask, 1, COLUMN_GRAIN, |k, x, m| {
            if m[0] && !touched[k] {
                x[0] = prior.last_x;
            }
        });
        // Membership pass last — the other passes read the old mask.
        par_zip_chunks_grained(&mut self.cols.touched, 1, mask, 1, COLUMN_GRAIN, |_, t, m| {
            t[0] |= m[0]
        });
    }

    /// Folds a realized cohort observation into client `k`'s row —
    /// exactly `stats_mut(k, tau_hint).observe(tau, eta, g)` of the
    /// scalar path (prior on first touch, then EMA folds and an
    /// observation-count bump).
    pub fn observe_cohort(&mut self, k: usize, tau_hint: f64, tau: f64, eta: f64, g: f64) {
        self.ensure_touched(k, tau_hint);
        self.cols.tau[k] = ema(self.cols.tau[k], tau);
        self.cols.eta[k] = ema(self.cols.eta[k], eta.clamp(0.0, 0.999));
        self.cols.g[k] = ema(self.cols.g[k], g);
        self.cols.observations[k] += 1;
    }

    /// Overwrites client `k`'s proximal anchor with the latest
    /// fractional decision.
    pub fn set_anchor(&mut self, k: usize, x: f64) {
        self.cols.last_x[k] = x;
    }

    /// Read-only stats for client `k` if ever touched, materialized as
    /// the scalar row view.
    pub fn stats(&self, k: usize) -> Option<ClientStats> {
        if k < self.len() && self.cols.touched[k] {
            Some(ClientStats {
                tau: self.cols.tau[k],
                eta: self.cols.eta[k],
                g: self.cols.g[k],
                last_x: self.cols.last_x[k],
                observations: self.cols.observations[k],
            })
        } else {
            None
        }
    }
}

impl ToJson for LearnerState {
    /// Serializes the columns as the original row-oriented layout (a
    /// `clients` array of per-client objects, `null` for never-touched
    /// rows) so checkpoints predating the columnar store stay loadable
    /// and the snapshot schema version is unchanged (docs/CHECKPOINT.md).
    fn to_json_value(&self) -> Value {
        let clients: Vec<Option<ClientStats>> = (0..self.len()).map(|k| self.stats(k)).collect();
        obj(vec![
            ("clients", clients.to_json_value()),
            ("prior_x", self.prior_x.to_json_value()),
            ("last_global_loss", self.last_global_loss.to_json_value()),
            ("last_rho", self.last_rho.to_json_value()),
        ])
    }
}

impl FromJson for LearnerState {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        let clients: Vec<Option<ClientStats>> = read_field(v, "clients")?;
        let mut state = LearnerState::new(clients.len(), read_field(v, "prior_x")?);
        state.prior_x = read_field(v, "prior_x")?;
        state.last_global_loss = read_field(v, "last_global_loss")?;
        state.last_rho = read_field(v, "last_rho")?;
        for (k, row) in clients.into_iter().enumerate() {
            if let Some(s) = row {
                state.cols.tau[k] = s.tau;
                state.cols.eta[k] = s.eta;
                state.cols.g[k] = s.g;
                state.cols.last_x[k] = s.last_x;
                state.cols.observations[k] = s.observations;
                state.cols.touched[k] = true;
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_is_sane() {
        let s = ClientStats::prior(0.1, 0.5);
        assert_eq!(s.tau, 0.1);
        assert_eq!(s.eta, 0.5);
        assert_eq!(s.g, 0.0);
        assert_eq!(s.observations, 0);
    }

    #[test]
    fn observe_moves_toward_new_values() {
        let mut s = ClientStats::prior(1.0, 0.5);
        s.observe(3.0, 0.9, -2.0);
        assert!(s.tau > 1.0 && s.tau < 3.0);
        assert!(s.eta > 0.5 && s.eta < 0.9);
        assert!(s.g < 0.0 && s.g > -2.0);
        assert_eq!(s.observations, 1);
        // Repeated observation converges.
        for _ in 0..50 {
            s.observe(3.0, 0.9, -2.0);
        }
        assert!((s.tau - 3.0).abs() < 1e-6);
        assert!((s.eta - 0.9).abs() < 1e-6);
        assert!((s.g + 2.0).abs() < 1e-6);
    }

    #[test]
    fn eta_clamped_below_one() {
        let mut s = ClientStats::prior(1.0, 0.5);
        for _ in 0..100 {
            s.observe(1.0, 5.0, 0.0);
        }
        assert!(s.eta < 1.0);
    }

    #[test]
    fn state_creates_priors_lazily() {
        let mut st = LearnerState::new(4, 0.3);
        assert!(st.stats(2).is_none());
        st.observe_cohort(2, 0.7, 1.0, 0.3, 0.0);
        assert!(st.stats(2).is_some());
        assert!(st.stats(1).is_none());
        assert_eq!(st.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn out_of_range_client_rejected() {
        let mut st = LearnerState::new(2, 0.3);
        st.observe_cohort(5, 0.1, 1.0, 0.5, 0.0);
    }

    /// The columnar latency fold must replicate the scalar
    /// `stats_mut(k, hint).observe_latency(hint)` loop bit-for-bit,
    /// including prior creation on first touch.
    #[test]
    fn fold_latency_matches_scalar_shadow() {
        let m = 50;
        let mut st = LearnerState::new(m, 0.2);
        let mut shadow: Vec<Option<ClientStats>> = vec![None; m];
        for round in 0..7u64 {
            let mask: Vec<bool> = (0..m).map(|k| !(k as u64 + round).is_multiple_of(3)).collect();
            let hint: Vec<f64> =
                (0..m).map(|k| 0.05 + 0.01 * ((k as u64 + round) % 9) as f64).collect();
            st.fold_latency(&mask, &hint);
            for (k, slot) in shadow.iter_mut().enumerate() {
                if mask[k] {
                    slot.get_or_insert_with(|| ClientStats::prior(hint[k], 0.2))
                        .observe_latency(hint[k]);
                }
            }
        }
        for (k, slot) in shadow.iter().enumerate() {
            match (slot, st.stats(k)) {
                (None, None) => {}
                (Some(s), Some(c)) => {
                    assert_eq!(s.tau.to_bits(), c.tau.to_bits(), "client {k}");
                    assert_eq!(s.eta.to_bits(), c.eta.to_bits());
                    assert_eq!(s.last_x.to_bits(), c.last_x.to_bits());
                    assert_eq!(s.observations, c.observations);
                }
                (s, c) => panic!("client {k}: shadow {s:?} vs columns {c:?}"),
            }
        }
    }

    /// The snapshot layout must be the pre-columnar one: a `clients`
    /// array of objects-or-nulls (docs/CHECKPOINT.md).
    #[test]
    fn json_layout_is_row_oriented_and_round_trips() {
        let mut st = LearnerState::new(3, 0.4);
        st.observe_cohort(1, 0.3, 2.0, 0.6, -1.0);
        st.last_global_loss = 1.25;
        let json = st.to_json_value().to_json();
        assert!(json.starts_with("{\"clients\":[null,{\"tau\":"), "{json}");
        let back = LearnerState::from_json_value(&fedl_json::Value::parse(&json).expect("parse"))
            .expect("decode");
        assert_eq!(back.to_json_value().to_json(), json);
        assert_eq!(back.stats(1).unwrap().observations, 1);
        assert!(back.stats(0).is_none());
    }
}
