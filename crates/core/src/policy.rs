//! The selection-policy abstraction every scheme (FedL and the three
//! baselines) implements, and the observable context the runner hands to
//! a 0-lookahead policy each epoch.

use fedl_sim::EpochReport;

use crate::baselines::{FedAvgPolicy, FedCsPolicy, PowDPolicy};
use crate::fedl::{FedLConfig, FedLPolicy};

/// Everything a 0-lookahead policy may legitimately see when selecting
/// the epoch-`t` cohort: current availability and prices (known at
/// rental time) plus *estimates* carried over from earlier epochs.
#[derive(Debug, Clone)]
pub struct EpochContext {
    /// Epoch index `t`.
    pub epoch: usize,
    /// Total number of clients `M` in the federation.
    pub num_clients: usize,
    /// Ids of the available clients `E_t`.
    pub available: Vec<usize>,
    /// Rental costs `c_{t,k}`, aligned with `available`.
    pub costs: Vec<f64>,
    /// Advertised data volumes `D_{t,k}`, aligned with `available`.
    pub data_volumes: Vec<usize>,
    /// Per-iteration latency estimates from the *previous* epoch's
    /// channel state (nominal FDMA share of `n`), aligned with
    /// `available`.
    pub latency_hint: Vec<f64>,
    /// Last-known local loss per available client (global-loss prior for
    /// never-observed clients), aligned with `available`.
    pub loss_hint: Vec<f64>,
    /// The *current* epoch's realized per-iteration latency, aligned
    /// with `available`. This is 1-lookahead information that a real
    /// deployment does not have; only the [`crate::baselines::OraclePolicy`]
    /// reference may read it. Online policies must use `latency_hint`.
    pub true_latency: Vec<f64>,
    /// Remaining long-term budget.
    pub remaining_budget: f64,
    /// Participation floor `n` (constraint (3b)).
    pub min_participants: usize,
    /// Root seed for policy-internal randomness.
    pub seed: u64,
}

impl EpochContext {
    /// Validates alignment between the per-client vectors.
    ///
    /// # Panics
    /// Panics on arity mismatch — a runner bug.
    pub fn validate(&self) {
        let k = self.available.len();
        assert_eq!(self.costs.len(), k, "costs arity");
        assert_eq!(self.data_volumes.len(), k, "data_volumes arity");
        assert_eq!(self.latency_hint.len(), k, "latency_hint arity");
        assert_eq!(self.loss_hint.len(), k, "loss_hint arity");
        assert_eq!(self.true_latency.len(), k, "true_latency arity");
        assert!(self.min_participants > 0, "participation floor must be positive");
    }

    /// The effective participation floor `min(n, |E_t|)`.
    pub fn effective_n(&self) -> usize {
        self.min_participants.min(self.available.len()).max(1)
    }
}

/// A policy's decision for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionDecision {
    /// Selected client ids (must all be available).
    pub cohort: Vec<usize>,
    /// Number of federated iterations `l_t` to run.
    pub iterations: usize,
}

/// A client-selection scheme.
pub trait SelectionPolicy: Send {
    /// Human-readable scheme name (used in figure legends).
    fn name(&self) -> &'static str;

    /// Chooses the epoch's cohort and iteration count.
    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision;

    /// Feeds back the realized outcome of the epoch this policy chose.
    fn observe(&mut self, _ctx: &EpochContext, _report: &EpochReport) {}

    /// The dynamic regret/fit tracker, for policies that maintain one
    /// (FedL does; the baselines return `None`). Used by the
    /// theory-validation benches.
    fn regret_tracker(&self) -> Option<&crate::regret::RegretTracker> {
        None
    }

    /// The policy's current scalar quality estimate for `client` —
    /// FedL reports its smoothed local-convergence accuracy η̂ₖ; the
    /// memoryless baselines keep the default `None`. The runner records
    /// this on the per-epoch `select` telemetry event so offline
    /// analysis (the attribution dashboard) can show what the policy
    /// believed about each client it rented.
    fn client_estimate(&self, _client: usize) -> Option<f64> {
        None
    }

    /// Serializes every piece of cross-epoch mutable state (learned
    /// estimates, multipliers, RNG streams) for a run checkpoint, such
    /// that a freshly built policy of the same kind and configuration
    /// restored from it continues the run identically (the `fedl-store`
    /// contract; schema in docs/CHECKPOINT.md). Policies with no
    /// cross-epoch state keep the default, which snapshots to `null`.
    fn snapshot_state(&self) -> fedl_json::Value {
        fedl_json::Value::Null
    }

    /// Restores state produced by [`SelectionPolicy::snapshot_state`].
    ///
    /// Must only be called between epochs (never between a `select` and
    /// its `observe`) on a policy built with the same configuration that
    /// produced the snapshot.
    fn restore_state(&mut self, state: &fedl_json::Value) -> Result<(), fedl_json::Error> {
        match state {
            fedl_json::Value::Null => Ok(()),
            _ => Err(fedl_json::Error::msg(format!(
                "policy {} is stateless but the checkpoint carries policy state",
                self.name()
            ))),
        }
    }
}

/// The schemes evaluated in the paper's §6, plus a 1-lookahead oracle
/// reference used in regret analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's contribution (online learning + RDCS).
    FedL,
    /// Random selection (McMahan et al. \[19\]).
    FedAvg,
    /// Deadline-constrained maximal selection (Nishio & Yonetani \[21\]).
    FedCS,
    /// Power-of-choice by local loss (Cho et al. \[5\]).
    PowD,
    /// Latency oracle: sees the current epoch's realized latencies
    /// (1-lookahead) and picks the `n` fastest clients — the hindsight
    /// comparator of the paper's per-epoch `f_t` minimization.
    Oracle,
}

impl PolicyKind {
    /// The paper's four schemes, in its plotting order ([`PolicyKind::Oracle`]
    /// is a reference, not a competitor, so it is excluded).
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::FedL, PolicyKind::FedCS, PolicyKind::FedAvg, PolicyKind::PowD];

    /// Instantiates the policy. `num_clients`, `budget`, and
    /// `min_participants` size FedL's state and Corollary-1 step sizes;
    /// `fedl_config` customizes FedL (ignored by the baselines).
    pub fn build(
        self,
        num_clients: usize,
        budget: f64,
        min_participants: usize,
        fedl_config: FedLConfig,
    ) -> Box<dyn SelectionPolicy> {
        match self {
            PolicyKind::FedL => {
                Box::new(FedLPolicy::new(fedl_config, num_clients, budget, min_participants))
            }
            PolicyKind::FedAvg => Box::new(FedAvgPolicy::new()),
            PolicyKind::FedCS => Box::new(FedCsPolicy::default_deadline()),
            PolicyKind::PowD => Box::new(PowDPolicy::new(2)),
            PolicyKind::Oracle => Box::new(crate::baselines::OraclePolicy::new()),
        }
    }

    /// [`Self::build`] minus FedL's per-epoch regret/fit accounting
    /// (see [`FedLPolicy::without_regret_tracking`]): the tracker's
    /// hindsight-comparator solve costs more than the epoch itself at
    /// service-scale populations, and execution layers that never plot
    /// regret curves don't need it. Selections are bit-identical to
    /// [`Self::build`]'s; the baselines are unaffected.
    pub fn build_untracked(
        self,
        num_clients: usize,
        budget: f64,
        min_participants: usize,
        fedl_config: FedLConfig,
    ) -> Box<dyn SelectionPolicy> {
        match self {
            PolicyKind::FedL => Box::new(
                FedLPolicy::new(fedl_config, num_clients, budget, min_participants)
                    .without_regret_tracking(),
            ),
            other => other.build(num_clients, budget, min_participants, fedl_config),
        }
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::FedL => "FedL",
            PolicyKind::FedAvg => "FedAvg",
            PolicyKind::FedCS => "FedCS",
            PolicyKind::PowD => "Pow-d",
            PolicyKind::Oracle => "Oracle",
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// A small, fully populated context for policy unit tests.
    pub fn ctx(available: Vec<usize>, costs: Vec<f64>, budget: f64, n: usize) -> EpochContext {
        let k = available.len();
        let c = EpochContext {
            epoch: 0,
            num_clients: available.iter().copied().max().map_or(1, |m| m + 1),
            available,
            costs,
            data_volumes: vec![20; k],
            latency_hint: (0..k).map(|i| 0.1 + 0.05 * i as f64).collect(),
            loss_hint: (0..k).map(|i| 2.0 + 0.1 * i as f64).collect(),
            true_latency: (0..k).map(|i| 0.1 + 0.05 * i as f64).collect(),
            remaining_budget: budget,
            min_participants: n,
            seed: 7,
        };
        c.validate();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_util::ctx;

    #[test]
    fn context_validation_catches_misalignment() {
        let mut c = ctx(vec![0, 1, 2], vec![1.0, 2.0, 3.0], 10.0, 2);
        c.costs.pop();
        let result = std::panic::catch_unwind(move || c.validate());
        assert!(result.is_err());
    }

    #[test]
    fn effective_n_caps_at_availability() {
        let c = ctx(vec![0, 1], vec![1.0, 1.0], 10.0, 5);
        assert_eq!(c.effective_n(), 2);
    }

    #[test]
    fn all_policies_build_and_name() {
        for kind in PolicyKind::ALL {
            let p = kind.build(10, 100.0, 3, FedLConfig::default());
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn every_policy_returns_valid_decision() {
        let c = ctx(vec![0, 1, 2, 3, 4], vec![1.0, 2.0, 3.0, 4.0, 5.0], 50.0, 2);
        for kind in PolicyKind::ALL {
            let mut p = kind.build(5, 50.0, 2, FedLConfig::default());
            let d = p.select(&c);
            assert!(!d.cohort.is_empty(), "{} selected nobody", p.name());
            assert!(d.iterations >= 1, "{} ran zero iterations", p.name());
            assert!(
                d.cohort.iter().all(|id| c.available.contains(id)),
                "{} selected an unavailable client",
                p.name()
            );
            let mut sorted = d.cohort.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), d.cohort.len(), "{} duplicated a client", p.name());
        }
    }
}
