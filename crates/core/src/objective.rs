//! The one-shot decision problem `P_{3,t}` and the modified descent step
//! (paper eqs. (6)–(8)).
//!
//! Decision vector `z = [x₁ … x_K, ρ]` over the available clients `E`,
//! where `ρ = 1/(1−η_t)` is the iteration-control variable. All
//! coefficients come from epoch-`t` *observations* (0-lookahead), except
//! costs and availability, which are known at rental time.

use fedl_linalg::par::{det_dot, det_sum};
use fedl_solver::{minimize, BoxSet, DykstraIntersection, Halfspace, PgdOptions};

/// Fractional decision `Φ̃ = (x̃, ρ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FracDecision {
    /// Fractional selection per available client, aligned with
    /// [`OneShot::ids`].
    pub x: Vec<f64>,
    /// Iteration-control variable ρ ≥ 1 (`l_t = ⌈ρ⌉`).
    pub rho: f64,
}

impl FracDecision {
    /// Number of iterations implied by ρ (the paper normalizes
    /// `O(log 1/θ₀)` to 1, so `l_t = ⌈1/(1−η_t)⌉ = ⌈ρ⌉`).
    pub fn iterations(&self) -> usize {
        (self.rho.ceil() as usize).max(1)
    }

    /// The maximal local accuracy `η_t = 1 − 1/ρ` this ρ admits.
    pub fn eta(&self) -> f64 {
        1.0 - 1.0 / self.rho.max(1.0)
    }
}

/// Coefficients of one epoch's decision problem.
#[derive(Debug, Clone, Default)]
pub struct OneShot {
    /// Available client ids `E` (decision coordinates map 1:1 to these).
    pub ids: Vec<usize>,
    /// Per-iteration latency estimates τ_k (from the last observation).
    pub tau: Vec<f64>,
    /// Rental costs `c_{t,k}` (known at decision time).
    pub costs: Vec<f64>,
    /// Observed local convergence accuracies η̂_k ∈ [0, 1).
    pub eta: Vec<f64>,
    /// Observed loss-impact coefficients `g_k = J·d_k` (negative is
    /// good: selecting k reduced the global loss).
    pub g: Vec<f64>,
    /// Per-client selection bonus subtracted from the descent objective
    /// (`−Σ bonus_k·x_k`). Zeros reproduce the paper's FedL; the
    /// fairness-aware extension (the paper's stated future work) sets
    /// `bonus_k ∝ 1/(1 + times-selected)` so starved clients get a
    /// standing discount. Does not enter `f_t` (it is not latency).
    pub bonus: Vec<f64>,
    /// Last observed global loss `F_t(w)` over all clients.
    pub loss_all: f64,
    /// Desired global loss upper bound θ (constraint (3d)).
    pub theta: f64,
    /// Minimum participants `n` (constraint (3b)).
    pub min_participants: usize,
    /// Remaining long-term budget (constraint (3a), cumulative form).
    pub budget: f64,
    /// Upper bound for ρ (keeps `l_t` practical).
    pub rho_max: f64,
}

impl OneShot {
    /// Number of decision coordinates (K clients + ρ).
    pub fn dim(&self) -> usize {
        self.ids.len() + 1
    }

    fn check(&self) {
        let k = self.ids.len();
        assert!(k > 0, "one-shot problem with no available clients");
        assert_eq!(self.tau.len(), k, "tau arity");
        assert_eq!(self.costs.len(), k, "costs arity");
        assert_eq!(self.eta.len(), k, "eta arity");
        assert_eq!(self.g.len(), k, "g arity");
        assert_eq!(self.bonus.len(), k, "bonus arity");
        assert!(self.rho_max >= 1.0, "rho_max below 1");
        assert!(self.theta > 0.0, "theta must be positive");
    }

    /// Effective participation floor: `min(n, K)` — the paper's
    /// constraint assumes `n ≤ |E_t|`; when fewer clients are available
    /// the floor drops to what exists.
    pub fn effective_n(&self) -> usize {
        self.min_participants.min(self.ids.len()).max(1)
    }

    /// The constraint vector `h_t(z) = [h⁰, h¹ … h^K]` (paper §4.2):
    /// `h⁰ = F_t + ρ·Σ x_k g_k/|E| − θ` (linearized global-convergence
    /// constraint — the epoch runs `l_t = ⌈ρ⌉` iterations, each moving
    /// the loss by the observed per-iteration impact `g_k = J·d_k`, so
    /// the first-order loss model scales with ρ) and
    /// `h^k = η̂_k·x_k·ρ − ρ + 1` (local convergence).
    pub fn h_value(&self, x: &[f64], rho: f64) -> Vec<f64> {
        let mut h = Vec::with_capacity(self.dim());
        self.h_value_into(x, rho, &mut h);
        h
    }

    /// [`OneShot::h_value`] written into a caller-owned vector (cleared
    /// first); steady-state reuse performs no allocation.
    pub fn h_value_into(&self, x: &[f64], rho: f64, h: &mut Vec<f64>) {
        self.check();
        assert_eq!(x.len(), self.ids.len(), "x arity");
        let avail = self.ids.len() as f64;
        h.clear();
        h.reserve(self.dim());
        let mix = det_dot(x, &self.g);
        h.push(self.loss_all + rho * mix / avail - self.theta);
        for (xi, ei) in x.iter().zip(&self.eta) {
            h.push(ei * xi * rho - rho + 1.0);
        }
    }

    /// Overwrites `self` with `other`, reusing the existing vector
    /// buffers (a `clone_from` that actually recycles capacity — the
    /// derived `Clone` would reallocate).
    pub fn copy_from(&mut self, other: &OneShot) {
        self.ids.clone_from(&other.ids);
        self.tau.clone_from(&other.tau);
        self.costs.clone_from(&other.costs);
        self.eta.clone_from(&other.eta);
        self.g.clone_from(&other.g);
        self.bonus.clone_from(&other.bonus);
        self.loss_all = other.loss_all;
        self.theta = other.theta;
        self.min_participants = other.min_participants;
        self.budget = other.budget;
        self.rho_max = other.rho_max;
    }

    /// The (latency) objective `f_t(z) = ρ·Σ x_k·τ_k` (paper §4.2 — the
    /// sum upper-bounds the max via eq. (4)).
    pub fn f_value(&self, x: &[f64], rho: f64) -> f64 {
        assert_eq!(x.len(), self.tau.len(), "x arity");
        rho * det_dot(x, &self.tau)
    }

    /// Gradient of `f_t` at `(x_prev, rho_prev)` — the linearization
    /// point of the descent step.
    pub fn f_grad_at(&self, x_prev: &[f64], rho_prev: f64) -> Vec<f64> {
        assert_eq!(x_prev.len(), self.tau.len(), "x arity");
        let mut grad: Vec<f64> = self.tau.iter().map(|&t| rho_prev * t).collect();
        grad.push(det_dot(x_prev, &self.tau));
        grad
    }

    /// Builds the feasible set
    /// `{x ∈ [0,1]^K, ρ ∈ [1, ρ_max]} ∩ {Σx ≥ n} ∩ {Σc·x ≤ budget}`.
    ///
    /// If the remaining budget cannot cover the `n` cheapest clients the
    /// budget halfspace is relaxed to that minimum so the set stays
    /// non-empty (the overshoot is charged to dynamic fit; the runner's
    /// `while C ≥ 0` loop then stops the FL process).
    pub fn feasible_set(&self) -> DykstraIntersection {
        self.check();
        let k = self.ids.len();
        let mut lo = vec![0.0; k];
        lo.push(1.0);
        let mut hi = vec![1.0; k];
        hi.push(self.rho_max);
        let boxset = BoxSet::new(lo, hi);

        let n = self.effective_n() as f64;
        let mut part_normal = vec![1.0; k];
        part_normal.push(0.0);
        let participation = Halfspace::at_least(part_normal, n);

        let mut sorted = self.costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let min_feasible: f64 = sorted.iter().take(self.effective_n()).sum();
        let cap = self.budget.max(min_feasible);
        let mut cost_normal = self.costs.clone();
        cost_normal.push(0.0);
        let budget_hs = Halfspace::new(cost_normal, cap);

        DykstraIntersection::new(vec![
            Box::new(boxset),
            Box::new(participation),
            Box::new(budget_hs),
        ])
    }

    /// Solves the modified descent step (paper eq. (8)):
    ///
    /// ```text
    /// min_z ∇f_t(z_prev)·(z − z_prev) + μᵀ h_t(z) + ‖z − z_prev‖²/(2β)
    /// ```
    ///
    /// over the feasible set, via projected gradient descent. `mu` is
    /// `[μ⁰, μ¹ … μ^K]` aligned with [`OneShot::h_value`].
    pub fn descend(&self, prev: &FracDecision, mu: &[f64], beta: f64) -> FracDecision {
        self.descend_from(&prev.x, prev.rho, mu, beta)
    }

    /// [`OneShot::descend`] with the anchor passed as bare slices, so
    /// callers holding the anchor in reusable buffers need not assemble
    /// a [`FracDecision`] first.
    pub fn descend_from(
        &self,
        x_prev: &[f64],
        rho_prev: f64,
        mu: &[f64],
        beta: f64,
    ) -> FracDecision {
        self.check();
        let k = self.ids.len();
        assert_eq!(x_prev.len(), k, "anchor arity");
        assert_eq!(mu.len(), k + 1, "multiplier arity");
        assert!(beta > 0.0, "non-positive step size");
        assert!(mu.iter().all(|&m| m >= 0.0), "negative multiplier");

        let mut z_prev: Vec<f64> = x_prev.to_vec();
        z_prev.push(rho_prev.clamp(1.0, self.rho_max));
        let grad_f = self.f_grad_at(x_prev, z_prev[k]);
        let avail = k as f64;

        let objective = {
            let z_prev = z_prev.clone();
            let grad_f = grad_f.clone();
            move |z: &[f64]| {
                let (x, rho) = (&z[..k], z[k]);
                let lin = det_sum(0.0, k + 1, |i| grad_f[i] * (z[i] - z_prev[i]));
                let head = mu[0] * (self.loss_all + rho * det_dot(x, &self.g) / avail - self.theta);
                let dual = det_sum(head, k, |i| mu[1 + i] * (self.eta[i] * x[i] * rho - rho + 1.0));
                let prox =
                    det_sum(0.0, k + 1, |i| (z[i] - z_prev[i]) * (z[i] - z_prev[i])) / (2.0 * beta);
                let fair = det_dot(x, &self.bonus);
                lin + dual + prox - fair
            }
        };
        let gradient = {
            let z_prev = z_prev.clone();
            move |z: &[f64], out: &mut [f64]| {
                let rho = z[k];
                let mix = det_dot(&z[..k], &self.g);
                let head = grad_f[k] + mu[0] * mix / avail + (rho - z_prev[k]) / beta;
                for i in 0..k {
                    out[i] = grad_f[i]
                        + mu[0] * rho * self.g[i] / avail
                        + mu[1 + i] * self.eta[i] * rho
                        + (z[i] - z_prev[i]) / beta
                        - self.bonus[i];
                }
                out[k] = det_sum(head, k, |i| mu[1 + i] * (self.eta[i] * z[i] - 1.0));
            }
        };

        let set = self.feasible_set();
        let opts = PgdOptions { max_iters: 300, tol: 1e-8, ..Default::default() };
        let res = minimize(objective, gradient, &set, &z_prev, &opts);
        // The box part of the feasible set is enforced exactly (rounding
        // requires fractions in [0, 1]); residual halfspace violations —
        // possible when the remaining budget makes the set razor-thin —
        // are charged to dynamic fit rather than hidden here.
        let rho = res.x[k].clamp(1.0, self.rho_max);
        let x = res.x[..k].iter().map(|&v| v.clamp(0.0, 1.0)).collect();
        FracDecision { x, rho }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> OneShot {
        OneShot {
            ids: vec![3, 7, 9, 12],
            tau: vec![0.5, 2.0, 1.0, 4.0],
            costs: vec![1.0, 2.0, 6.0, 0.5],
            eta: vec![0.2, 0.8, 0.5, 0.3],
            g: vec![-1.0, -0.2, -0.6, -0.1],
            bonus: vec![0.0; 4],
            loss_all: 2.0,
            theta: 0.7,
            min_participants: 2,
            budget: 100.0,
            rho_max: 10.0,
        }
    }

    fn anchor() -> FracDecision {
        FracDecision { x: vec![0.5; 4], rho: 2.0 }
    }

    #[test]
    fn iterations_and_eta_mapping() {
        let d = FracDecision { x: vec![], rho: 3.2 };
        assert_eq!(d.iterations(), 4);
        assert!((d.eta() - (1.0 - 1.0 / 3.2)).abs() < 1e-12);
        let unit = FracDecision { x: vec![], rho: 1.0 };
        assert_eq!(unit.iterations(), 1);
        assert_eq!(unit.eta(), 0.0);
    }

    #[test]
    fn h_value_signs() {
        let p = problem();
        // All x = 0: h0 = loss - theta > 0 (violated); h^k = -rho + 1 <= 0.
        let h = p.h_value(&[0.0; 4], 2.0);
        assert!(h[0] > 0.0);
        for &v in &h[1..] {
            assert!((v - (-1.0)).abs() < 1e-12);
        }
        // Selecting loss-reducing clients lowers h0.
        let h_sel = p.h_value(&[1.0; 4], 2.0);
        assert!(h_sel[0] < h[0]);
        // h^k = eta*rho - rho + 1 when x = 1.
        assert!((h_sel[1] - (0.2 * 2.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn f_value_and_gradient_consistent() {
        let p = problem();
        let x = [0.3, 0.7, 0.1, 0.9];
        let rho = 2.5;
        let f = p.f_value(&x, rho);
        // Finite-difference check of f_grad_at.
        let grad = p.f_grad_at(&x, rho);
        let eps = 1e-6;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let fd = (p.f_value(&xp, rho) - f) / eps;
            assert!((grad[i] - fd).abs() < 1e-4, "coord {i}: {} vs {fd}", grad[i]);
        }
        let fd_rho = (p.f_value(&x, rho + eps) - f) / eps;
        assert!((grad[4] - fd_rho).abs() < 1e-4);
    }

    #[test]
    fn descent_output_is_feasible() {
        let p = problem();
        let mu = vec![0.5; 5];
        let d = p.descend(&anchor(), &mu, 0.5);
        assert!(d.x.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
        assert!(d.rho >= 1.0 && d.rho <= p.rho_max);
        let sum: f64 = d.x.iter().sum();
        assert!(sum >= 2.0 - 1e-6, "participation violated: {sum}");
        let cost: f64 = d.x.iter().zip(&p.costs).map(|(x, c)| x * c).sum();
        assert!(cost <= p.budget + 1e-6);
    }

    #[test]
    fn zero_multipliers_minimize_latency_only() {
        // With μ = 0 the step descends pure latency: high-τ clients get
        // pushed down relative to the anchor, low-τ clients kept.
        let p = problem();
        let mu = vec![0.0; 5];
        let d = p.descend(&anchor(), &mu, 1.0);
        // Client 3 (τ=4.0) should fall furthest from the 0.5 anchor;
        // client 0 (τ=0.5) the least.
        assert!(d.x[3] < d.x[0], "{:?}", d.x);
        // Participation floor keeps the sum at n.
        let sum: f64 = d.x.iter().sum();
        assert!(sum >= 2.0 - 1e-6);
    }

    #[test]
    fn convergence_pressure_raises_rho() {
        // Large μ on a local-convergence constraint with selected client
        // must push ρ up relative to the μ = 0 solve.
        let p = problem();
        let low = p.descend(&anchor(), &[0.0; 5], 0.5);
        let mut mu = vec![0.0; 5];
        mu[2] = 50.0; // client with η̂ = 0.8 selected at the anchor
        let high = p.descend(&anchor(), &mu, 0.5);
        assert!(
            high.rho > low.rho,
            "dual pressure should buy more iterations: {} vs {}",
            high.rho,
            low.rho
        );
    }

    #[test]
    fn loss_pressure_favors_helpful_clients() {
        // Large μ⁰ rewards clients with the most negative g.
        let p = problem();
        let mut mu = vec![0.0; 5];
        mu[0] = 100.0;
        let d = p.descend(&anchor(), &mu, 0.5);
        // Client 0 has g = -1.0 (most helpful) -> should be kept highest.
        let best = d.x[0];
        assert!(d.x.iter().all(|&x| x <= best + 1e-9), "{:?}", d.x);
    }

    #[test]
    fn tight_budget_respected() {
        let mut p = problem();
        p.budget = 2.0; // only cheap clients affordable
        let d = p.descend(&anchor(), &[0.0; 5], 0.5);
        let cost: f64 = d.x.iter().zip(&p.costs).map(|(x, c)| x * c).sum();
        assert!(cost <= 2.0 + 1e-6, "cost {cost}");
        let sum: f64 = d.x.iter().sum();
        assert!(sum >= 2.0 - 1e-6, "participation {sum}");
    }

    #[test]
    fn impossible_budget_relaxed_to_cheapest_n() {
        let mut p = problem();
        p.budget = 0.1; // cannot afford 2 clients
        let d = p.descend(&anchor(), &[0.0; 5], 0.5);
        // Feasibility floor: the two cheapest cost 0.5 + 1.0 = 1.5.
        let cost: f64 = d.x.iter().zip(&p.costs).map(|(x, c)| x * c).sum();
        assert!(cost <= 1.5 + 1e-6, "cost {cost}");
        let sum: f64 = d.x.iter().sum();
        assert!(sum >= 2.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "no available clients")]
    fn empty_problem_rejected() {
        let p = OneShot {
            ids: vec![],
            tau: vec![],
            costs: vec![],
            eta: vec![],
            g: vec![],
            bonus: vec![],
            loss_all: 1.0,
            theta: 0.5,
            min_participants: 1,
            budget: 10.0,
            rho_max: 5.0,
        };
        let _ = p.h_value(&[], 1.0);
    }
}
