//! FedCS: deadline-constrained maximal selection (Nishio & Yonetani
//! [21]).
//!
//! FedCS greedily admits as many clients as possible while the estimated
//! epoch time stays under a fixed deadline. The original uses resource
//! requests from clients (1-lookahead); this online port uses the
//! previous epoch's channel/compute estimates, which is the information
//! a 0-lookahead deployment actually has.

use crate::policy::{EpochContext, SelectionDecision, SelectionPolicy};

use super::BASELINE_ITERATIONS;

/// Greedy deadline-packing selection.
pub struct FedCsPolicy {
    /// Per-epoch deadline in simulated seconds.
    deadline_secs: f64,
}

impl FedCsPolicy {
    /// Creates the policy with an explicit per-epoch deadline.
    ///
    /// # Panics
    /// Panics on a non-positive deadline.
    pub fn new(deadline_secs: f64) -> Self {
        assert!(deadline_secs > 0.0, "non-positive deadline");
        Self { deadline_secs }
    }

    /// The default deadline: tight enough to exclude the cell-edge
    /// stragglers but loose enough that FedCS still admits most of the
    /// population — "as many clients as possible" within the round
    /// deadline, as in the original scheme.
    pub fn default_deadline() -> Self {
        Self::new(2.0)
    }
}

impl SelectionPolicy for FedCsPolicy {
    fn name(&self) -> &'static str {
        "FedCS"
    }

    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision {
        ctx.validate();
        // Sort by estimated latency, fastest first (greedy packing).
        let mut order: Vec<usize> = (0..ctx.available.len()).collect();
        order.sort_by(|&a, &b| {
            ctx.latency_hint[a].partial_cmp(&ctx.latency_hint[b]).expect("finite latency hints")
        });
        let budget_per_epoch = ctx.remaining_budget.max(0.0);
        let mut cohort = Vec::new();
        let mut spent = 0.0;
        for &pos in &order {
            // Epoch time estimate: slowest admitted client × iterations.
            let slowest = ctx.latency_hint[pos];
            let projected = slowest * BASELINE_ITERATIONS as f64;
            let affordable = spent + ctx.costs[pos] <= budget_per_epoch;
            if projected <= self.deadline_secs && affordable {
                spent += ctx.costs[pos];
                cohort.push(ctx.available[pos]);
            }
        }
        // FedCS still needs a quorum: fall back to the fastest n if the
        // deadline admitted too few.
        let n = ctx.effective_n();
        if cohort.len() < n {
            cohort = order.iter().take(n).map(|&pos| ctx.available[pos]).collect();
        }
        cohort.sort_unstable();
        SelectionDecision { cohort, iterations: BASELINE_ITERATIONS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    #[test]
    fn admits_everyone_under_generous_deadline() {
        let c = ctx(vec![0, 1, 2, 3], vec![1.0; 4], 100.0, 2);
        let mut p = FedCsPolicy::new(1000.0);
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 4, "generous deadline should admit all");
    }

    #[test]
    fn excludes_slow_clients_under_tight_deadline() {
        let mut c = ctx(vec![0, 1, 2, 3], vec![1.0; 4], 100.0, 1);
        c.latency_hint = vec![0.1, 0.2, 50.0, 60.0];
        // Deadline 1.0 with 3 iterations -> per-iter must be <= 1/3.
        let mut p = FedCsPolicy::new(1.0);
        let d = p.select(&c);
        assert_eq!(d.cohort, vec![0, 1], "slow clients must be excluded");
    }

    #[test]
    fn quorum_fallback_when_deadline_too_tight() {
        let mut c = ctx(vec![0, 1, 2], vec![1.0; 3], 100.0, 2);
        c.latency_hint = vec![10.0, 20.0, 30.0];
        let mut p = FedCsPolicy::new(0.001);
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 2, "must keep the participation floor");
        assert_eq!(d.cohort, vec![0, 1], "fallback picks the fastest");
    }

    #[test]
    fn respects_remaining_budget() {
        let mut c = ctx(vec![0, 1, 2, 3], vec![5.0, 5.0, 5.0, 5.0], 11.0, 1);
        c.latency_hint = vec![0.1, 0.2, 0.3, 0.4];
        let mut p = FedCsPolicy::new(1000.0);
        let d = p.select(&c);
        let cost: f64 = d
            .cohort
            .iter()
            .map(|id| {
                let pos = c.available.iter().position(|a| a == id).unwrap();
                c.costs[pos]
            })
            .sum();
        assert!(cost <= 11.0, "spent {cost} of 11");
        assert_eq!(d.cohort.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-positive deadline")]
    fn rejects_bad_deadline() {
        let _ = FedCsPolicy::new(0.0);
    }
}
