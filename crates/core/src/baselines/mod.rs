//! The three comparison policies of the paper's §6.1:
//! FedAvg \[19\], FedCS \[21\], and Pow-d \[5\].
//!
//! All three run online with the same 0-lookahead information FedL gets;
//! none of them learns from history beyond what its published selection
//! rule prescribes.

mod fedavg;
mod fedcs;
mod oracle;
mod powd;

pub use fedavg::FedAvgPolicy;
pub use fedcs::FedCsPolicy;
pub use oracle::OraclePolicy;
pub use powd::PowDPolicy;

/// Iterations per epoch used by the fixed-iteration baselines (they do
/// not control `l_t`; the paper's baselines train with a constant local
/// schedule).
pub const BASELINE_ITERATIONS: usize = 3;
