//! FedAvg-style random selection (McMahan et al. [19]).

use fedl_json::{obj, Value};
use fedl_linalg::rng::{derive_seed, SliceRandom, Xoshiro256pp};

use crate::policy::{EpochContext, SelectionDecision, SelectionPolicy};
use crate::snapshot;

use super::BASELINE_ITERATIONS;

/// Uniformly random cohort of size `n` per epoch, constant iteration
/// count — the original FL selection rule.
pub struct FedAvgPolicy {
    rng: Xoshiro256pp,
}

impl FedAvgPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self { rng: Xoshiro256pp::seed_from_u64(derive_seed(0xFEDA, 0)) }
    }
}

impl Default for FedAvgPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectionPolicy for FedAvgPolicy {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision {
        ctx.validate();
        let n = ctx.effective_n();
        let mut pool = ctx.available.clone();
        pool.shuffle(&mut self.rng);
        pool.truncate(n);
        pool.sort_unstable();
        SelectionDecision { cohort: pool, iterations: BASELINE_ITERATIONS }
    }

    /// The shuffle RNG is the policy's only cross-epoch state.
    fn snapshot_state(&self) -> Value {
        obj(vec![("rng", snapshot::rng_to_json(&self.rng))])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), fedl_json::Error> {
        self.rng = snapshot::rng_from_json(state.field("rng")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    #[test]
    fn selects_exactly_n_available_clients() {
        let c = ctx(vec![2, 5, 7, 9, 11], vec![1.0; 5], 100.0, 3);
        let mut p = FedAvgPolicy::new();
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 3);
        assert!(d.cohort.iter().all(|id| c.available.contains(id)));
        assert_eq!(d.iterations, BASELINE_ITERATIONS);
    }

    #[test]
    fn selection_varies_across_epochs() {
        let c = ctx((0..20).collect(), vec![1.0; 20], 100.0, 5);
        let mut p = FedAvgPolicy::new();
        let a = p.select(&c);
        let b = p.select(&c);
        let sel_differs = a.cohort != b.cohort;
        // With 20-choose-5 possibilities two draws virtually never match.
        assert!(sel_differs, "random policy repeated itself: {:?}", a.cohort);
    }

    #[test]
    fn caps_at_availability() {
        let c = ctx(vec![1, 2], vec![1.0, 1.0], 100.0, 6);
        let mut p = FedAvgPolicy::new();
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 2);
    }
}
