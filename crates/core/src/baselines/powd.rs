//! Pow-d: power-of-choice selection by local loss (Cho et al. [5]).
//!
//! Sample a candidate set of size `d = factor·n` uniformly, then keep the
//! `n` candidates with the largest (last known) local losses — biasing
//! toward clients whose data the current model fits worst.

use fedl_json::{obj, Error, Value};
use fedl_linalg::rng::{derive_seed, SliceRandom, Xoshiro256pp};
use fedl_sim::EpochReport;

use crate::policy::{EpochContext, SelectionDecision, SelectionPolicy};
use crate::snapshot;

use super::BASELINE_ITERATIONS;

/// Power-of-choice selection.
pub struct PowDPolicy {
    /// Candidate multiplier: `d = factor·n` candidates are sampled.
    factor: usize,
    rng: Xoshiro256pp,
    /// Last observed local loss per client id (None = never seen).
    last_loss: Vec<Option<f64>>,
}

impl PowDPolicy {
    /// Creates the policy with candidate factor `factor ≥ 1`.
    pub fn new(factor: usize) -> Self {
        assert!(factor >= 1, "candidate factor must be at least 1");
        Self {
            factor,
            rng: Xoshiro256pp::seed_from_u64(derive_seed(0x90D, 0)),
            last_loss: Vec::new(),
        }
    }

    fn loss_for(&self, id: usize, hint: f64) -> f64 {
        self.last_loss.get(id).copied().flatten().unwrap_or(hint)
    }
}

impl SelectionPolicy for PowDPolicy {
    fn name(&self) -> &'static str {
        "Pow-d"
    }

    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision {
        ctx.validate();
        if self.last_loss.len() < ctx.num_clients {
            self.last_loss.resize(ctx.num_clients, None);
        }
        let n = ctx.effective_n();
        let d = (self.factor * n).min(ctx.available.len());
        // Candidate set: d uniform picks.
        let mut positions: Vec<usize> = (0..ctx.available.len()).collect();
        positions.shuffle(&mut self.rng);
        positions.truncate(d);
        // Keep the n largest-loss candidates.
        positions.sort_by(|&a, &b| {
            let la = self.loss_for(ctx.available[a], ctx.loss_hint[a]);
            let lb = self.loss_for(ctx.available[b], ctx.loss_hint[b]);
            lb.partial_cmp(&la).expect("finite losses")
        });
        positions.truncate(n);
        let mut cohort: Vec<usize> = positions.iter().map(|&p| ctx.available[p]).collect();
        cohort.sort_unstable();
        SelectionDecision { cohort, iterations: BASELINE_ITERATIONS }
    }

    fn observe(&mut self, _ctx: &EpochContext, report: &EpochReport) {
        for (slot, &id) in report.cohort.iter().enumerate() {
            if self.last_loss.len() <= id {
                self.last_loss.resize(id + 1, None);
            }
            self.last_loss[id] = Some(report.local_losses[slot] as f64);
        }
    }

    /// Cross-epoch state: the candidate-sampling RNG and the per-client
    /// loss memory (never-observed clients stored as `null`).
    fn snapshot_state(&self) -> Value {
        let losses = self.last_loss.iter().map(|l| l.map_or(Value::Null, Value::Float)).collect();
        obj(vec![("rng", snapshot::rng_to_json(&self.rng)), ("last_loss", Value::Arr(losses))])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), Error> {
        let rng = snapshot::rng_from_json(state.field("rng")?)?;
        let losses = state
            .field("last_loss")?
            .as_arr()
            .ok_or_else(|| Error::msg("last_loss must be an array"))?;
        let mut last_loss = Vec::with_capacity(losses.len());
        for v in losses {
            last_loss.push(match v {
                Value::Null => None,
                other => Some(
                    other
                        .as_f64()
                        .ok_or_else(|| Error::msg("last_loss entries must be numbers or null"))?,
                ),
            });
        }
        self.rng = rng;
        self.last_loss = last_loss;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    #[test]
    fn selects_n_from_candidates() {
        let c = ctx((0..10).collect(), vec![1.0; 10], 100.0, 3);
        let mut p = PowDPolicy::new(2);
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 3);
        assert_eq!(d.iterations, BASELINE_ITERATIONS);
    }

    #[test]
    fn prefers_high_loss_clients_once_observed() {
        let c = ctx((0..6).collect(), vec![1.0; 6], 100.0, 2);
        let mut p = PowDPolicy::new(3); // d = 6 = all candidates
                                        // Teach it: client 5 has huge loss, others tiny.
        let report = EpochReport {
            epoch: 0,
            cohort: vec![0, 1, 2, 3, 4, 5],
            iterations: 1,
            latency_secs: 1.0,
            per_client_iter_latency: vec![0.1; 6],
            cost: 6.0,
            eta_hats: vec![0.5; 6],
            global_loss_all: 1.0,
            global_loss_selected: 1.0,
            grad_dot_delta: vec![0.0; 6],
            local_losses: vec![0.1, 0.1, 0.1, 0.1, 0.1, 9.0],
            failed: vec![],
        };
        p.observe(&c, &report);
        let mut counts = [0usize; 6];
        for _ in 0..20 {
            let d = p.select(&c);
            for id in d.cohort {
                counts[id] += 1;
            }
        }
        assert_eq!(counts[5], 20, "highest-loss client must always make the cut");
    }

    #[test]
    fn unseen_clients_use_hint() {
        let mut c = ctx(vec![0, 1, 2], vec![1.0; 3], 100.0, 1);
        c.loss_hint = vec![0.1, 5.0, 0.1];
        let mut p = PowDPolicy::new(3);
        let d = p.select(&c);
        assert_eq!(d.cohort, vec![1], "hinted high-loss client should win");
    }

    #[test]
    #[should_panic(expected = "candidate factor")]
    fn rejects_zero_factor() {
        let _ = PowDPolicy::new(0);
    }
}
