//! Latency oracle: a 1-lookahead reference policy.
//!
//! The paper's dynamic regret compares FedL against per-epoch hindsight
//! optima. This policy *plays* that comparator: it reads the current
//! epoch's realized latencies (information no deployable policy has) and
//! picks the `n` fastest clients. It is excluded from the headline
//! comparisons ([`crate::policy::PolicyKind::ALL`]) and exists so regret
//! can be visualized as "FedL vs what an omniscient latency minimizer
//! would have paid".

use crate::policy::{EpochContext, SelectionDecision, SelectionPolicy};

use super::BASELINE_ITERATIONS;

/// 1-lookahead latency minimizer.
pub struct OraclePolicy;

impl OraclePolicy {
    /// Creates the oracle.
    pub fn new() -> Self {
        Self
    }
}

impl Default for OraclePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectionPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision {
        ctx.validate();
        let n = ctx.effective_n();
        let mut order: Vec<usize> = (0..ctx.available.len()).collect();
        order.sort_by(|&a, &b| {
            ctx.true_latency[a].partial_cmp(&ctx.true_latency[b]).expect("finite latencies")
        });
        let mut cohort: Vec<usize> =
            order.into_iter().take(n).map(|pos| ctx.available[pos]).collect();
        cohort.sort_unstable();
        SelectionDecision { cohort, iterations: BASELINE_ITERATIONS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    #[test]
    fn picks_the_truly_fastest_clients() {
        let mut c = ctx(vec![0, 1, 2, 3], vec![1.0; 4], 100.0, 2);
        c.true_latency = vec![5.0, 0.1, 3.0, 0.2];
        // Hints deliberately disagree with the truth: the oracle must
        // follow the truth.
        c.latency_hint = vec![0.1, 5.0, 0.2, 3.0];
        let mut p = OraclePolicy::new();
        let d = p.select(&c);
        assert_eq!(d.cohort, vec![1, 3]);
    }

    #[test]
    fn respects_participation_floor() {
        let c = ctx(vec![4, 9], vec![1.0, 1.0], 10.0, 5);
        let mut p = OraclePolicy::new();
        let d = p.select(&c);
        assert_eq!(d.cohort.len(), 2);
    }
}
