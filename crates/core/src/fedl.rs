//! The complete FedL policy: online learning (Alg. 1) + RDCS rounding
//! (Alg. 2) + feasibility repair, behind the common
//! [`crate::policy::SelectionPolicy`] interface.

use fedl_json::{obj, read_field, ToJson, Value};
use fedl_linalg::rng::{derive_seed, Xoshiro256pp};
use fedl_sim::EpochReport;

use crate::objective::{FracDecision, OneShot};
use crate::online::{OnlineLearner, StepSizes};
use crate::policy::{EpochContext, SelectionDecision, SelectionPolicy};
use crate::regret::RegretTracker;
use crate::rounding;
use crate::snapshot;

/// FedL hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct FedLConfig {
    /// Desired upper bound θ on the global loss (constraint (3d)).
    pub theta: f64,
    /// Cap on the iteration-control variable ρ (bounds `l_t`).
    pub rho_max: f64,
    /// Scale multiplier on the Corollary-1 step-size schedule.
    pub step_scale: f64,
    /// Extra multiplier on the *dual* step δ relative to β. The
    /// equilibrium multiplier the loss constraint needs scales with
    /// `|E_t|` (the per-client loss impact in h⁰ is diluted by the
    /// paper's 1/|E_t| aggregation), so the dual clock must run faster
    /// than the primal one to reach it within a budget-length horizon.
    /// Corollary 1 fixes only the T_C^{-1/3} rate; this constant is
    /// free.
    pub dual_scale: f64,
    /// Explicit step sizes; `None` uses the Corollary-1 schedule
    /// `β = δ = step_scale·T̂_C^{−1/3}`.
    pub fixed_steps: Option<(f64, f64)>,
    /// Assumed mean rental cost `c̄` for the `T̂_C = C/(n·c̄)` estimate
    /// (the §6.1 cost distribution U[0.1, 12] has mean 6.05).
    pub mean_cost_estimate: f64,
    /// Use independent rounding instead of RDCS (ablation only).
    pub independent_rounding: bool,
    /// Fairness weight for the selection-fairness extension (0 disables
    /// it and reproduces the paper's FedL; see
    /// [`crate::objective::OneShot::bonus`]).
    pub fairness_weight: f64,
}

impl Default for FedLConfig {
    fn default() -> Self {
        Self {
            theta: 1.0,
            rho_max: 10.0,
            step_scale: 1.0,
            dual_scale: 10.0,
            fixed_steps: None,
            mean_cost_estimate: 6.05,
            independent_rounding: false,
            fairness_weight: 0.0,
        }
    }
}

impl ToJson for FedLConfig {
    /// Canonical field order — part of the result-cache key contract
    /// (docs/CHECKPOINT.md), so reordering or renaming fields
    /// invalidates existing caches.
    fn to_json_value(&self) -> Value {
        let fixed_steps = match self.fixed_steps {
            Some((beta, delta)) => Value::Arr(vec![Value::Float(beta), Value::Float(delta)]),
            None => Value::Null,
        };
        obj(vec![
            ("theta", self.theta.to_json_value()),
            ("rho_max", self.rho_max.to_json_value()),
            ("step_scale", self.step_scale.to_json_value()),
            ("dual_scale", self.dual_scale.to_json_value()),
            ("fixed_steps", fixed_steps),
            ("mean_cost_estimate", self.mean_cost_estimate.to_json_value()),
            ("independent_rounding", self.independent_rounding.to_json_value()),
            ("fairness_weight", self.fairness_weight.to_json_value()),
        ])
    }
}

/// The FedL selection policy (paper Alg. 1 + Alg. 2).
pub struct FedLPolicy {
    learner: OnlineLearner,
    tracker: RegretTracker,
    track_regret: bool,
    rng: Xoshiro256pp,
    independent_rounding: bool,
    /// `(problem, fractional decision)` awaiting the epoch's outcome.
    pending: Option<(OneShot, FracDecision)>,
}

impl FedLPolicy {
    /// Builds the policy for a federation of `num_clients` clients with
    /// long-term budget `budget` and participation floor
    /// `min_participants`.
    pub fn new(
        config: FedLConfig,
        num_clients: usize,
        budget: f64,
        min_participants: usize,
    ) -> Self {
        let steps = match config.fixed_steps {
            Some((beta, delta)) => StepSizes::fixed(beta, delta),
            None => {
                let base = StepSizes::corollary1(
                    budget,
                    min_participants,
                    config.mean_cost_estimate,
                    config.step_scale,
                );
                StepSizes::fixed(base.beta, base.delta * config.dual_scale.max(1e-9))
            }
        };
        // Anchor prior n/M: on average a budget-efficient policy keeps
        // about n of the M clients selected.
        let prior_x = (min_participants as f64 / num_clients.max(1) as f64).clamp(0.02, 0.5);
        let learner = OnlineLearner::new(num_clients, steps, config.theta, config.rho_max, prior_x)
            .with_fairness(config.fairness_weight);
        Self {
            learner,
            tracker: RegretTracker::new(num_clients),
            track_regret: true,
            rng: Xoshiro256pp::seed_from_u64(derive_seed(0xFED1, num_clients as u64)),
            independent_rounding: config.independent_rounding,
            pending: None,
        }
    }

    /// Disables the per-epoch regret/fit accounting. The tracker's
    /// hindsight comparator re-solves the observed epoch's problem,
    /// which costs more than the selection itself at service-scale
    /// populations; execution layers that never plot regret curves
    /// (fedl-dist, the loadgen reference) opt out here. Selections are
    /// bit-identical either way — the tracker never feeds back into
    /// decisions.
    pub fn without_regret_tracking(mut self) -> Self {
        self.track_regret = false;
        self
    }

    /// The regret/fit tracker accumulated so far.
    pub fn tracker(&self) -> &RegretTracker {
        &self.tracker
    }

    /// The online learner (exposed for theory-validation benches).
    pub fn learner(&self) -> &OnlineLearner {
        &self.learner
    }

    /// Serializes the learner state for checkpointing. The rounding RNG
    /// and the regret tracker are *not* part of the snapshot: restoring
    /// resumes the learned estimates and multipliers exactly, with a
    /// fresh randomization stream and a fresh tracker.
    pub fn checkpoint(&self) -> String {
        self.learner.to_json()
    }

    /// Restores a policy from a [`FedLPolicy::checkpoint`] snapshot.
    ///
    /// `num_clients` must match the checkpointed federation size.
    pub fn restore(snapshot: &str, num_clients: usize) -> Result<Self, fedl_json::Error> {
        let learner = OnlineLearner::from_json(snapshot)?;
        if learner.state().len() != num_clients {
            return Err(fedl_json::Error::msg(format!(
                "checkpoint is for {} clients, not {num_clients}",
                learner.state().len()
            )));
        }
        Ok(Self {
            learner,
            tracker: RegretTracker::new(num_clients),
            track_regret: true,
            rng: Xoshiro256pp::seed_from_u64(derive_seed(0xFED1, num_clients as u64)),
            independent_rounding: false,
            pending: None,
        })
    }
}

impl SelectionPolicy for FedLPolicy {
    fn name(&self) -> &'static str {
        "FedL"
    }

    fn select(&mut self, ctx: &EpochContext) -> SelectionDecision {
        ctx.validate();
        let problem = self.learner.build_problem(ctx);
        let frac = self.learner.decide(ctx, &problem);

        // Round the fractional selection (Alg. 2), then repair the
        // constraints rounding cannot preserve (budget heterogeneity).
        let mut x = frac.x.clone();
        let selected_pos = if self.independent_rounding {
            rounding::independent(&mut x, &mut self.rng)
        } else {
            rounding::rdcs(&mut x, &mut self.rng)
        };
        let mut selected = selected_pos;
        rounding::repair(
            &mut selected,
            &problem.costs,
            problem.effective_n(),
            ctx.remaining_budget,
        );
        let cohort: Vec<usize> = selected.iter().map(|&pos| ctx.available[pos]).collect();
        let iterations = frac.iterations();
        self.pending = Some((problem, frac));
        SelectionDecision { cohort, iterations }
    }

    fn observe(&mut self, ctx: &EpochContext, report: &EpochReport) {
        let (problem, frac) = self.pending.take().expect("observe without a preceding select");
        if self.track_regret {
            self.tracker.record(&problem, &frac, report);
        }
        self.learner.observe(ctx, report, &frac, &problem);
    }

    fn regret_tracker(&self) -> Option<&RegretTracker> {
        Some(&self.tracker)
    }

    fn client_estimate(&self, client: usize) -> Option<f64> {
        self.learner.state().stats(client).map(|s| s.eta)
    }

    /// Unlike the legacy [`FedLPolicy::checkpoint`] (which keeps only
    /// the learner), this captures *everything* that feeds future
    /// decisions — learner, regret tracker, the RDCS rounding RNG's
    /// exact stream position, and the rounding mode — so a restored run
    /// is bit-identical to an uninterrupted one.
    ///
    /// # Panics
    /// Panics when called between a `select` and its `observe`; the
    /// runner only checkpoints at epoch boundaries.
    fn snapshot_state(&self) -> Value {
        assert!(self.pending.is_none(), "FedL snapshot mid-epoch: select() is awaiting observe()");
        obj(vec![
            ("learner", self.learner.to_json_value()),
            ("tracker", self.tracker.to_json_value()),
            ("rng", snapshot::rng_to_json(&self.rng)),
            ("independent_rounding", self.independent_rounding.to_json_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), fedl_json::Error> {
        let learner: OnlineLearner = read_field(state, "learner")?;
        if learner.state().len() != self.learner.state().len() {
            return Err(fedl_json::Error::msg(format!(
                "checkpoint is for {} clients, not {}",
                learner.state().len(),
                self.learner.state().len()
            )));
        }
        self.learner = learner;
        self.tracker = read_field(state, "tracker")?;
        self.rng = snapshot::rng_from_json(state.field("rng")?)?;
        self.independent_rounding = read_field(state, "independent_rounding")?;
        self.pending = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::ctx;

    fn report_for(ctx: &EpochContext, d: &SelectionDecision) -> EpochReport {
        let k = d.cohort.len();
        EpochReport {
            epoch: ctx.epoch,
            cohort: d.cohort.clone(),
            iterations: d.iterations,
            latency_secs: 0.5 * d.iterations as f64,
            per_client_iter_latency: vec![0.5; k],
            cost: d.cohort.len() as f64,
            eta_hats: vec![0.4; k],
            global_loss_all: 1.2,
            global_loss_selected: 1.1,
            grad_dot_delta: vec![-0.2; k],
            local_losses: vec![1.2; k],
            failed: vec![],
        }
    }

    #[test]
    fn select_respects_participation_and_budget() {
        let c = ctx(vec![0, 1, 2, 3, 4], vec![2.0, 4.0, 1.0, 3.0, 5.0], 8.0, 2);
        let mut p = FedLPolicy::new(FedLConfig::default(), 5, 8.0, 2);
        for trial in 0..10 {
            let mut c_t = c.clone();
            c_t.epoch = trial;
            let d = p.select(&c_t);
            assert!(d.cohort.len() >= 2, "floor violated: {:?}", d.cohort);
            assert!(d.iterations >= 1);
            let r = report_for(&c_t, &d);
            p.observe(&c_t, &r);
        }
    }

    #[test]
    fn learning_shifts_selection_toward_good_clients() {
        // Clients 0/1 fast and helpful; 2/3 slow and harmful. After
        // enough feedback FedL should prefer 0/1.
        let c = ctx(vec![0, 1, 2, 3], vec![1.0; 4], 1000.0, 2);
        let mut p = FedLPolicy::new(
            FedLConfig { fixed_steps: Some((0.5, 0.5)), ..Default::default() },
            4,
            1000.0,
            2,
        );
        for e in 0..25 {
            let mut c_t = c.clone();
            c_t.epoch = e;
            let d = p.select(&c_t);
            let k = d.cohort.len();
            let mut r = report_for(&c_t, &d);
            r.per_client_iter_latency =
                d.cohort.iter().map(|&id| if id <= 1 { 0.02 } else { 2.0 }).collect();
            r.eta_hats = d.cohort.iter().map(|&id| if id <= 1 { 0.1 } else { 0.9 }).collect();
            r.grad_dot_delta =
                d.cohort.iter().map(|&id| if id <= 1 { -1.0 } else { 0.5 }).collect();
            r.global_loss_all = 1.5; // keep pressure on
            assert_eq!(r.per_client_iter_latency.len(), k);
            p.observe(&c_t, &r);
        }
        // Count selections over further epochs.
        let mut good = 0usize;
        let mut bad = 0usize;
        for e in 25..40 {
            let mut c_t = c.clone();
            c_t.epoch = e;
            let d = p.select(&c_t);
            for &id in &d.cohort {
                if id <= 1 {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
            let r = report_for(&c_t, &d);
            p.observe(&c_t, &r);
        }
        assert!(good > bad, "FedL failed to learn client quality: good {good} vs bad {bad}");
    }

    #[test]
    fn tracker_accumulates() {
        let c = ctx(vec![0, 1, 2], vec![1.0, 1.0, 1.0], 100.0, 2);
        let mut p = FedLPolicy::new(FedLConfig::default(), 3, 100.0, 2);
        for e in 0..4 {
            let mut c_t = c.clone();
            c_t.epoch = e;
            let d = p.select(&c_t);
            let r = report_for(&c_t, &d);
            p.observe(&c_t, &r);
        }
        assert_eq!(p.tracker().epochs(), 4);
        assert!(p.tracker().cumulative_regret().len() == 4);
    }

    #[test]
    #[should_panic(expected = "observe without a preceding select")]
    fn observe_before_select_rejected() {
        let c = ctx(vec![0], vec![1.0], 10.0, 1);
        let mut p = FedLPolicy::new(FedLConfig::default(), 1, 10.0, 1);
        let r = report_for(&c, &SelectionDecision { cohort: vec![0], iterations: 1 });
        p.observe(&c, &r);
    }
}
