//! Dynamic regret and dynamic fit accounting (paper §5).
//!
//! Per epoch the tracker records the online objective `f_t(Φ̃_t)`, a
//! hindsight per-epoch comparator `f_t(Φ̃_t*)` (the best fractional
//! decision *for that epoch's realized coefficients*), and the observed
//! constraint vector `h_t(Φ̃_t)`. From those it reports the cumulative
//! dynamic regret `Σ f_t(Φ̃_t) − Σ f_t(Φ̃_t*)` and the dynamic fit
//! `‖[Σ h_t(Φ̃_t)]⁺‖` — the curves whose sub-linear growth Corollary 1
//! guarantees.

use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_solver::{minimize, PgdOptions};

use crate::objective::{FracDecision, OneShot};
use fedl_sim::EpochReport;

/// Penalty weight used when the hindsight comparator must respect the
/// convergence constraints `h_t ≤ 0` (exact-penalty formulation, large
/// enough to dominate any feasible descent direction of `f_t`).
const H_PENALTY: f64 = 1e3;

/// Cumulative regret/fit curves.
#[derive(Debug, Clone)]
pub struct RegretTracker {
    f_online: Vec<f64>,
    f_hindsight: Vec<f64>,
    /// Running constraint sums: index 0 is the global constraint, then
    /// one slot per client id.
    h_cum: Vec<f64>,
    fit_curve: Vec<f64>,
    regret_curve: Vec<f64>,
}

impl RegretTracker {
    /// Tracker for a federation of `num_clients` clients.
    pub fn new(num_clients: usize) -> Self {
        Self {
            f_online: Vec::new(),
            f_hindsight: Vec::new(),
            h_cum: vec![0.0; num_clients + 1],
            fit_curve: Vec::new(),
            regret_curve: Vec::new(),
        }
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.f_online.len()
    }

    /// Records one epoch: the problem actually posed, the fractional
    /// decision taken, and the realized outcome.
    pub fn record(&mut self, problem: &OneShot, frac: &FracDecision, report: &EpochReport) {
        // Observed problem: replace estimates with realized values.
        let mut observed = problem.clone();
        observed.loss_all = report.global_loss_all;
        for (slot, &k) in report.cohort.iter().enumerate() {
            if let Some(pos) = observed.ids.iter().position(|&id| id == k) {
                observed.eta[pos] = report.eta_hats[slot] as f64;
                observed.g[pos] = report.grad_dot_delta[slot] as f64;
                observed.tau[pos] = report.per_client_iter_latency[slot];
            }
        }

        let f_t = observed.f_value(&frac.x, frac.rho);
        let star = hindsight_optimum(&observed);
        let f_star = observed.f_value(&star.x, star.rho);
        self.f_online.push(f_t);
        self.f_hindsight.push(f_star);
        let cum_regret = self.regret_curve.last().copied().unwrap_or(0.0) + (f_t - f_star);
        self.regret_curve.push(cum_regret);

        let h = observed.h_value(&frac.x, frac.rho);
        self.h_cum[0] += h[0];
        for (pos, &k) in observed.ids.iter().enumerate() {
            self.h_cum[1 + k] += h[1 + pos];
        }
        let fit: f64 = self.h_cum.iter().map(|&v| v.max(0.0).powi(2)).sum::<f64>().sqrt();
        self.fit_curve.push(fit);
    }

    /// Cumulative dynamic regret after each epoch.
    pub fn cumulative_regret(&self) -> &[f64] {
        &self.regret_curve
    }

    /// Dynamic fit `‖[Σ_{≤t} h]⁺‖` after each epoch.
    pub fn fit(&self) -> &[f64] {
        &self.fit_curve
    }

    /// Per-epoch online objective values.
    pub fn f_online(&self) -> &[f64] {
        &self.f_online
    }

    /// Per-epoch hindsight optima.
    pub fn f_hindsight(&self) -> &[f64] {
        &self.f_hindsight
    }
}

impl ToJson for RegretTracker {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("f_online", self.f_online.to_json_value()),
            ("f_hindsight", self.f_hindsight.to_json_value()),
            ("h_cum", self.h_cum.to_json_value()),
            ("fit_curve", self.fit_curve.to_json_value()),
            ("regret_curve", self.regret_curve.to_json_value()),
        ])
    }
}

impl FromJson for RegretTracker {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            f_online: read_field(v, "f_online")?,
            f_hindsight: read_field(v, "f_hindsight")?,
            h_cum: read_field(v, "h_cum")?,
            fit_curve: read_field(v, "fit_curve")?,
            regret_curve: read_field(v, "regret_curve")?,
        })
    }
}

/// The per-epoch hindsight comparator `Φ̃_t*`: minimizes the *realized*
/// `f_t` over the epoch's feasible set, with the convergence constraints
/// enforced through an exact penalty (they are bilinear, so we fold them
/// into the objective rather than the projection).
pub fn hindsight_optimum(observed: &OneShot) -> FracDecision {
    let k = observed.ids.len();
    let set = observed.feasible_set();
    let avail = k as f64;
    let objective = |z: &[f64]| {
        let (x, rho) = (&z[..k], z[k]);
        let mut v = observed.f_value(x, rho);
        for hi in observed.h_value(x, rho) {
            v += H_PENALTY * hi.max(0.0);
        }
        v
    };
    let gradient = |z: &[f64], out: &mut [f64]| {
        let rho = z[k];
        let mix: f64 = z[..k].iter().zip(&observed.g).map(|(xi, gi)| xi * gi).sum();
        let h0 = observed.loss_all + rho * mix / avail - observed.theta;
        let pen0 = if h0 > 0.0 { H_PENALTY } else { 0.0 };
        let mut drho: f64 = z[..k].iter().zip(&observed.tau).map(|(xi, ti)| xi * ti).sum::<f64>()
            + pen0 * mix / avail;
        for i in 0..k {
            let hi = observed.eta[i] * z[i] * rho - rho + 1.0;
            let pen = if hi > 0.0 { H_PENALTY } else { 0.0 };
            out[i] = rho * observed.tau[i]
                + pen0 * rho * observed.g[i] / avail
                + pen * observed.eta[i] * rho;
            drho += pen * (observed.eta[i] * z[i] - 1.0);
        }
        out[k] = drho;
    };
    // The penalty landscape is multi-modal (h⁰ couples x and ρ
    // bilinearly), so run PGD from several starts and keep the best:
    // the interior point, the latency-greedy low-ρ corner, and the
    // constraint-friendly high-ρ corner.
    let mut starts: Vec<Vec<f64>> = Vec::with_capacity(3);
    let mut interior = vec![0.5; k];
    interior.push(1.5);
    starts.push(interior);
    let mut by_tau: Vec<usize> = (0..k).collect();
    by_tau.sort_by(|&a, &b| observed.tau[a].partial_cmp(&observed.tau[b]).expect("finite tau"));
    let mut greedy = vec![0.0; k + 1];
    for &i in by_tau.iter().take(observed.effective_n()) {
        greedy[i] = 1.0;
    }
    greedy[k] = 1.0;
    starts.push(greedy);
    let mut high = vec![1.0; k];
    high.push(observed.rho_max);
    starts.push(high);

    let opts = PgdOptions { max_iters: 400, tol: 1e-9, ..Default::default() };
    let res = starts
        .into_iter()
        .map(|z0| minimize(objective, gradient, &set, &z0, &opts))
        .min_by(|a, b| a.objective.partial_cmp(&b.objective).expect("finite objectives"))
        .expect("at least one start");
    // Clamp the box part exactly; razor-thin budget sets can leave
    // micro-violations of the halfspaces (see OneShot::descend).
    let x = res.x[..k].iter().map(|&v| v.clamp(0.0, 1.0)).collect();
    FracDecision { x, rho: res.x[k].clamp(1.0, observed.rho_max) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> OneShot {
        OneShot {
            ids: vec![0, 1, 2],
            tau: vec![0.2, 1.0, 0.5],
            costs: vec![1.0, 1.0, 1.0],
            eta: vec![0.3, 0.6, 0.4],
            g: vec![-0.5, -0.1, -0.3],
            bonus: vec![0.0; 3],
            loss_all: 0.4,
            theta: 0.6,
            min_participants: 1,
            budget: 50.0,
            rho_max: 6.0,
        }
    }

    fn report(cohort: Vec<usize>, loss: f64) -> EpochReport {
        let k = cohort.len();
        EpochReport {
            epoch: 0,
            cohort,
            iterations: 2,
            latency_secs: 1.0,
            per_client_iter_latency: vec![0.3; k],
            cost: k as f64,
            eta_hats: vec![0.5; k],
            global_loss_all: loss,
            global_loss_selected: loss,
            grad_dot_delta: vec![-0.2; k],
            local_losses: vec![loss as f32; k],
            failed: vec![],
        }
    }

    #[test]
    fn hindsight_picks_cheap_fast_clients() {
        let p = problem();
        let star = hindsight_optimum(&p);
        // n = 1, loss satisfied (0.4 < 0.6): minimal f selects mostly the
        // fastest client (tau = 0.2, id 0) at rho = 1.
        assert!(star.rho < 1.5, "rho {}", star.rho);
        let sum: f64 = star.x.iter().sum();
        assert!(sum >= 1.0 - 1e-6);
        assert!(star.x[0] >= star.x[1], "{:?}", star.x);
        let f_star = p.f_value(&star.x, star.rho);
        // Any test point the comparator should beat.
        let f_all = p.f_value(&[1.0, 1.0, 1.0], 2.0);
        assert!(f_star <= f_all + 1e-9);
    }

    #[test]
    fn regret_nonnegative_against_online_choice() {
        let p = problem();
        let mut tr = RegretTracker::new(3);
        let frac = FracDecision { x: vec![1.0, 1.0, 1.0], rho: 3.0 }; // wasteful
        tr.record(&p, &frac, &report(vec![0, 1, 2], 0.4));
        assert_eq!(tr.epochs(), 1);
        assert!(tr.cumulative_regret()[0] > 0.0, "wasteful choice must incur regret");
    }

    #[test]
    fn fit_grows_only_with_violations() {
        let p = problem();
        let mut tr = RegretTracker::new(3);
        // Satisfied constraints: loss below theta, x*eta*rho - rho + 1 <= 0.
        let good = FracDecision { x: vec![1.0, 0.0, 0.0], rho: 2.0 };
        tr.record(&p, &good, &report(vec![0], 0.4));
        let fit1 = tr.fit()[0];
        // Violated loss constraint (realized loss far above theta).
        let bad = FracDecision { x: vec![1.0, 0.0, 0.0], rho: 2.0 };
        tr.record(&p, &bad, &report(vec![0], 3.0));
        let fit2 = tr.fit()[1];
        assert!(fit2 > fit1, "violation must raise fit: {fit1} -> {fit2}");
    }

    #[test]
    fn fit_never_negative_and_monotone_under_repeated_violation() {
        let p = problem();
        let mut tr = RegretTracker::new(3);
        let frac = FracDecision { x: vec![1.0, 1.0, 1.0], rho: 1.0 };
        let mut prev = 0.0;
        for _ in 0..5 {
            tr.record(&p, &frac, &report(vec![0, 1, 2], 2.5));
            let fit = *tr.fit().last().unwrap();
            assert!(fit >= prev);
            prev = fit;
        }
    }
}
