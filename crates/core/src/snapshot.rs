//! Helpers for serializing policy-internal state into run checkpoints
//! (consumed by the `fedl-store` snapshot machinery; see
//! docs/CHECKPOINT.md for the on-disk schema).

use fedl_json::{Error, Value};
use fedl_linalg::rng::Xoshiro256pp;

/// Encodes an RNG's full state as an array of four 16-hex-digit words.
///
/// The state words are full-range `u64`s, but [`Value::Int`] carries an
/// `i64` — values at or above `2^63` would not survive an integer
/// encoding, so each word is written as fixed-width hex text instead.
pub fn rng_to_json(rng: &Xoshiro256pp) -> Value {
    Value::Arr(rng.state().iter().map(|w| Value::Str(format!("{w:016x}"))).collect())
}

/// Decodes [`rng_to_json`] output back into an RNG that continues the
/// exact stream.
pub fn rng_from_json(v: &Value) -> Result<Xoshiro256pp, Error> {
    let arr = v.as_arr().ok_or_else(|| Error::msg("rng state must be an array"))?;
    if arr.len() != 4 {
        return Err(Error::msg(format!("rng state must have 4 words, found {}", arr.len())));
    }
    let mut s = [0u64; 4];
    for (slot, word) in s.iter_mut().zip(arr) {
        let text =
            word.as_str().ok_or_else(|| Error::msg("rng state word must be a hex string"))?;
        *slot = u64::from_str_radix(text, 16)
            .map_err(|e| Error::msg(format!("bad rng state word {text:?}: {e}")))?;
    }
    Ok(Xoshiro256pp::from_state(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_linalg::rng::Rng;

    #[test]
    fn rng_state_round_trips_exactly() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..7 {
            rng.next_f64();
        }
        let snap = rng_to_json(&rng);
        let mut restored = rng_from_json(&snap).unwrap();
        for _ in 0..16 {
            assert_eq!(rng.next_f64().to_bits(), restored.next_f64().to_bits());
        }
    }

    #[test]
    fn high_bit_words_survive_the_text_encoding() {
        let rng = Xoshiro256pp::from_state([u64::MAX, 1 << 63, 0, 42]);
        let restored = rng_from_json(&rng_to_json(&rng)).unwrap();
        assert_eq!(restored.state(), [u64::MAX, 1 << 63, 0, 42]);
    }

    #[test]
    fn malformed_states_are_rejected() {
        assert!(rng_from_json(&Value::Null).is_err());
        assert!(rng_from_json(&Value::Arr(vec![Value::Str("ff".into()); 3])).is_err());
        assert!(rng_from_json(&Value::Arr(vec![Value::Int(3); 4])).is_err());
        let bad = Value::Arr(vec![
            Value::Str("zz".into()),
            Value::Str("0".into()),
            Value::Str("0".into()),
            Value::Str("0".into()),
        ]);
        assert!(rng_from_json(&bad).is_err());
    }
}
