//! Online rounding: the randomized dependent client selection algorithm
//! RDCS (paper Alg. 2) plus the independent-rounding baseline and the
//! feasibility repair pass.
//!
//! [`rdcs`] tracks the fractional coordinate set in a Fenwick
//! order-statistics tree, so one rounding pass over `K` candidates is
//! `O(K log K)` instead of the reference implementation's `O(K²)`
//! re-scan — the difference between microseconds and minutes at the
//! 1M-client scale tier (docs/SCALE.md). The original implementation is
//! retained as [`rdcs_reference`] and the two are held to identical RNG
//! consumption (same draws, same outputs, bit for bit) by tests here and
//! in `tests/columnar_parity.rs`.

use std::cell::RefCell;

use fedl_linalg::rng::Rng;

/// Tolerance below/above which a coordinate counts as integral.
const INT_TOL: f64 = 1e-9;

fn is_fractional(v: f64) -> bool {
    v > INT_TOL && v < 1.0 - INT_TOL
}

/// Fenwick (binary-indexed) tree over a 0/1 membership vector,
/// supporting `O(log n)` rank-`k` selection and removal. Ranks and
/// returned indices are 0-based.
#[derive(Default)]
struct ActiveSet {
    tree: Vec<u32>,
    len: usize,
    count: usize,
    /// `len.next_power_of_two()`, the starting stride of `select`.
    top: usize,
}

impl ActiveSet {
    /// Builds the tree in `O(n)` from a membership iterator.
    #[cfg(test)]
    fn new(members: impl ExactSizeIterator<Item = bool>) -> Self {
        let mut set = ActiveSet::default();
        set.rebuild(members);
        set
    }

    /// Builds the tree into this instance's existing storage; reusing
    /// an `ActiveSet` across calls performs no allocation once the tree
    /// capacity has grown to the largest vector seen.
    fn rebuild(&mut self, members: impl ExactSizeIterator<Item = bool>) {
        let len = members.len();
        let tree = &mut self.tree;
        tree.clear();
        tree.resize(len + 1, 0);
        let mut count = 0usize;
        for (i, m) in members.enumerate() {
            if m {
                tree[i + 1] = 1;
                count += 1;
            }
        }
        for i in 1..=len {
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                tree[parent] += tree[i];
            }
        }
        self.len = len;
        self.count = count;
        self.top = len.next_power_of_two();
    }

    /// Index of the rank-`k` member (the `k`-th smallest active index).
    ///
    /// Requires `k < self.count`.
    fn select(&self, k: usize) -> usize {
        let mut pos = 0usize;
        let mut remaining = k + 1;
        let mut step = self.top;
        while step > 0 {
            let next = pos + step;
            if next <= self.len && (self.tree[next] as usize) < remaining {
                remaining -= self.tree[next] as usize;
                pos = next;
            }
            step >>= 1;
        }
        // `pos` 1-based is the predecessor of the answer, so 0-based the
        // answer is exactly `pos`.
        pos
    }

    /// Removes index `i` from the set (must currently be a member).
    fn remove(&mut self, i: usize) {
        let mut j = i + 1;
        while j <= self.len {
            self.tree[j] -= 1;
            j += j & j.wrapping_neg();
        }
        self.count -= 1;
    }
}

/// Reusable working storage for [`rdcs_with`]: the Fenwick tree over the
/// fractional coordinate set. Reusing one of these across rounding calls
/// makes the steady-state pass allocation-free.
#[derive(Default)]
pub struct RdcsScratch {
    active: ActiveSet,
}

impl RdcsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<RdcsScratch> = RefCell::new(RdcsScratch::new());
}

/// Rounds the fractional selection vector in place with RDCS.
///
/// While at least two coordinates are fractional, pick a pair `(i, j)`
/// and shift `ζ₁ = min(1−x_i, x_j)` or `ζ₂ = min(x_i, 1−x_j)` between
/// them with probabilities `ζ₂/(ζ₁+ζ₂)` and `ζ₁/(ζ₁+ζ₂)` (paper Alg. 2
/// lines 3–8). Each pass preserves `x_i + x_j` exactly and each
/// coordinate in expectation, and makes at least one of the pair
/// integral. A final lone fractional coordinate is rounded up with
/// probability equal to its value (the classic tail step; preserves the
/// expectation, moves the sum by less than 1).
///
/// Returns the indices rounded to 1.
///
/// # Examples
///
/// ```
/// use fedl_core::rounding::rdcs;
///
/// let mut rng = fedl_linalg::rng::Xoshiro256pp::seed_from_u64(7);
/// // Fractional mass sums to 2: exactly two clients get selected.
/// let mut x = vec![0.5, 0.5, 0.5, 0.5];
/// let selected = rdcs(&mut x, &mut rng);
/// assert_eq!(selected.len(), 2);
/// assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
/// ```
pub fn rdcs(x: &mut [f64], rng: &mut impl Rng) -> Vec<usize> {
    let mut selected = Vec::new();
    // Move the thread's scratch out and back (rather than holding the
    // borrow) so a re-entrant call cannot panic.
    let mut scratch = SCRATCH.with(|s| s.take());
    rdcs_with(x, rng, &mut scratch, &mut selected);
    SCRATCH.with(|s| *s.borrow_mut() = scratch);
    selected
}

/// [`rdcs`] with caller-owned working storage and output vector: the
/// steady-state form performs no heap allocation. Consumes the same RNG
/// stream and produces the same rounding as [`rdcs`] bit for bit.
pub fn rdcs_with(
    x: &mut [f64],
    rng: &mut impl Rng,
    scratch: &mut RdcsScratch,
    selected: &mut Vec<usize>,
) {
    for (i, &v) in x.iter().enumerate() {
        assert!(
            (-INT_TOL..=1.0 + INT_TOL).contains(&v),
            "selection fraction {v} at {i} outside [0,1]"
        );
    }
    // The fractional set as an order-statistics tree: `select(r)` is
    // exactly `frac[r]` of the reference's ascending re-scan, so the RNG
    // stream below is consumed identically to `rdcs_reference`.
    let active = &mut scratch.active;
    active.rebuild(x.iter().map(|&v| is_fractional(v)));
    while active.count >= 2 {
        // Randomly choose the pair (Alg. 2 line 1).
        let a = active.select(rng.gen_range(0..active.count));
        let b = loop {
            let cand = active.select(rng.gen_range(0..active.count));
            if cand != a {
                break cand;
            }
        };
        let zeta1 = (1.0 - x[a]).min(x[b]);
        let zeta2 = x[a].min(1.0 - x[b]);
        debug_assert!(zeta1 > 0.0 && zeta2 > 0.0);
        if rng.gen::<f64>() < zeta2 / (zeta1 + zeta2) {
            x[a] += zeta1;
            x[b] -= zeta1;
        } else {
            x[a] -= zeta2;
            x[b] += zeta2;
        }
        // Only the pair changed; every shift drives at least one of the
        // two to a bound (within INT_TOL), so the set shrinks each round.
        if !is_fractional(x[a]) {
            active.remove(a);
        }
        if !is_fractional(x[b]) {
            active.remove(b);
        }
    }
    // Tail: at most one fractional coordinate remains.
    if active.count == 1 {
        let i = active.select(0);
        x[i] = if rng.gen::<f64>() < x[i] { 1.0 } else { 0.0 };
    }
    // Snap numerical residue.
    for v in x.iter_mut() {
        *v = if *v > 0.5 { 1.0 } else { 0.0 };
    }
    selected.clear();
    selected.extend((0..x.len()).filter(|&i| x[i] == 1.0));
}

/// The pre-Fenwick RDCS implementation — a direct transcription of
/// paper Alg. 2 that re-scans the whole vector for fractional
/// coordinates every round (`O(K²)`). Retained as the determinism
/// reference: [`rdcs`] must draw the same RNG stream and produce the
/// same output, bit for bit, for every input (docs/SCALE.md).
pub fn rdcs_reference(x: &mut [f64], rng: &mut impl Rng) -> Vec<usize> {
    for (i, &v) in x.iter().enumerate() {
        assert!(
            (-INT_TOL..=1.0 + INT_TOL).contains(&v),
            "selection fraction {v} at {i} outside [0,1]"
        );
    }
    loop {
        // Collect the currently fractional coordinates.
        let frac: Vec<usize> = (0..x.len()).filter(|&i| is_fractional(x[i])).collect();
        if frac.len() < 2 {
            break;
        }
        // Randomly choose the pair (Alg. 2 line 1).
        let a = frac[rng.gen_range(0..frac.len())];
        let b = loop {
            let cand = frac[rng.gen_range(0..frac.len())];
            if cand != a {
                break cand;
            }
        };
        let zeta1 = (1.0 - x[a]).min(x[b]);
        let zeta2 = x[a].min(1.0 - x[b]);
        debug_assert!(zeta1 > 0.0 && zeta2 > 0.0);
        if rng.gen::<f64>() < zeta2 / (zeta1 + zeta2) {
            x[a] += zeta1;
            x[b] -= zeta1;
        } else {
            x[a] -= zeta2;
            x[b] += zeta2;
        }
    }
    // Tail: at most one fractional coordinate remains.
    if let Some(i) = (0..x.len()).find(|&i| is_fractional(x[i])) {
        x[i] = if rng.gen::<f64>() < x[i] { 1.0 } else { 0.0 };
    }
    // Snap numerical residue.
    for v in x.iter_mut() {
        *v = if *v > 0.5 { 1.0 } else { 0.0 };
    }
    (0..x.len()).filter(|&i| x[i] == 1.0).collect()
}

/// Independent rounding: each coordinate up with its own probability —
/// the strawman the paper contrasts with RDCS (no sum preservation).
pub fn independent(x: &mut [f64], rng: &mut impl Rng) -> Vec<usize> {
    for v in x.iter_mut() {
        *v = if rng.gen::<f64>() < *v { 1.0 } else { 0.0 };
    }
    (0..x.len()).filter(|&i| x[i] == 1.0).collect()
}

/// Feasibility repair after rounding (costs are heterogeneous, so only
/// `Σx` — not `Σc·x` — is preserved by RDCS):
///
/// 1. while the cohort is smaller than `n`, add the cheapest unselected
///    client;
/// 2. while the cohort cost exceeds `budget` *and* the cohort is larger
///    than `n`, drop the most expensive member.
///
/// A residual overshoot with exactly `n` members is allowed — it is the
/// violation dynamic fit charges, and the runner's `while C ≥ 0` loop
/// ends the run.
pub fn repair(selected: &mut Vec<usize>, costs: &[f64], n: usize, budget: f64) {
    let k = costs.len();
    assert!(selected.iter().all(|&i| i < k), "selection index out of range");
    let n = n.min(k).max(1);

    let mut chosen = vec![false; k];
    for &i in selected.iter() {
        chosen[i] = true;
    }
    // Grow to the participation floor, cheapest first.
    let mut by_cost: Vec<usize> = (0..k).collect();
    by_cost.sort_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite costs"));
    let mut count = selected.len();
    for &i in &by_cost {
        if count >= n {
            break;
        }
        if !chosen[i] {
            chosen[i] = true;
            count += 1;
        }
    }
    // Shed cost, most expensive first, never below n.
    let mut total: f64 = (0..k).filter(|&i| chosen[i]).map(|i| costs[i]).sum();
    for &i in by_cost.iter().rev() {
        if total <= budget || count <= n {
            break;
        }
        if chosen[i] {
            chosen[i] = false;
            count -= 1;
            total -= costs[i];
        }
    }
    *selected = (0..k).filter(|&i| chosen[i]).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_linalg::rng::rng_for;

    #[test]
    fn output_is_integral() {
        let mut rng = rng_for(1, 0);
        for trial in 0..50 {
            let mut x: Vec<f64> = (0..7).map(|i| ((i + trial) % 10) as f64 / 10.0).collect();
            let sel = rdcs(&mut x, &mut rng);
            assert!(x.iter().all(|&v| v == 0.0 || v == 1.0), "{x:?}");
            assert_eq!(sel.len(), x.iter().filter(|&&v| v == 1.0).count());
        }
    }

    #[test]
    fn integral_inputs_untouched() {
        let mut rng = rng_for(2, 0);
        let mut x = vec![1.0, 0.0, 1.0, 0.0];
        let sel = rdcs(&mut x, &mut rng);
        assert_eq!(x, vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(sel, vec![0, 2]);
    }

    /// Sum preservation: the rounded count is within 1 of the fractional
    /// sum (exact when the sum of fractional parts is integral).
    #[test]
    fn sum_preserved_within_one() {
        let mut rng = rng_for(3, 0);
        for trial in 0..200u64 {
            let mut r = rng_for(trial, 99);
            let x0: Vec<f64> = (0..9).map(|_| r.gen::<f64>()).collect();
            let sum0: f64 = x0.iter().sum();
            let mut x = x0.clone();
            let sel = rdcs(&mut x, &mut rng);
            let diff = (sel.len() as f64 - sum0).abs();
            assert!(diff < 1.0 + 1e-9, "sum {sum0} rounded to {}", sel.len());
        }
    }

    /// Theorem 3: E[x_i] = x̃_i. Monte-Carlo over many runs.
    #[test]
    fn expectation_preserved() {
        let x0 = [0.15, 0.4, 0.7, 0.9, 0.25, 0.6];
        let trials = 20000;
        let mut counts = vec![0usize; x0.len()];
        let mut rng = rng_for(4, 0);
        for _ in 0..trials {
            let mut x = x0.to_vec();
            for i in rdcs(&mut x, &mut rng) {
                counts[i] += 1;
            }
        }
        for (i, (&c, &want)) in counts.iter().zip(&x0).enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - want).abs() < 0.02,
                "coordinate {i}: empirical {freq} vs fractional {want}"
            );
        }
    }

    #[test]
    fn independent_rounding_also_preserves_expectation_but_not_sum() {
        let x0 = [0.5; 8];
        let trials = 5000;
        let mut rng = rng_for(5, 0);
        let mut sum_sq_dev = 0.0f64;
        let mut total = 0usize;
        for _ in 0..trials {
            let mut x = x0.to_vec();
            let sel = independent(&mut x, &mut rng);
            total += sel.len();
            sum_sq_dev += (sel.len() as f64 - 4.0).powi(2);
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        // Independent rounding's count variance is Binomial(8, .5) = 2;
        // RDCS would give ~0. This is the measurable difference.
        let var = sum_sq_dev / trials as f64;
        assert!(var > 1.0, "independent rounding variance {var} unexpectedly small");
    }

    #[test]
    fn rdcs_count_variance_is_tiny() {
        let x0 = [0.5; 8]; // integral sum -> exact count every time
        let mut rng = rng_for(6, 0);
        for _ in 0..200 {
            let mut x = x0.to_vec();
            let sel = rdcs(&mut x, &mut rng);
            assert_eq!(sel.len(), 4, "integral fractional mass must round exactly");
        }
    }

    #[test]
    fn fenwick_rdcs_matches_reference_bit_for_bit() {
        use fedl_linalg::rng::Rng as _;
        for n in [1usize, 2, 3, 7, 50, 257] {
            for seed in 0..20u64 {
                let mut r = rng_for(seed, 123);
                let mut x0: Vec<f64> = (0..n).map(|_| r.gen::<f64>()).collect();
                // Sprinkle in exactly-integral coordinates.
                if n >= 3 {
                    x0[0] = 1.0;
                    x0[n / 2] = 0.0;
                }
                let (mut xa, mut xb) = (x0.clone(), x0.clone());
                let sel_new = rdcs(&mut xa, &mut rng_for(seed, 7));
                let sel_ref = rdcs_reference(&mut xb, &mut rng_for(seed, 7));
                assert_eq!(sel_new, sel_ref, "n={n} seed={seed}");
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&xa), bits(&xb), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn active_set_selects_in_ascending_order() {
        let members = [true, false, true, true, false, false, true];
        let set = ActiveSet::new(members.iter().copied());
        assert_eq!(set.count, 4);
        assert_eq!((0..4).map(|k| set.select(k)).collect::<Vec<_>>(), vec![0, 2, 3, 6]);
        let mut set = set;
        set.remove(3);
        assert_eq!((0..3).map(|k| set.select(k)).collect::<Vec<_>>(), vec![0, 2, 6]);
    }

    #[test]
    fn repair_enforces_floor() {
        let costs = [3.0, 1.0, 2.0, 5.0];
        let mut sel = vec![];
        repair(&mut sel, &costs, 2, 100.0);
        assert_eq!(sel.len(), 2);
        // Cheapest two: clients 1 and 2.
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn repair_sheds_cost_but_keeps_floor() {
        let costs = [3.0, 1.0, 2.0, 5.0];
        let mut sel = vec![0, 1, 2, 3]; // cost 11
        repair(&mut sel, &costs, 2, 4.0);
        let total: f64 = sel.iter().map(|&i| costs[i]).sum();
        assert!(sel.len() >= 2);
        assert!(total <= 4.0 + 1e-9, "total {total}");
    }

    #[test]
    fn repair_allows_overshoot_at_floor() {
        let costs = [10.0, 20.0];
        let mut sel = vec![0, 1];
        repair(&mut sel, &costs, 2, 5.0);
        // Cannot shed below n=2; overshoot stands.
        assert_eq!(sel.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rdcs_rejects_out_of_range() {
        let mut x = vec![0.5, 1.5];
        let _ = rdcs(&mut x, &mut rng_for(7, 0));
    }
}
