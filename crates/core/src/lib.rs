//! FedL — the paper's contribution: online-learning client selection and
//! iteration control under a long-term budget (ICPP 2022).
//!
//! The algorithm (paper §4) runs two coupled loops per epoch:
//!
//! 1. **Online learning** ([`online`]): maintain Lagrange multipliers μ
//!    for the convergence constraints and, at each epoch, solve the
//!    modified descent step (eq. (8))
//!
//!    ```text
//!    min_Φ  ∇f_t(Φ_t)·(Φ − Φ_t) + μ_{t+1}ᵀ h_t(Φ) + ‖Φ − Φ_t‖²/(2β)
//!    s.t.   x ∈ [0,1]^K, ρ ≥ 1, Σx ≥ n, Σc·x ≤ C_remaining,
//!    ```
//!
//!    using only quantities observed at epoch `t` (0-lookahead), then
//!    ascend the duals with `μ ← [μ + δ·h_t(Φ̃_t)]⁺` (eq. (9)).
//! 2. **Online rounding** ([`rounding`]): turn the fractional selection
//!    `x̃` into a 0/1 cohort with the randomized dependent client
//!    selection algorithm RDCS (Alg. 2), which preserves `Σx` exactly
//!    and each coordinate in expectation (Theorem 3).
//!
//! [`regret`] implements the paper's §5 accounting (dynamic regret and
//! dynamic fit against per-epoch hindsight comparators), [`baselines`]
//! the three comparison policies (FedAvg, FedCS, Pow-d), and [`runner`]
//! the experiment loop that drives any [`policy::SelectionPolicy`]
//! against a [`fedl_sim::EdgeEnvironment`] until the budget is gone.
//!
//! The runner accepts a [`fedl_telemetry::Telemetry`] handle via
//! [`runner::ExperimentRunner::with_telemetry`]: an enabled handle
//! captures the whole run as a structured JSONL event log
//! (`run_start` → per-epoch `epoch`/`train`/`ledger`/`span` events →
//! `run_end` + a `metrics` registry snapshot); the default disabled
//! handle costs nothing. See `docs/TELEMETRY.md` for the event schema.
//!
//! System-inventory rows **S7** (FedL core) and **S8** (baselines) in
//! DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod columnar;
pub mod fedl;
pub mod objective;
pub mod online;
pub mod policy;
pub mod regret;
pub mod rounding;
pub mod runner;
pub mod snapshot;
pub mod state;

pub use fedl::{FedLConfig, FedLPolicy};
pub use policy::{EpochContext, PolicyKind, SelectionDecision, SelectionPolicy};
pub use runner::{ExperimentRunner, ResumeError, RunOutcome, ScenarioConfig, ScenarioError};
