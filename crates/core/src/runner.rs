//! The experiment loop: drive any selection policy against a simulated
//! federation until the budget is exhausted (paper Alg. 1's outer
//! `while C ≥ 0` loop), recording the curves the figures plot.

use fedl_data::synth::{SyntheticSpec, TaskKind};
use fedl_data::Partition;
use fedl_json::ToJson;
use fedl_linalg::rng::rng_for;
use fedl_ml::dane::DaneConfig;
use fedl_ml::model::{Cnn, ConvBlockSpec, MapShape, Mlp, Model, SoftmaxRegression};
use fedl_sim::trace::RunTrace;
use fedl_sim::{BudgetLedger, EdgeEnvironment, EnvConfig};

use crate::fedl::FedLConfig;
use crate::policy::{EpochContext, PolicyKind, SelectionPolicy};

/// Global-model architecture.
#[derive(Debug, Clone)]
pub enum ModelArch {
    /// Softmax regression (convex reference model).
    Linear {
        /// L2 regularization coefficient.
        l2: f32,
    },
    /// ReLU MLP — the fast substitute for the paper's CNNs.
    Mlp {
        /// Hidden-layer widths.
        hidden: Vec<usize>,
        /// L2 regularization coefficient.
        l2: f32,
    },
    /// Convolutional network (the paper's actual model family:
    /// conv → ReLU → maxpool blocks with a softmax head). Slower than
    /// the MLP; the input dimension must equal `c·h·w`.
    Cnn {
        /// Input map `(channels, height, width)`.
        shape: (usize, usize, usize),
        /// `(out_channels, kernel)` per block.
        blocks: Vec<(usize, usize)>,
        /// L2 regularization coefficient.
        l2: f32,
    },
}

/// Everything needed to reproduce one experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Federation/environment parameters.
    pub env: EnvConfig,
    /// Which benchmark the synthetic data imitates.
    pub task: TaskKind,
    /// Optional feature-dimension override (speeds up CI-scale runs).
    pub dim_override: Option<usize>,
    /// Global training-pool size.
    pub train_size: usize,
    /// Held-out test-set size.
    pub test_size: usize,
    /// IID or non-IID split.
    pub partition: Partition,
    /// Model architecture.
    pub model: ModelArch,
    /// Local-solver hyper-parameters.
    pub dane: DaneConfig,
    /// Long-term budget `C`.
    pub budget: f64,
    /// Participation floor `n` per epoch.
    pub min_participants: usize,
    /// FedL hyper-parameters (ignored by baseline policies).
    pub fedl: FedLConfig,
    /// Safety cap on epochs (the budget normally stops the run first).
    pub max_epochs: usize,
}

impl ScenarioConfig {
    /// A laptop-scale FMNIST-like scenario: reduced dimension, small
    /// cohorts, seconds-scale runtime.
    pub fn small_fmnist(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        Self {
            env: EnvConfig::small(num_clients, 1),
            task: TaskKind::FmnistLike,
            dim_override: Some(64),
            train_size: 2000,
            test_size: 500,
            partition: Partition::Iid,
            model: ModelArch::Mlp { hidden: vec![64], l2: 0.0005 },
            // lr is sized so a *full-population* aggregate step (the
            // paper's 1/|E_t| rule makes the effective step proportional
            // to cohort size) stays stable: 6 local steps × 0.12 ≈ 0.7.
            dane: DaneConfig { local_steps: 6, lr: 0.12, ..Default::default() },
            budget,
            min_participants,
            fedl: FedLConfig::default(),
            max_epochs: 400,
        }
    }

    /// An FMNIST-like scenario with the paper's actual model family: a
    /// conv → ReLU → maxpool block on 16×16 single-channel images plus a
    /// softmax head. Noticeably slower per epoch than the MLP scenarios;
    /// used to confirm the substitution argument of DESIGN.md §2.
    pub fn small_fmnist_cnn(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        let mut s = Self::small_fmnist(num_clients, budget, min_participants);
        s.dim_override = Some(256); // 1 x 16 x 16
        s.model = ModelArch::Cnn { shape: (1, 16, 16), blocks: vec![(6, 5)], l2: 0.0005 };
        s
    }

    /// A laptop-scale CIFAR-like scenario (harder task, MLP model).
    pub fn small_cifar(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        Self {
            task: TaskKind::CifarLike,
            dim_override: Some(128),
            model: ModelArch::Mlp { hidden: vec![64], l2: 0.0005 },
            ..Self::small_fmnist(num_clients, budget, min_participants)
        }
    }

    /// Overrides every seed in the scenario.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.env.seed = seed;
        self
    }

    /// Switches to a non-IID partition (the paper's principal-mix
    /// scheme with 80 % principal-class data).
    pub fn non_iid(mut self) -> Self {
        self.partition = Partition::PrincipalMix { principal_frac: 0.8 };
        self
    }

    fn build_model(&self, input_dim: usize, classes: usize) -> Box<dyn Model> {
        let mut rng = rng_for(self.env.seed, 0x40DE1);
        match &self.model {
            ModelArch::Linear { l2 } => {
                Box::new(SoftmaxRegression::new(input_dim, classes, *l2))
            }
            ModelArch::Mlp { hidden, l2 } => {
                Box::new(Mlp::new(input_dim, hidden, classes, *l2, &mut rng))
            }
            ModelArch::Cnn { shape, blocks, l2 } => {
                let map = MapShape { c: shape.0, h: shape.1, w: shape.2 };
                assert_eq!(
                    map.len(),
                    input_dim,
                    "CNN shape {shape:?} does not match the dataset dimension"
                );
                let specs = blocks
                    .iter()
                    .map(|&(out_channels, kernel)| ConvBlockSpec { out_channels, kernel })
                    .collect();
                Box::new(Cnn::new(map, specs, classes, *l2, &mut rng))
            }
        }
    }

    /// Builds the simulated environment for this scenario.
    pub fn build_env(&self) -> EdgeEnvironment {
        let mut spec =
            SyntheticSpec::new(self.task, self.train_size, self.test_size, self.env.seed);
        if let Some(dim) = self.dim_override {
            spec = spec.with_dim(dim);
        }
        let (train, test) = spec.generate();
        let model = self.build_model(train.dim(), train.num_classes);
        EdgeEnvironment::new(
            self.env.clone(),
            train,
            test,
            self.partition,
            model,
            self.dane,
        )
    }
}

/// One epoch's recorded outcome.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Cohort size.
    pub cohort_size: usize,
    /// Iterations run (`l_t`).
    pub iterations: usize,
    /// Cumulative simulated training time (seconds).
    pub sim_time: f64,
    /// Cumulative spend.
    pub spent: f64,
    /// Test-set accuracy after the epoch.
    pub accuracy: f64,
    /// Test-set loss after the epoch.
    pub test_loss: f64,
    /// Global training loss over all available clients.
    pub global_loss: f64,
}

impl ToJson for EpochRecord {
    fn to_json_value(&self) -> fedl_json::Value {
        fedl_json::obj(vec![
            ("epoch", self.epoch.to_json_value()),
            ("cohort_size", self.cohort_size.to_json_value()),
            ("iterations", self.iterations.to_json_value()),
            ("sim_time", self.sim_time.to_json_value()),
            ("spent", self.spent.to_json_value()),
            ("accuracy", self.accuracy.to_json_value()),
            ("test_loss", self.test_loss.to_json_value()),
            ("global_loss", self.global_loss.to_json_value()),
        ])
    }
}

/// A completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Policy legend name.
    pub policy: String,
    /// Budget the run started with.
    pub budget: f64,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
}

impl ToJson for RunOutcome {
    fn to_json_value(&self) -> fedl_json::Value {
        fedl_json::obj(vec![
            ("policy", self.policy.to_json_value()),
            ("budget", self.budget.to_json_value()),
            ("epochs", self.epochs.to_json_value()),
        ])
    }
}

impl RunOutcome {
    /// Accuracy after the final epoch (0 when no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |r| r.accuracy)
    }

    /// Global loss after the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |r| r.global_loss)
    }

    /// Total simulated training time.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.last().map_or(0.0, |r| r.sim_time)
    }

    /// First simulated time at which `target` accuracy was reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.epochs.iter().find(|r| r.accuracy >= target).map(|r| r.sim_time)
    }

    /// First federated round at which `target` accuracy was reached
    /// (counting every epoch as `iterations` rounds, matching the
    /// paper's "federated round" axis).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        let mut rounds = 0usize;
        for r in &self.epochs {
            rounds += r.iterations;
            if r.accuracy >= target {
                return Some(rounds);
            }
        }
        None
    }

    /// Accuracy at each cumulative federated round (for the round-axis
    /// figures).
    pub fn accuracy_by_round(&self) -> Vec<(usize, f64)> {
        let mut rounds = 0usize;
        self.epochs
            .iter()
            .map(|r| {
                rounds += r.iterations;
                (rounds, r.accuracy)
            })
            .collect()
    }
}

/// Drives one policy through one scenario.
pub struct ExperimentRunner {
    scenario: ScenarioConfig,
    env: EdgeEnvironment,
    policy: Box<dyn SelectionPolicy>,
    ledger: BudgetLedger,
    /// Last-known local loss per client (Pow-d hint; ln 10 ≈ the
    /// untrained 10-class loss).
    loss_hints: Vec<f64>,
    /// Structured event log of the run.
    trace: RunTrace,
}

impl ExperimentRunner {
    /// Builds the runner for `kind` on `scenario`.
    pub fn new(scenario: ScenarioConfig, kind: PolicyKind) -> Self {
        let env = scenario.build_env();
        let policy = kind.build(
            scenario.env.num_clients,
            scenario.budget,
            scenario.min_participants,
            scenario.fedl,
        );
        Self::with_policy(scenario, env, policy)
    }

    /// Builds the runner around an already-constructed policy (used by
    /// the ablation benches).
    pub fn with_policy(
        scenario: ScenarioConfig,
        env: EdgeEnvironment,
        policy: Box<dyn SelectionPolicy>,
    ) -> Self {
        let ledger = BudgetLedger::new(scenario.budget);
        let loss_hints = vec![(10.0f64).ln(); scenario.env.num_clients];
        Self { scenario, env, policy, ledger, loss_hints, trace: RunTrace::new() }
    }

    /// The structured per-epoch event log recorded by [`Self::run`].
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// The environment (exposed for inspection in tests/benches).
    pub fn env(&self) -> &EdgeEnvironment {
        &self.env
    }

    /// The policy being driven.
    pub fn policy(&self) -> &dyn SelectionPolicy {
        self.policy.as_ref()
    }

    fn context_for(&self, epoch: usize) -> Option<EpochContext> {
        let views = self.env.views(epoch);
        let available: Vec<usize> =
            views.iter().filter(|v| v.available).map(|v| v.id).collect();
        if available.is_empty() {
            return None;
        }
        let costs: Vec<f64> = available.iter().map(|&k| views[k].cost).collect();
        let data_volumes: Vec<usize> =
            available.iter().map(|&k| views[k].data_volume).collect();
        // Latency estimates from the previous epoch's channel state
        // (epoch 0 uses its own state as the prior), under a nominal
        // FDMA share of n.
        let hint_epoch = epoch.saturating_sub(1);
        let latency_hint = self.env.latency_with_share(
            hint_epoch,
            &available,
            self.scenario.min_participants.max(1),
        );
        let loss_hint: Vec<f64> =
            available.iter().map(|&k| self.loss_hints[k]).collect();
        // Current-epoch realized latencies: oracle-only 1-lookahead data.
        let true_latency = self.env.latency_with_share(
            epoch,
            &available,
            self.scenario.min_participants.max(1),
        );
        Some(EpochContext {
            epoch,
            num_clients: self.scenario.env.num_clients,
            available,
            costs,
            data_volumes,
            latency_hint,
            loss_hint,
            true_latency,
            remaining_budget: self.ledger.remaining(),
            min_participants: self.scenario.min_participants,
            seed: self.scenario.env.seed,
        })
    }

    /// Runs the experiment to budget exhaustion (or the epoch cap) and
    /// returns the recorded curves.
    pub fn run(&mut self) -> RunOutcome {
        let mut records = Vec::new();
        let mut sim_time = 0.0f64;
        let mut epoch = 0usize;
        while !self.ledger.exhausted() && epoch < self.scenario.max_epochs {
            let Some(ctx) = self.context_for(epoch) else {
                epoch += 1;
                continue;
            };
            let mut decision = self.policy.select(&ctx);
            sanitize_decision(&mut decision.cohort, &ctx.available);
            if decision.cohort.is_empty() {
                // Defensive fallback: the floor-n cheapest clients.
                decision.cohort = ctx.available.iter().copied().take(ctx.effective_n()).collect();
            }
            let iterations = decision.iterations.clamp(1, 50);
            let report = self.env.run_epoch(epoch, &decision.cohort, iterations);
            self.ledger.charge(report.cost);
            self.trace.record(&report, self.ledger.remaining());
            for (slot, &k) in report.cohort.iter().enumerate() {
                self.loss_hints[k] = report.local_losses[slot] as f64;
            }
            self.policy.observe(&ctx, &report);
            sim_time += report.latency_secs;
            records.push(EpochRecord {
                epoch,
                cohort_size: report.cohort.len(),
                iterations,
                sim_time,
                spent: self.ledger.spent(),
                accuracy: self.env.test_accuracy(),
                test_loss: self.env.test_loss(),
                global_loss: report.global_loss_all,
            });
            epoch += 1;
        }
        RunOutcome {
            policy: self.policy.name().to_string(),
            budget: self.scenario.budget,
            epochs: records,
        }
    }
}

/// Drops out-of-availability ids and duplicates (policy bugs must not
/// crash the simulator; the per-policy tests assert they don't happen).
fn sanitize_decision(cohort: &mut Vec<usize>, available: &[usize]) {
    cohort.retain(|id| available.contains(id));
    cohort.sort_unstable();
    cohort.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioConfig {
        let mut s = ScenarioConfig::small_fmnist(8, 200.0, 2).with_seed(7);
        s.train_size = 600;
        s.test_size = 200;
        s.max_epochs = 60;
        // The convex model learns within the few epochs this budget
        // buys; the MLP default needs the longer figure-scale runs. The
        // higher solver lr is stable here because cohorts are tiny.
        s.model = ModelArch::Linear { l2: 0.001 };
        s.dane.lr = 0.3;
        s
    }

    #[test]
    fn run_stops_at_budget() {
        let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedAvg);
        let out = runner.run();
        assert!(!out.epochs.is_empty());
        let last = out.epochs.last().unwrap();
        assert!(last.spent >= 200.0 || out.epochs.len() == 60, "run must end on budget or cap");
        // Monotone cumulative series.
        for w in out.epochs.windows(2) {
            assert!(w[1].sim_time >= w[0].sim_time);
            assert!(w[1].spent >= w[0].spent);
        }
    }

    #[test]
    fn all_policies_complete_and_learn() {
        for kind in PolicyKind::ALL {
            let mut runner = ExperimentRunner::new(scenario(), kind);
            let out = runner.run();
            assert!(!out.epochs.is_empty(), "{:?} ran no epochs", kind);
            assert!(
                out.final_accuracy() > 0.3,
                "{:?} failed to learn: accuracy {}",
                kind,
                out.final_accuracy()
            );
        }
    }

    #[test]
    fn outcome_helpers_consistent() {
        let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedL);
        let out = runner.run();
        assert_eq!(out.policy, "FedL");
        if let Some(t) = out.time_to_accuracy(0.3) {
            assert!(t <= out.total_sim_time());
        }
        let by_round = out.accuracy_by_round();
        assert_eq!(by_round.len(), out.epochs.len());
        assert!(by_round.windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    fn same_seed_same_environment_draws() {
        // Two runners on the same scenario see the same availability
        // pattern (policies may differ in what they do with it).
        let r1 = ExperimentRunner::new(scenario(), PolicyKind::FedAvg);
        let r2 = ExperimentRunner::new(scenario(), PolicyKind::FedL);
        for t in 0..10 {
            assert_eq!(r1.env.available(t), r2.env.available(t));
        }
    }

    #[test]
    fn cnn_scenario_trains_end_to_end() {
        let mut s = ScenarioConfig::small_fmnist_cnn(6, 60.0, 2).with_seed(19);
        s.train_size = 300;
        s.test_size = 100;
        s.max_epochs = 8;
        s.dane.local_steps = 3;
        let mut runner = ExperimentRunner::new(s, PolicyKind::FedAvg);
        let out = runner.run();
        assert!(!out.epochs.is_empty());
        assert!(out.final_accuracy().is_finite());
        // Loss must move (the CNN is actually training, not inert).
        let first = out.epochs.first().unwrap().global_loss;
        let last = out.epochs.last().unwrap().global_loss;
        assert!(last < first, "CNN global loss did not improve: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "does not match the dataset dimension")]
    fn cnn_shape_mismatch_rejected() {
        let mut s = ScenarioConfig::small_fmnist_cnn(4, 50.0, 2);
        s.dim_override = Some(64); // contradicts the (1,16,16) shape
        let _ = s.build_env();
    }

    #[test]
    fn sanitize_removes_bad_ids() {
        let mut cohort = vec![5, 1, 1, 9, 3];
        sanitize_decision(&mut cohort, &[1, 3, 5]);
        assert_eq!(cohort, vec![1, 3, 5]);
    }
}
