//! The experiment loop: drive any selection policy against a simulated
//! federation until the budget is exhausted (paper Alg. 1's outer
//! `while C ≥ 0` loop), recording the curves the figures plot.

use std::fmt;
use std::path::{Path, PathBuf};

use fedl_data::synth::{SyntheticSpec, TaskKind};
use fedl_data::Partition;
use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_linalg::rng::rng_for;
use fedl_ml::dane::DaneConfig;
use fedl_ml::model::{Cnn, ConvBlockSpec, MapShape, Mlp, Model, SoftmaxRegression};
use fedl_ml::params::ParamSet;
use fedl_sim::trace::{EpochEvent, RunTrace};
use fedl_sim::{BudgetLedger, EdgeEnvironment, EnvConfig, SimError};
use fedl_store::{content_address, read_envelope, write_envelope, StoreError};
use fedl_telemetry::Telemetry;

use crate::fedl::FedLConfig;
use crate::policy::{EpochContext, PolicyKind, SelectionPolicy};

/// Version of the run-snapshot / cache-key schema. Bumped whenever the
/// canonical scenario serialization or the checkpoint payload layout
/// changes, so stale snapshots are rejected and stale cache entries
/// miss instead of resurrecting results under a different contract
/// (docs/CHECKPOINT.md).
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Envelope kind tag for run checkpoints.
const CHECKPOINT_KIND: &str = "checkpoint";

/// A scenario configuration the runner cannot execute.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The environment configuration or budget was invalid.
    Env(SimError),
    /// The CNN input map disagrees with the dataset's feature dimension.
    ModelShape {
        /// Configured `(channels, height, width)`.
        shape: (usize, usize, usize),
        /// The dataset's actual feature dimension.
        dim: usize,
    },
    /// The participation floor `n` exceeds the population size `M`.
    ParticipationFloor {
        /// Configured floor.
        min_participants: usize,
        /// Number of clients.
        num_clients: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Env(e) => write!(f, "{e}"),
            ScenarioError::ModelShape { shape, dim } => {
                write!(f, "CNN shape {shape:?} does not match the dataset dimension {dim}")
            }
            ScenarioError::ParticipationFloor { min_participants, num_clients } => write!(
                f,
                "participation floor {min_participants} exceeds the {num_clients}-client population"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Env(e)
    }
}

/// Why [`ExperimentRunner::resume_from`] could not rebuild a run from a
/// checkpoint. Every variant is a value, never a panic, so callers can
/// fall back to a fresh run.
#[derive(Debug)]
pub enum ResumeError {
    /// The snapshot file was unreadable, truncated, corrupt, or of a
    /// foreign format version.
    Store(StoreError),
    /// The scenario itself cannot be executed (same failures as
    /// [`ExperimentRunner::try_new`]).
    Scenario(ScenarioError),
    /// The payload parsed but did not match the snapshot schema.
    Schema(fedl_json::Error),
    /// The snapshot was taken under a different scenario, policy, or
    /// schema version than the one being resumed.
    Fingerprint {
        /// Fingerprint of the scenario/policy being resumed.
        expected: String,
        /// Fingerprint recorded in the snapshot.
        found: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Store(e) => write!(f, "{e}"),
            ResumeError::Scenario(e) => write!(f, "{e}"),
            ResumeError::Schema(e) => write!(f, "snapshot schema mismatch: {e}"),
            ResumeError::Fingerprint { expected, found } => write!(
                f,
                "snapshot fingerprint {found} does not match the scenario/policy being resumed ({expected})"
            ),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Store(e) => Some(e),
            ResumeError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ResumeError {
    fn from(e: StoreError) -> Self {
        ResumeError::Store(e)
    }
}

impl From<ScenarioError> for ResumeError {
    fn from(e: ScenarioError) -> Self {
        ResumeError::Scenario(e)
    }
}

impl From<fedl_json::Error> for ResumeError {
    fn from(e: fedl_json::Error) -> Self {
        ResumeError::Schema(e)
    }
}

/// Global-model architecture.
#[derive(Debug, Clone)]
pub enum ModelArch {
    /// Softmax regression (convex reference model).
    Linear {
        /// L2 regularization coefficient.
        l2: f32,
    },
    /// ReLU MLP — the fast substitute for the paper's CNNs.
    Mlp {
        /// Hidden-layer widths.
        hidden: Vec<usize>,
        /// L2 regularization coefficient.
        l2: f32,
    },
    /// Convolutional network (the paper's actual model family:
    /// conv → ReLU → maxpool blocks with a softmax head). Slower than
    /// the MLP; the input dimension must equal `c·h·w`.
    Cnn {
        /// Input map `(channels, height, width)`.
        shape: (usize, usize, usize),
        /// `(out_channels, kernel)` per block.
        blocks: Vec<(usize, usize)>,
        /// L2 regularization coefficient.
        l2: f32,
    },
}

/// Everything needed to reproduce one experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Federation/environment parameters.
    pub env: EnvConfig,
    /// Which benchmark the synthetic data imitates.
    pub task: TaskKind,
    /// Optional feature-dimension override (speeds up CI-scale runs).
    pub dim_override: Option<usize>,
    /// Global training-pool size.
    pub train_size: usize,
    /// Held-out test-set size.
    pub test_size: usize,
    /// IID or non-IID split.
    pub partition: Partition,
    /// Model architecture.
    pub model: ModelArch,
    /// Local-solver hyper-parameters.
    pub dane: DaneConfig,
    /// Long-term budget `C`.
    pub budget: f64,
    /// Participation floor `n` per epoch.
    pub min_participants: usize,
    /// FedL hyper-parameters (ignored by baseline policies).
    pub fedl: FedLConfig,
    /// Safety cap on epochs (the budget normally stops the run first).
    pub max_epochs: usize,
}

impl ScenarioConfig {
    /// A laptop-scale FMNIST-like scenario: reduced dimension, small
    /// cohorts, seconds-scale runtime.
    pub fn small_fmnist(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        Self {
            env: EnvConfig::small(num_clients, 1),
            task: TaskKind::FmnistLike,
            dim_override: Some(64),
            train_size: 2000,
            test_size: 500,
            partition: Partition::Iid,
            model: ModelArch::Mlp { hidden: vec![64], l2: 0.0005 },
            // lr is sized so a *full-population* aggregate step (the
            // paper's 1/|E_t| rule makes the effective step proportional
            // to cohort size) stays stable: 6 local steps × 0.12 ≈ 0.7.
            dane: DaneConfig { local_steps: 6, lr: 0.12, ..Default::default() },
            budget,
            min_participants,
            fedl: FedLConfig::default(),
            max_epochs: 400,
        }
    }

    /// An FMNIST-like scenario with the paper's actual model family: a
    /// conv → ReLU → maxpool block on 16×16 single-channel images plus a
    /// softmax head. Noticeably slower per epoch than the MLP scenarios;
    /// used to confirm the substitution argument of DESIGN.md §2.
    pub fn small_fmnist_cnn(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        let mut s = Self::small_fmnist(num_clients, budget, min_participants);
        s.dim_override = Some(256); // 1 x 16 x 16
        s.model = ModelArch::Cnn { shape: (1, 16, 16), blocks: vec![(6, 5)], l2: 0.0005 };
        s
    }

    /// A laptop-scale CIFAR-like scenario (harder task, MLP model).
    pub fn small_cifar(num_clients: usize, budget: f64, min_participants: usize) -> Self {
        Self {
            task: TaskKind::CifarLike,
            dim_override: Some(128),
            model: ModelArch::Mlp { hidden: vec![64], l2: 0.0005 },
            ..Self::small_fmnist(num_clients, budget, min_participants)
        }
    }

    /// Overrides every seed in the scenario.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.env.seed = seed;
        self
    }

    /// Switches to a non-IID partition (the paper's principal-mix
    /// scheme with 80 % principal-class data).
    pub fn non_iid(mut self) -> Self {
        self.partition = Partition::PrincipalMix { principal_frac: 0.8 };
        self
    }

    /// Canonical serialization of the complete scenario, used for
    /// checkpoint fingerprints and result-cache keys. Field names and
    /// order are a compatibility contract (docs/CHECKPOINT.md): two
    /// scenarios produce the same text iff every parameter that can
    /// change a run's outcome is identical.
    pub fn canonical_json(&self) -> String {
        let task = match self.task {
            TaskKind::FmnistLike => "fmnist-like",
            TaskKind::CifarLike => "cifar-like",
        };
        let partition = match self.partition {
            Partition::Iid => obj(vec![("kind", Value::from("iid"))]),
            Partition::PrincipalMix { principal_frac } => obj(vec![
                ("kind", Value::from("principal-mix")),
                ("principal_frac", Value::Float(principal_frac)),
            ]),
            Partition::Shards => obj(vec![("kind", Value::from("shards"))]),
            Partition::Dirichlet { alpha } => {
                obj(vec![("kind", Value::from("dirichlet")), ("alpha", Value::Float(alpha))])
            }
        };
        let model = match &self.model {
            ModelArch::Linear { l2 } => {
                obj(vec![("kind", Value::from("linear")), ("l2", l2.to_json_value())])
            }
            ModelArch::Mlp { hidden, l2 } => obj(vec![
                ("kind", Value::from("mlp")),
                ("hidden", hidden.clone().to_json_value()),
                ("l2", l2.to_json_value()),
            ]),
            ModelArch::Cnn { shape, blocks, l2 } => obj(vec![
                ("kind", Value::from("cnn")),
                (
                    "shape",
                    Value::Arr(vec![
                        Value::from(shape.0),
                        Value::from(shape.1),
                        Value::from(shape.2),
                    ]),
                ),
                (
                    "blocks",
                    Value::Arr(
                        blocks
                            .iter()
                            .map(|&(oc, k)| Value::Arr(vec![Value::from(oc), Value::from(k)]))
                            .collect(),
                    ),
                ),
                ("l2", l2.to_json_value()),
            ]),
        };
        obj(vec![
            ("env", self.env.to_json_value()),
            ("task", Value::from(task)),
            ("dim_override", self.dim_override.map_or(Value::Null, Value::from)),
            ("train_size", self.train_size.to_json_value()),
            ("test_size", self.test_size.to_json_value()),
            ("partition", partition),
            ("model", model),
            ("dane", self.dane.to_json_value()),
            ("budget", self.budget.to_json_value()),
            ("min_participants", self.min_participants.to_json_value()),
            ("fedl", self.fedl.to_json_value()),
            ("max_epochs", self.max_epochs.to_json_value()),
        ])
        .to_json()
    }

    fn try_build_model(
        &self,
        input_dim: usize,
        classes: usize,
    ) -> Result<Box<dyn Model>, ScenarioError> {
        let mut rng = rng_for(self.env.seed, 0x40DE1);
        Ok(match &self.model {
            ModelArch::Linear { l2 } => Box::new(SoftmaxRegression::new(input_dim, classes, *l2)),
            ModelArch::Mlp { hidden, l2 } => {
                Box::new(Mlp::new(input_dim, hidden, classes, *l2, &mut rng))
            }
            ModelArch::Cnn { shape, blocks, l2 } => {
                let map = MapShape { c: shape.0, h: shape.1, w: shape.2 };
                if map.len() != input_dim {
                    return Err(ScenarioError::ModelShape { shape: *shape, dim: input_dim });
                }
                let specs = blocks
                    .iter()
                    .map(|&(out_channels, kernel)| ConvBlockSpec { out_channels, kernel })
                    .collect();
                Box::new(Cnn::new(map, specs, classes, *l2, &mut rng))
            }
        })
    }

    /// Builds the simulated environment for this scenario, reporting
    /// configuration problems as a [`ScenarioError`] instead of
    /// panicking.
    pub fn try_build_env(&self) -> Result<EdgeEnvironment, ScenarioError> {
        self.env.try_validate()?;
        if self.min_participants > self.env.num_clients {
            return Err(ScenarioError::ParticipationFloor {
                min_participants: self.min_participants,
                num_clients: self.env.num_clients,
            });
        }
        let mut spec =
            SyntheticSpec::new(self.task, self.train_size, self.test_size, self.env.seed);
        if let Some(dim) = self.dim_override {
            spec = spec.with_dim(dim);
        }
        let (train, test) = spec.generate();
        let model = self.try_build_model(train.dim(), train.num_classes)?;
        Ok(EdgeEnvironment::new(self.env.clone(), train, test, self.partition, model, self.dane))
    }

    /// Builds the simulated environment for this scenario.
    ///
    /// # Panics
    /// Panics with the [`Self::try_build_env`] error message on an
    /// invalid configuration.
    pub fn build_env(&self) -> EdgeEnvironment {
        self.try_build_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// One epoch's recorded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Cohort size.
    pub cohort_size: usize,
    /// Iterations run (`l_t`).
    pub iterations: usize,
    /// Cumulative simulated training time (seconds).
    pub sim_time: f64,
    /// Cumulative spend.
    pub spent: f64,
    /// Test-set accuracy after the epoch.
    pub accuracy: f64,
    /// Test-set loss after the epoch.
    pub test_loss: f64,
    /// Global training loss over all available clients.
    pub global_loss: f64,
}

impl ToJson for EpochRecord {
    fn to_json_value(&self) -> fedl_json::Value {
        fedl_json::obj(vec![
            ("epoch", self.epoch.to_json_value()),
            ("cohort_size", self.cohort_size.to_json_value()),
            ("iterations", self.iterations.to_json_value()),
            ("sim_time", self.sim_time.to_json_value()),
            ("spent", self.spent.to_json_value()),
            ("accuracy", self.accuracy.to_json_value()),
            ("test_loss", self.test_loss.to_json_value()),
            ("global_loss", self.global_loss.to_json_value()),
        ])
    }
}

impl FromJson for EpochRecord {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            epoch: read_field(v, "epoch")?,
            cohort_size: read_field(v, "cohort_size")?,
            iterations: read_field(v, "iterations")?,
            sim_time: read_field(v, "sim_time")?,
            spent: read_field(v, "spent")?,
            accuracy: read_field(v, "accuracy")?,
            test_loss: read_field(v, "test_loss")?,
            global_loss: read_field(v, "global_loss")?,
        })
    }
}

/// A completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Policy legend name.
    pub policy: String,
    /// Budget the run started with.
    pub budget: f64,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
}

impl ToJson for RunOutcome {
    fn to_json_value(&self) -> fedl_json::Value {
        fedl_json::obj(vec![
            ("policy", self.policy.to_json_value()),
            ("budget", self.budget.to_json_value()),
            ("epochs", self.epochs.to_json_value()),
        ])
    }
}

impl FromJson for RunOutcome {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        Ok(Self {
            policy: read_field(v, "policy")?,
            budget: read_field(v, "budget")?,
            epochs: read_field(v, "epochs")?,
        })
    }
}

impl RunOutcome {
    /// Accuracy after the final epoch (0 when no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |r| r.accuracy)
    }

    /// Global loss after the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |r| r.global_loss)
    }

    /// Total simulated training time.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.last().map_or(0.0, |r| r.sim_time)
    }

    /// First simulated time at which `target` accuracy was reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.epochs.iter().find(|r| r.accuracy >= target).map(|r| r.sim_time)
    }

    /// First federated round at which `target` accuracy was reached
    /// (counting every epoch as `iterations` rounds, matching the
    /// paper's "federated round" axis).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        let mut rounds = 0usize;
        for r in &self.epochs {
            rounds += r.iterations;
            if r.accuracy >= target {
                return Some(rounds);
            }
        }
        None
    }

    /// Accuracy at each cumulative federated round (for the round-axis
    /// figures).
    pub fn accuracy_by_round(&self) -> Vec<(usize, f64)> {
        let mut rounds = 0usize;
        self.epochs
            .iter()
            .map(|r| {
                rounds += r.iterations;
                (rounds, r.accuracy)
            })
            .collect()
    }
}

/// Drives one policy through one scenario.
pub struct ExperimentRunner {
    scenario: ScenarioConfig,
    env: EdgeEnvironment,
    policy: Box<dyn SelectionPolicy>,
    ledger: BudgetLedger,
    /// Last-known local loss per client (Pow-d hint; ln 10 ≈ the
    /// untrained 10-class loss).
    loss_hints: Vec<f64>,
    /// Structured event log of the run.
    trace: RunTrace,
    telemetry: Telemetry,
    /// Per-epoch records accumulated so far (struct state rather than a
    /// `run()` local so checkpoints can capture a half-finished run).
    records: Vec<EpochRecord>,
    /// Cumulative simulated training time.
    sim_time: f64,
    /// The next epoch `run()` will execute.
    next_epoch: usize,
    /// `Some((n, path))` = snapshot to `path` every `n` epochs.
    checkpoint: Option<(usize, PathBuf)>,
    /// Set by [`Self::resume_from`] so `run()` can report the restore.
    restored_from_epoch: Option<usize>,
}

impl ExperimentRunner {
    /// Builds the runner for `kind` on `scenario`, reporting
    /// configuration problems as a [`ScenarioError`].
    pub fn try_new(scenario: ScenarioConfig, kind: PolicyKind) -> Result<Self, ScenarioError> {
        BudgetLedger::try_new(scenario.budget)?;
        let env = scenario.try_build_env()?;
        let policy = kind.build(
            scenario.env.num_clients,
            scenario.budget,
            scenario.min_participants,
            scenario.fedl,
        );
        Ok(Self::with_policy(scenario, env, policy))
    }

    /// Builds the runner for `kind` on `scenario`.
    ///
    /// # Panics
    /// Panics with the [`Self::try_new`] error message on an invalid
    /// configuration.
    pub fn new(scenario: ScenarioConfig, kind: PolicyKind) -> Self {
        Self::try_new(scenario, kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the runner around an already-constructed policy (used by
    /// the ablation benches).
    pub fn with_policy(
        scenario: ScenarioConfig,
        env: EdgeEnvironment,
        policy: Box<dyn SelectionPolicy>,
    ) -> Self {
        let ledger = BudgetLedger::new(scenario.budget);
        let loss_hints = vec![(10.0f64).ln(); scenario.env.num_clients];
        Self {
            scenario,
            env,
            policy,
            ledger,
            loss_hints,
            trace: RunTrace::new(),
            telemetry: Telemetry::disabled(),
            records: Vec::new(),
            sim_time: 0.0,
            next_epoch: 0,
            checkpoint: None,
            restored_from_epoch: None,
        }
    }

    /// Snapshots the complete run state to `path` after every `every`
    /// epochs (atomic write; the previous snapshot is replaced). A run
    /// interrupted at any point and resumed from its latest snapshot
    /// via [`Self::resume_from`] produces a [`RunOutcome`] identical to
    /// the uninterrupted run.
    ///
    /// # Panics
    /// Panics when `every` is zero.
    pub fn checkpoint_every(mut self, every: usize, path: impl Into<PathBuf>) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint = Some((every, path.into()));
        self
    }

    /// The fingerprint binding a snapshot to one (scenario, policy,
    /// schema-version) triple.
    fn fingerprint(scenario: &ScenarioConfig, policy_name: &str) -> String {
        content_address(
            format!(
                "fedl-snapshot v{SNAPSHOT_SCHEMA_VERSION}\npolicy={policy_name}\n{}",
                scenario.canonical_json()
            )
            .as_bytes(),
        )
    }

    /// Serializes the complete mid-run state — model, aggregated
    /// gradient `J`, budget ledger, per-epoch records, policy internals
    /// (including exact RNG stream positions), and the event trace —
    /// into a checksummed envelope at `path`.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), StoreError> {
        let trace_events =
            Value::Arr(self.trace.events().iter().map(ToJson::to_json_value).collect());
        let payload = obj(vec![
            ("fingerprint", Value::Str(Self::fingerprint(&self.scenario, self.policy.name()))),
            ("policy", Value::from(self.policy.name())),
            ("next_epoch", self.next_epoch.to_json_value()),
            ("sim_time", self.sim_time.to_json_value()),
            ("records", self.records.to_json_value()),
            ("loss_hints", self.loss_hints.to_json_value()),
            (
                "ledger",
                obj(vec![
                    ("initial", self.ledger.initial().to_json_value()),
                    ("charges", self.ledger.history().to_vec().to_json_value()),
                ]),
            ),
            (
                "server",
                obj(vec![
                    ("model", self.env.server().model().params().to_json_value()),
                    ("j_agg", self.env.server().j_agg().to_json_value()),
                ]),
            ),
            ("policy_state", self.policy.snapshot_state()),
            ("trace", trace_events),
        ]);
        write_envelope(path, CHECKPOINT_KIND, &payload)?;
        self.telemetry.emit(
            "checkpoint.saved",
            vec![
                ("path", Value::Str(path.display().to_string())),
                ("next_epoch", Value::from(self.next_epoch)),
            ],
        );
        self.telemetry.counter("checkpoint.saved").incr();
        Ok(())
    }

    /// Rebuilds a runner mid-run from a [`Self::save_checkpoint`]
    /// snapshot. The scenario and policy kind must be exactly the ones
    /// the snapshot was taken under (verified via the fingerprint);
    /// calling [`Self::run`] on the result continues from the next
    /// unexecuted epoch and returns the same [`RunOutcome`] the
    /// uninterrupted run would have.
    pub fn resume_from(
        scenario: ScenarioConfig,
        kind: PolicyKind,
        path: &Path,
    ) -> Result<Self, ResumeError> {
        let payload = read_envelope(path, CHECKPOINT_KIND)?;
        let mut runner = Self::try_new(scenario, kind)?;
        let expected = Self::fingerprint(&runner.scenario, runner.policy.name());
        let found: String = read_field(&payload, "fingerprint")?;
        if found != expected {
            return Err(ResumeError::Fingerprint { expected, found });
        }
        runner.next_epoch = read_field(&payload, "next_epoch")?;
        runner.sim_time = read_field(&payload, "sim_time")?;
        runner.records = read_field(&payload, "records")?;
        runner.loss_hints = read_field(&payload, "loss_hints")?;
        if runner.loss_hints.len() != runner.scenario.env.num_clients {
            return Err(ResumeError::Schema(fedl_json::Error::msg(format!(
                "snapshot carries {} loss hints for {} clients",
                runner.loss_hints.len(),
                runner.scenario.env.num_clients
            ))));
        }
        let ledger_v = payload.field("ledger")?;
        runner.ledger = BudgetLedger::restore(
            read_field(ledger_v, "initial")?,
            read_field(ledger_v, "charges")?,
        )
        .map_err(|e| ResumeError::Scenario(ScenarioError::Env(e)))?;
        let server_v = payload.field("server")?;
        let model: ParamSet = read_field(server_v, "model")?;
        let j_agg: ParamSet = read_field(server_v, "j_agg")?;
        runner.env.server_mut().set_model_params(model);
        runner.env.server_mut().set_j_agg(j_agg);
        runner.policy.restore_state(payload.field("policy_state")?)?;
        let events: Vec<EpochEvent> = read_field(&payload, "trace")?;
        runner.trace = RunTrace::from_events(events);
        runner.restored_from_epoch = Some(runner.next_epoch);
        Ok(runner)
    }

    /// Routes the whole run's observability through `telemetry`: the
    /// runner emits `run_start`/`epoch`/`run_end` events and the
    /// `epoch`/`select`/`evaluate` spans, and forwards clones to the
    /// environment (→ `train`/`round` spans, `sim.*`/`ml.*` metrics)
    /// and the budget ledger (→ `ledger` events, `budget.*` metrics).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.env.set_telemetry(telemetry.clone());
        self.ledger.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The structured per-epoch event log recorded by [`Self::run`].
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// The environment (exposed for inspection in tests/benches).
    pub fn env(&self) -> &EdgeEnvironment {
        &self.env
    }

    /// The policy being driven.
    pub fn policy(&self) -> &dyn SelectionPolicy {
        self.policy.as_ref()
    }

    fn context_for(&self, epoch: usize) -> Option<EpochContext> {
        let views = self.env.views(epoch);
        let available: Vec<usize> = views.iter().filter(|v| v.available).map(|v| v.id).collect();
        if available.is_empty() {
            return None;
        }
        let costs: Vec<f64> = available.iter().map(|&k| views[k].cost).collect();
        let data_volumes: Vec<usize> = available.iter().map(|&k| views[k].data_volume).collect();
        // Latency estimates from the previous epoch's channel state
        // (epoch 0 uses its own state as the prior), under a nominal
        // FDMA share of n.
        let hint_epoch = epoch.saturating_sub(1);
        let latency_hint = self.env.latency_with_share(
            hint_epoch,
            &available,
            self.scenario.min_participants.max(1),
        );
        let loss_hint: Vec<f64> = available.iter().map(|&k| self.loss_hints[k]).collect();
        // Current-epoch realized latencies: oracle-only 1-lookahead data.
        let true_latency =
            self.env.latency_with_share(epoch, &available, self.scenario.min_participants.max(1));
        Some(EpochContext {
            epoch,
            num_clients: self.scenario.env.num_clients,
            available,
            costs,
            data_volumes,
            latency_hint,
            loss_hint,
            true_latency,
            remaining_budget: self.ledger.remaining(),
            min_participants: self.scenario.min_participants,
            seed: self.scenario.env.seed,
        })
    }

    /// Runs the experiment to budget exhaustion (or the epoch cap) and
    /// returns the recorded curves. On a runner rebuilt with
    /// [`Self::resume_from`], continues from the checkpointed epoch.
    pub fn run(&mut self) -> RunOutcome {
        self.telemetry.emit(
            "run_start",
            vec![
                ("schema_version", Value::from(fedl_telemetry::RUN_LOG_SCHEMA_VERSION as usize)),
                ("policy", Value::from(self.policy.name())),
                ("budget", Value::Float(self.scenario.budget)),
                ("num_clients", Value::from(self.scenario.env.num_clients)),
                ("min_participants", Value::from(self.scenario.min_participants)),
                ("seed", Value::Int(self.scenario.env.seed as i64)),
                ("max_epochs", Value::from(self.scenario.max_epochs)),
            ],
        );
        if let Some(epoch) = self.restored_from_epoch.take() {
            self.telemetry.emit(
                "checkpoint.restored",
                vec![
                    ("next_epoch", Value::from(epoch)),
                    ("epochs_already_recorded", Value::from(self.records.len())),
                ],
            );
            self.telemetry.counter("checkpoint.restored").incr();
        }
        while self.step() {}
        let outcome = RunOutcome {
            policy: self.policy.name().to_string(),
            budget: self.scenario.budget,
            epochs: self.records.clone(),
        };
        self.telemetry.emit(
            "run_end",
            vec![
                ("epochs", Value::from(outcome.epochs.len())),
                ("spent", Value::Float(self.ledger.spent())),
                ("sim_time", Value::Float(outcome.total_sim_time())),
                ("final_accuracy", Value::Float(outcome.final_accuracy())),
            ],
        );
        self.telemetry.emit_metrics();
        self.telemetry.flush();
        outcome
    }

    /// Executes the next epoch (selection → training → payment →
    /// feedback → evaluation), or skips it when no client is available.
    /// Returns `false` once the budget is exhausted or the epoch cap is
    /// reached. [`Self::run`] is the normal entry point; `step` is
    /// exposed so drivers can interrupt a run at an arbitrary epoch
    /// boundary and later continue it from a snapshot
    /// ([`Self::save_checkpoint`] / [`Self::resume_from`]).
    pub fn step(&mut self) -> bool {
        if self.ledger.exhausted() || self.next_epoch >= self.scenario.max_epochs {
            return false;
        }
        let epoch = self.next_epoch;
        let epoch_span = self.telemetry.span("epoch");
        let select_span = epoch_span.child("select");
        if let Some(ctx) = self.context_for(epoch) {
            let mut decision = self.policy.select(&ctx);
            sanitize_decision(&mut decision.cohort, &ctx.available);
            if decision.cohort.is_empty() {
                // Defensive fallback: the floor-n cheapest clients.
                decision.cohort = ctx.available.iter().copied().take(ctx.effective_n()).collect();
            }
            drop(select_span);
            self.emit_select_event(epoch, &decision.cohort);
            let iterations = decision.iterations.clamp(1, 50);
            let report =
                self.env.run_epoch_in(epoch, &decision.cohort, iterations, Some(&epoch_span));
            self.ledger.charge(report.cost);
            self.trace.record(&report, self.ledger.remaining());
            for (slot, &k) in report.cohort.iter().enumerate() {
                self.loss_hints[k] = report.local_losses[slot] as f64;
            }
            self.policy.observe(&ctx, &report);
            self.sim_time += report.latency_secs;
            let evaluate_span = epoch_span.child("evaluate");
            let accuracy = self.env.test_accuracy();
            let test_loss = self.env.test_loss();
            drop(evaluate_span);
            self.emit_epoch_event(&ctx, &report, iterations, accuracy, test_loss);
            self.records.push(EpochRecord {
                epoch,
                cohort_size: report.cohort.len(),
                iterations,
                sim_time: self.sim_time,
                spent: self.ledger.spent(),
                accuracy,
                test_loss,
                global_loss: report.global_loss_all,
            });
            drop(epoch_span);
        } else {
            // Nobody was available: no phase ran, so neither timer
            // should contribute a sample.
            select_span.cancel();
            epoch_span.cancel();
        }
        self.next_epoch += 1;
        self.maybe_checkpoint();
        !self.ledger.exhausted() && self.next_epoch < self.scenario.max_epochs
    }

    /// Saves a snapshot when an interval is configured and the epoch
    /// counter hits it. A failed save is reported through telemetry but
    /// never interrupts the run — losing a checkpoint only costs resume
    /// granularity, while aborting would lose the run itself.
    // `is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.85.
    #[allow(clippy::manual_is_multiple_of)]
    fn maybe_checkpoint(&mut self) {
        let Some((every, path)) = self.checkpoint.clone() else {
            return;
        };
        if self.next_epoch % every != 0 {
            return;
        }
        if let Err(e) = self.save_checkpoint(&path) {
            self.telemetry.emit(
                "checkpoint.save_failed",
                vec![
                    ("path", Value::Str(path.display().to_string())),
                    ("error", Value::Str(e.to_string())),
                ],
            );
        }
    }

    /// Emits the per-epoch `select` event: which clients the policy
    /// committed to renting this epoch, together with the policy's
    /// current per-client quality estimates (FedL's smoothed η̂ₖ; `null`
    /// for baselines without per-client memory). This is the decision
    /// *before* mid-epoch dropouts, so the dashboard can attribute
    /// payments to every rented client, survivor or not.
    fn emit_select_event(&self, epoch: usize, cohort: &[usize]) {
        if !self.telemetry.enabled() {
            return;
        }
        let estimates: Vec<f64> =
            cohort.iter().map(|&k| self.policy.client_estimate(k).unwrap_or(f64::NAN)).collect();
        self.telemetry.emit(
            "select",
            vec![
                ("epoch", Value::from(epoch)),
                ("cohort", cohort.to_vec().to_json_value()),
                ("estimates", estimates.to_json_value()),
            ],
        );
    }

    /// Emits the per-epoch `epoch` event: the selection set, estimated
    /// vs realized per-iteration latencies, cost and budget state,
    /// measured local accuracies η̂, and the policy's regret/fit terms
    /// (NaN for policies without a tracker).
    fn emit_epoch_event(
        &self,
        ctx: &EpochContext,
        report: &fedl_sim::EpochReport,
        iterations: usize,
        accuracy: f64,
        test_loss: f64,
    ) {
        if !self.telemetry.enabled() {
            return;
        }
        // The policy selected using `ctx.latency_hint` (previous-epoch
        // estimates, aligned with `ctx.available`); the report carries
        // what the same clients actually took this epoch.
        let est_latency: Vec<f64> = report
            .cohort
            .iter()
            .map(|&k| {
                ctx.available
                    .iter()
                    .position(|&a| a == k)
                    .map_or(f64::NAN, |slot| ctx.latency_hint[slot])
            })
            .collect();
        let (regret, fit) = self.policy.regret_tracker().map_or((f64::NAN, f64::NAN), |t| {
            (
                t.cumulative_regret().last().copied().unwrap_or(f64::NAN),
                t.fit().last().copied().unwrap_or(f64::NAN),
            )
        });
        let eta_hats: Vec<f64> = report.eta_hats.iter().map(|&e| e as f64).collect();
        self.telemetry.emit(
            "epoch",
            vec![
                ("epoch", Value::from(report.epoch)),
                ("cohort", report.cohort.clone().to_json_value()),
                ("failed", report.failed.clone().to_json_value()),
                ("iterations", Value::from(iterations)),
                ("cost", Value::Float(report.cost)),
                ("budget_remaining", Value::Float(self.ledger.remaining())),
                ("latency_secs", Value::Float(report.latency_secs)),
                ("est_iter_latency", est_latency.to_json_value()),
                ("realized_iter_latency", report.per_client_iter_latency.clone().to_json_value()),
                ("eta_hats", eta_hats.to_json_value()),
                ("accuracy", Value::Float(accuracy)),
                ("test_loss", Value::Float(test_loss)),
                ("global_loss", Value::Float(report.global_loss_all)),
                ("regret", Value::Float(regret)),
                ("fit", Value::Float(fit)),
            ],
        );
        self.telemetry.gauge("run.accuracy").set(accuracy);
        self.telemetry.histogram("run.epoch_cost").record(report.cost);
    }
}

/// Drops out-of-availability ids and duplicates (policy bugs must not
/// crash the simulator; the per-policy tests assert they don't happen).
fn sanitize_decision(cohort: &mut Vec<usize>, available: &[usize]) {
    cohort.retain(|id| available.contains(id));
    cohort.sort_unstable();
    cohort.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioConfig {
        let mut s = ScenarioConfig::small_fmnist(8, 200.0, 2).with_seed(7);
        s.train_size = 600;
        s.test_size = 200;
        s.max_epochs = 60;
        // The convex model learns within the few epochs this budget
        // buys; the MLP default needs the longer figure-scale runs. The
        // higher solver lr is stable here because cohorts are tiny.
        s.model = ModelArch::Linear { l2: 0.001 };
        s.dane.lr = 0.3;
        s
    }

    #[test]
    fn run_stops_at_budget() {
        let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedAvg);
        let out = runner.run();
        assert!(!out.epochs.is_empty());
        let last = out.epochs.last().unwrap();
        assert!(last.spent >= 200.0 || out.epochs.len() == 60, "run must end on budget or cap");
        // Monotone cumulative series.
        for w in out.epochs.windows(2) {
            assert!(w[1].sim_time >= w[0].sim_time);
            assert!(w[1].spent >= w[0].spent);
        }
    }

    #[test]
    fn all_policies_complete_and_learn() {
        for kind in PolicyKind::ALL {
            let mut runner = ExperimentRunner::new(scenario(), kind);
            let out = runner.run();
            assert!(!out.epochs.is_empty(), "{:?} ran no epochs", kind);
            assert!(
                out.final_accuracy() > 0.3,
                "{:?} failed to learn: accuracy {}",
                kind,
                out.final_accuracy()
            );
        }
    }

    #[test]
    fn outcome_helpers_consistent() {
        let mut runner = ExperimentRunner::new(scenario(), PolicyKind::FedL);
        let out = runner.run();
        assert_eq!(out.policy, "FedL");
        if let Some(t) = out.time_to_accuracy(0.3) {
            assert!(t <= out.total_sim_time());
        }
        let by_round = out.accuracy_by_round();
        assert_eq!(by_round.len(), out.epochs.len());
        assert!(by_round.windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    fn same_seed_same_environment_draws() {
        // Two runners on the same scenario see the same availability
        // pattern (policies may differ in what they do with it).
        let r1 = ExperimentRunner::new(scenario(), PolicyKind::FedAvg);
        let r2 = ExperimentRunner::new(scenario(), PolicyKind::FedL);
        for t in 0..10 {
            assert_eq!(r1.env.available(t), r2.env.available(t));
        }
    }

    #[test]
    fn cnn_scenario_trains_end_to_end() {
        let mut s = ScenarioConfig::small_fmnist_cnn(6, 60.0, 2).with_seed(19);
        s.train_size = 300;
        s.test_size = 100;
        s.max_epochs = 8;
        s.dane.local_steps = 3;
        let mut runner = ExperimentRunner::new(s, PolicyKind::FedAvg);
        let out = runner.run();
        assert!(!out.epochs.is_empty());
        assert!(out.final_accuracy().is_finite());
        // Loss must move (the CNN is actually training, not inert).
        let first = out.epochs.first().unwrap().global_loss;
        let last = out.epochs.last().unwrap().global_loss;
        assert!(last < first, "CNN global loss did not improve: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "does not match the dataset dimension")]
    fn cnn_shape_mismatch_rejected() {
        let mut s = ScenarioConfig::small_fmnist_cnn(4, 50.0, 2);
        s.dim_override = Some(64); // contradicts the (1,16,16) shape
        let _ = s.build_env();
    }

    #[test]
    fn sanitize_removes_bad_ids() {
        let mut cohort = vec![5, 1, 1, 9, 3];
        sanitize_decision(&mut cohort, &[1, 3, 5]);
        assert_eq!(cohort, vec![1, 3, 5]);
    }

    #[test]
    fn try_new_reports_config_problems_as_values() {
        let mut s = scenario();
        s.budget = -5.0;
        match ExperimentRunner::try_new(s, PolicyKind::FedAvg).err() {
            Some(ScenarioError::Env(e)) => {
                assert!(e.to_string().contains("budget must be positive"))
            }
            other => panic!("expected budget error, got {other:?}"),
        }

        let mut s = scenario();
        s.min_participants = 99;
        match ExperimentRunner::try_new(s, PolicyKind::FedAvg).err() {
            Some(ScenarioError::ParticipationFloor { min_participants: 99, num_clients: 8 }) => {}
            other => panic!("expected floor error, got {other:?}"),
        }

        let mut s = scenario();
        s.env.cost_range = (3.0, 1.0);
        let err = ExperimentRunner::try_new(s, PolicyKind::FedAvg)
            .err()
            .expect("inverted cost range must be rejected");
        assert!(err.to_string().contains("bad cost range"), "{err}");

        let mut s = ScenarioConfig::small_fmnist_cnn(4, 50.0, 2);
        s.dim_override = Some(64);
        match s.try_build_env().err() {
            Some(e @ ScenarioError::ModelShape { shape: (1, 16, 16), dim: 64 }) => {
                assert!(e.to_string().contains("does not match the dataset dimension"))
            }
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn valid_scenario_passes_try_new() {
        if let Err(e) = ExperimentRunner::try_new(scenario(), PolicyKind::FedL) {
            panic!("valid scenario rejected: {e}");
        }
    }

    fn checkpoint_scenario() -> ScenarioConfig {
        let mut s = scenario();
        s.budget = 90.0;
        s.max_epochs = 12;
        s
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_run_exactly() {
        let dir = std::env::temp_dir().join("fedl_runner_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        for kind in [PolicyKind::FedL, PolicyKind::FedAvg, PolicyKind::PowD] {
            let s = checkpoint_scenario();
            let full = ExperimentRunner::new(s.clone(), kind).run();
            assert!(full.epochs.len() > 5, "{kind:?} run too short to interrupt");

            // Interrupt after 5 epochs, snapshot, throw the runner away.
            let path = dir.join(format!("{kind:?}.fedlstore"));
            let mut first = ExperimentRunner::new(s.clone(), kind);
            for _ in 0..5 {
                assert!(first.step());
            }
            first.save_checkpoint(&path).unwrap();
            drop(first);

            // Resume in a fresh process-equivalent and finish.
            let mut second = ExperimentRunner::resume_from(s, kind, &path).unwrap();
            let resumed = second.run();
            assert_eq!(full, resumed, "{kind:?} resumed run diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_foreign_fingerprints_and_corruption() {
        let dir = std::env::temp_dir().join("fedl_runner_resume_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.fedlstore");
        let s = checkpoint_scenario();
        let mut runner = ExperimentRunner::new(s.clone(), PolicyKind::FedAvg);
        runner.step();
        runner.save_checkpoint(&path).unwrap();

        // Different policy → fingerprint mismatch.
        match ExperimentRunner::resume_from(s.clone(), PolicyKind::FedL, &path).err() {
            Some(ResumeError::Fingerprint { .. }) => {}
            other => panic!("expected fingerprint error, got {other:?}"),
        }
        // Different scenario (seed) → fingerprint mismatch.
        let reseeded = checkpoint_scenario().with_seed(99);
        match ExperimentRunner::resume_from(reseeded, PolicyKind::FedAvg, &path).err() {
            Some(ResumeError::Fingerprint { .. }) => {}
            other => panic!("expected fingerprint error, got {other:?}"),
        }
        // Bit flip in the body → typed checksum error.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match ExperimentRunner::resume_from(s.clone(), PolicyKind::FedAvg, &path).err() {
            Some(ResumeError::Store(StoreError::ChecksumMismatch { .. })) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // Truncation → typed truncation error.
        std::fs::write(&path, "fedl-store").unwrap();
        match ExperimentRunner::resume_from(s, PolicyKind::FedAvg, &path).err() {
            Some(ResumeError::Store(StoreError::Truncated { .. })) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_every_writes_and_telemetry_reports() {
        let dir = std::env::temp_dir().join("fedl_runner_ckpt_interval_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.fedlstore");
        let (tel, handle) = Telemetry::in_memory();
        let mut runner = ExperimentRunner::new(checkpoint_scenario(), PolicyKind::FedAvg)
            .checkpoint_every(2, &path)
            .with_telemetry(tel.clone());
        let out = runner.run();
        assert!(path.exists(), "interval checkpointing never wrote a snapshot");
        let saves = handle
            .events()
            .unwrap()
            .iter()
            .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("checkpoint.saved"))
            .count();
        assert!(saves >= out.epochs.len() / 2, "expected periodic saves, got {saves}");
        assert_eq!(tel.counter("checkpoint.saved").value(), saves as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canonical_json_is_stable_and_parameter_sensitive() {
        let s = checkpoint_scenario();
        let a = s.canonical_json();
        assert_eq!(a, checkpoint_scenario().canonical_json(), "must be deterministic");
        assert!(a.contains("\"env\":") && a.contains("\"fedl\":"), "{a}");
        let mut t = checkpoint_scenario();
        t.budget += 1.0;
        assert_ne!(a, t.canonical_json(), "budget must be part of the key");
        let reseeded = checkpoint_scenario().with_seed(1234);
        assert_ne!(a, reseeded.canonical_json(), "seed must be part of the key");
    }

    #[test]
    fn epoch_record_and_outcome_json_round_trip() {
        let rec = EpochRecord {
            epoch: 3,
            cohort_size: 4,
            iterations: 2,
            sim_time: 12.5,
            spent: 33.25,
            accuracy: 0.875,
            test_loss: 0.4375,
            global_loss: 0.75,
        };
        let out = RunOutcome {
            policy: "FedL".to_string(),
            budget: 200.0,
            epochs: vec![rec.clone(), EpochRecord { epoch: 4, ..rec.clone() }],
        };
        let back = RunOutcome::from_json_value(&out.to_json_value()).unwrap();
        assert_eq!(out, back);
        let rec_back = EpochRecord::from_json_value(&rec.to_json_value()).unwrap();
        assert_eq!(rec, rec_back);
    }
}
