//! The service's crash-safety contract (extends the conventions of the
//! root `tests/checkpoint.rs`): replay half the load, kill the server,
//! restart from its checkpoint, replay the rest — the selection
//! sequence must be bit-identical to an uninterrupted served run, which
//! itself must match the in-process reference driver.

use std::fs;
use std::path::PathBuf;

use fedl_core::policy::PolicyKind;
use fedl_serve::{
    reference_run, run_loadgen, InProcessTransport, LoadgenOptions, SelectionRecord, ServeConfig,
    ServeError, ServerState,
};
use fedl_telemetry::Telemetry;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fedl_serve_determinism_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config() -> ServeConfig {
    ServeConfig::new(50, 13, 100_000.0, 3, PolicyKind::FedL)
}

fn drive(
    server: &mut ServerState,
    config: &ServeConfig,
    start: usize,
    epochs: usize,
) -> Vec<SelectionRecord> {
    let mut conn = InProcessTransport::new(server);
    let opts = LoadgenOptions { epochs, start_epoch: start, shutdown: false };
    run_loadgen(&mut conn, config, &opts).expect("loadgen should succeed").selections
}

#[test]
fn killed_and_restarted_server_is_bit_identical() {
    let config = config();
    let ckpt = tmp("kill_restart.fedlstore");
    fs::remove_file(&ckpt).ok();

    // Uninterrupted served run: 12 epochs on one server.
    let mut uninterrupted = ServerState::new(config.clone(), Telemetry::disabled());
    let full = drive(&mut uninterrupted, &config, 0, 12);
    assert_eq!(full.len(), 12);
    assert!(full.iter().all(|r| !r.cohort.is_empty()), "50 clients: every epoch selects");

    // Interrupted run: 6 epochs, checkpointing every 2, then the server
    // is dropped (killed) and a new process-equivalent resumes.
    let mut first =
        ServerState::new(config.clone(), Telemetry::disabled()).with_checkpoint(&ckpt, 2);
    let half1 = drive(&mut first, &config, 0, 6);
    drop(first);

    let mut resumed = ServerState::resume(config.clone(), Telemetry::disabled(), &ckpt)
        .expect("resume should succeed")
        .with_checkpoint(&ckpt, 2);
    assert_eq!(resumed.next_epoch(), 6, "checkpoint-every 2 lands exactly on epoch 6");
    let half2 = drive(&mut resumed, &config, 6, 6);

    let mut stitched = half1;
    stitched.extend(half2);
    assert_eq!(stitched, full, "kill + restart must not change a single selection");

    // And the protocol path itself must match the in-process reference.
    assert_eq!(full, reference_run(&config, 12));
    fs::remove_file(&ckpt).ok();
}

#[test]
fn registry_survives_the_checkpoint() {
    let config = ServeConfig::new(20, 9, 5_000.0, 2, PolicyKind::FedAvg);
    let ckpt = tmp("registry.fedlstore");
    fs::remove_file(&ckpt).ok();
    let mut server =
        ServerState::new(config.clone(), Telemetry::disabled()).with_checkpoint(&ckpt, 1);
    // Join a strict subset, run one epoch so a checkpoint lands.
    let _ = drive(&mut server, &config, 0, 1);
    assert_eq!(server.registered_count(), 20);
    drop(server);
    let resumed = ServerState::resume(config, Telemetry::disabled(), &ckpt).unwrap();
    assert_eq!(resumed.registered_count(), 20, "registry must be restored");
    assert_eq!(resumed.next_epoch(), 1);
    assert_eq!(resumed.selections(), 1);
    fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_refuses_a_foreign_deployment() {
    let config = config();
    let ckpt = tmp("foreign.fedlstore");
    fs::remove_file(&ckpt).ok();
    let mut server =
        ServerState::new(config.clone(), Telemetry::disabled()).with_checkpoint(&ckpt, 1);
    let _ = drive(&mut server, &config, 0, 2);
    drop(server);
    // Same file, different seed: the fingerprint must not match.
    let other = ServeConfig::new(50, 14, 100_000.0, 3, PolicyKind::FedL);
    match ServerState::resume(other, Telemetry::disabled(), &ckpt) {
        Err(ServeError::Fingerprint { .. }) => {}
        other => panic!("expected Fingerprint error, got {:?}", other.err().map(|e| e.to_string())),
    }
    // And a damaged checkpoint is a typed store error, not a panic.
    let text = fs::read_to_string(&ckpt).unwrap();
    fs::write(&ckpt, &text[..text.len() / 2]).unwrap();
    assert!(matches!(
        ServerState::resume(config, Telemetry::disabled(), &ckpt),
        Err(ServeError::Store(_))
    ));
    fs::remove_file(&ckpt).ok();
}
