//! Protocol robustness: a seeded fuzz loop throws truncated,
//! bit-flipped, oversized-length, and garbage frames at the decoder
//! and the server. Every case must come back as a typed
//! [`ProtocolError`] (or a wire `error` message) — never a panic — and
//! must bump the malformed-frame counter, mirroring the run log's
//! lenient line parsing.

use std::io::Cursor;

use fedl_core::policy::PolicyKind;
use fedl_linalg::rng::{rng_for, Rng};
use fedl_serve::{
    decode_frame, read_frame, write_frame, Message, ProtocolError, ServeConfig, ServerState,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use fedl_telemetry::Telemetry;

/// A rotating set of well-formed messages to mutate.
fn valid_message(i: usize) -> Message {
    match i % 6 {
        0 => Message::Hello { protocol_version: PROTOCOL_VERSION, node: "fuzz".into() },
        1 => Message::ClientJoin { client: i % 40 },
        2 => Message::SelectCohort { epoch: i, trace: fedl_serve::Trace::Absent },
        3 => Message::Cohort { epoch: i, cohort: vec![1, 2, 3], iterations: 4, done: false },
        4 => Message::TrainResult {
            epoch: i,
            cohort: vec![0, 5],
            iterations: 3,
            latency_secs: 1.5,
            per_client_iter_latency: vec![0.5, 0.25],
            cost: 7.5,
            eta_hats: vec![0.5, 0.625],
            global_loss: 2.25,
            grad_dot_delta: vec![-0.125, -0.5],
            local_losses: vec![2.0, 2.5],
        },
        _ => Message::Shutdown,
    }
}

#[test]
fn mutated_frames_yield_typed_errors_and_count() {
    let config = ServeConfig::new(40, 3, 1000.0, 3, PolicyKind::FedL);
    let mut server = ServerState::new(config, Telemetry::in_memory().0);
    let mut rng = rng_for(0xF022_2ED5, 1);
    let rounds = 300usize;
    for i in 0..rounds {
        let mut frame = fedl_serve::encode_frame(&valid_message(i));
        match i % 3 {
            0 => {
                // Truncate somewhere inside the frame.
                let cut = (rng.next_u64() as usize) % frame.len();
                frame.truncate(cut);
            }
            1 => {
                // Flip one random bit.
                let byte = (rng.next_u64() as usize) % frame.len();
                let bit = (rng.next_u64() % 8) as u8;
                frame[byte] ^= 1 << bit;
            }
            _ => {
                // Replace with garbage bytes of random length.
                let len = 1 + (rng.next_u64() as usize) % 64;
                frame = (0..len).map(|_| rng.next_u64() as u8).collect();
            }
        }
        let before = server.malformed_frames();
        let (reply, _control) = server.handle_frame(&frame);
        let decoded = decode_frame(&reply).expect("server replies are always well-formed");
        assert!(
            matches!(decoded, Message::Error { .. }),
            "round {i}: mutated frame must be refused, got {decoded:?}"
        );
        assert_eq!(server.malformed_frames(), before + 1, "round {i}: counter must move");
    }
    assert_eq!(server.malformed_frames(), rounds as u64);
    // The server survived 300 rounds of abuse and still works.
    let (reply, _) = server.handle_message(Message::ClientJoin { client: 0 });
    assert!(matches!(reply, Message::Snapshot { .. }));
}

#[test]
fn stream_level_damage_is_typed() {
    // Oversized length prefix: desync, not an allocation attempt.
    let huge = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
    assert!(matches!(read_frame(&mut Cursor::new(huge)), Err(ProtocolError::FrameTooLarge { .. })));
    // Stream cut inside the length prefix.
    assert!(matches!(
        read_frame(&mut Cursor::new(vec![0u8; 3])),
        Err(ProtocolError::TruncatedFrame { expected: 4, got: 3 })
    ));
    // Stream cut inside the payload.
    let mut wire = Vec::new();
    write_frame(&mut wire, &fedl_serve::encode_frame(&Message::Shutdown)).unwrap();
    wire.truncate(wire.len() - 5);
    assert!(matches!(
        read_frame(&mut Cursor::new(wire)),
        Err(ProtocolError::TruncatedFrame { .. })
    ));
    // An over-limit frame is refused on the send side too.
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &vec![0u8; MAX_FRAME_BYTES + 1]),
        Err(ProtocolError::FrameTooLarge { .. })
    ));
}

#[test]
fn fuzzed_trace_ids_never_panic_and_are_counted() {
    use fedl_json::{obj, Value};
    let config = ServeConfig::new(40, 3, 1000.0, 3, PolicyKind::FedL);
    let tel = Telemetry::in_memory().0;
    let mut server = ServerState::new(config, tel.clone());
    let mut rng = rng_for(0x7_2ACE, 3);
    let mut invalid = 0u64;
    for i in 0..200 {
        // Random bytes rendered as a JSON string: sometimes valid hex,
        // mostly garbage (overlong, non-hex, empty, signed).
        let mut gen_id = || {
            let len = (rng.next_u64() % 24) as usize;
            (0..len).map(|_| (rng.next_u64() % 96 + 32) as u8 as char).collect::<String>()
        };
        let trace_id = gen_id();
        let span_id = gen_id();
        let valid =
            |s: &str| !s.is_empty() && s.len() <= 16 && s.bytes().all(|b| b.is_ascii_hexdigit());
        if !(valid(&trace_id) && valid(&span_id)) {
            invalid += 1;
        }
        let payload = obj(vec![
            ("type", Value::from("select_cohort")),
            ("epoch", Value::Int(i as i64)),
            ("trace_id", Value::from(trace_id)),
            ("span_id", Value::from(span_id)),
        ]);
        let frame = fedl_store::encode_envelope("serve-msg", &payload).into_bytes();
        // Must never panic; the reply is always a well-formed frame.
        let (reply, _) = server.handle_frame(&frame);
        decode_frame(&reply).expect("server replies are always well-formed");
    }
    assert!(invalid > 0, "the generator should produce garbage ids");
    assert_eq!(tel.counter("proto.bad_trace_ids").value(), invalid);
}

#[test]
fn decoder_never_panics_on_seeded_garbage() {
    let mut rng = rng_for(0xDECAF, 2);
    for _ in 0..500 {
        let len = (rng.next_u64() as usize) % 256;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Must be an Err, and must not panic.
        assert!(decode_frame(&bytes).is_err());
    }
}
