//! Frame transports: length-prefixed byte streams over TCP, an
//! in-memory duplex pair for tests and examples, and a lock-step
//! in-process transport that drives a [`ServerState`] directly (the
//! bench kernel's zero-socket path through the full encode/decode
//! pipeline).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::proto::{ProtocolError, MAX_FRAME_BYTES};
use crate::server::ServerState;

/// A reliable, ordered frame pipe. `recv` returning `Ok(None)` means
/// the peer closed cleanly at a frame boundary.
pub trait FrameTransport {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtocolError>;
    /// Receives the next frame, `None` on clean end-of-stream.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ProtocolError>;
}

/// Writes `frame` with its 4-byte big-endian length prefix as a single
/// buffered write.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), ProtocolError> {
    if frame.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { len: frame.len(), max: MAX_FRAME_BYTES });
    }
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
    buf.extend_from_slice(frame);
    w.write_all(&buf).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads the next length-prefixed frame. Clean EOF before a prefix is
/// `Ok(None)`; EOF inside a prefix or payload is
/// [`ProtocolError::TruncatedFrame`]; a prefix above
/// [`MAX_FRAME_BYTES`] is [`ProtocolError::FrameTooLarge`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut prefix = [0u8; 4];
    match read_some(r, &mut prefix)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(ProtocolError::TruncatedFrame { expected: 4, got }),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
    }
    let mut frame = vec![0u8; len];
    let got = read_some(r, &mut frame)?;
    if got != len {
        return Err(ProtocolError::TruncatedFrame { expected: len, got });
    }
    Ok(Some(frame))
}

/// Fills as much of `buf` as the stream yields before EOF; returns the
/// byte count (interrupted reads are retried).
fn read_some(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(filled)
}

fn io_err(e: std::io::Error) -> ProtocolError {
    // An expired SO_RCVTIMEO/SO_SNDTIMEO surfaces as WouldBlock (Unix)
    // or TimedOut (Windows). Classify here, where the ErrorKind is still
    // in hand; the transport that armed the deadline fills in its value
    // (`secs` is 0 only on this placeholder, and a stream with no
    // deadline can never produce these kinds).
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ProtocolError::Timeout { secs: 0.0 },
        _ => ProtocolError::Io { detail: e.to_string() },
    }
}

/// [`FrameTransport`] over a connected [`TcpStream`].
pub struct TcpTransport {
    stream: TcpStream,
    timeout: Option<std::time::Duration>,
}

impl TcpTransport {
    /// Wraps a connected stream (Nagle disabled: frames are
    /// request/response sized and latency-bound) with no I/O deadline —
    /// a stalled peer blocks forever, like plain blocking sockets.
    pub fn new(stream: TcpStream) -> Self {
        Self::with_timeout(stream, None)
    }

    /// Like [`TcpTransport::new`] but arms read/write deadlines: any
    /// single `send`/`recv` that makes no progress for `timeout`
    /// surfaces as [`ProtocolError::Timeout`] instead of blocking the
    /// caller forever. This is the `--io-timeout` knob of the serve and
    /// dist CLIs — a distributed coordinator must never hang on one
    /// stalled worker.
    ///
    /// Retrying `recv` on the same transport is sound only when the
    /// timeout fired with no bytes of the next frame consumed (a peer
    /// that stalled between frames). A deadline that expires *inside* a
    /// frame leaves the stream mid-frame; robust callers — the dist
    /// coordinator — treat any timeout as grounds to reconnect.
    pub fn with_timeout(stream: TcpStream, timeout: Option<std::time::Duration>) -> Self {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout).ok();
        stream.set_write_timeout(timeout).ok();
        Self { stream, timeout }
    }

    fn classify(&self, err: ProtocolError) -> ProtocolError {
        // `io_err` flags an expired socket deadline with a placeholder
        // `Timeout`; stamp it with the deadline this transport armed.
        match err {
            ProtocolError::Timeout { .. } => {
                ProtocolError::Timeout { secs: self.timeout.map_or(0.0, |t| t.as_secs_f64()) }
            }
            other => other,
        }
    }
}

impl FrameTransport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtocolError> {
        write_frame(&mut self.stream, frame).map_err(|e| self.classify(e))
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        read_frame(&mut self.stream).map_err(|e| self.classify(e))
    }
}

/// In-memory duplex transport: a pair of connected endpoints backed by
/// channels, usable across threads — the test/example stand-in for a
/// TCP connection.
pub struct DuplexTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl DuplexTransport {
    /// Builds two connected endpoints; frames sent on one side arrive
    /// on the other in order.
    pub fn pair() -> (DuplexTransport, DuplexTransport) {
        let (atx, brx) = channel();
        let (btx, arx) = channel();
        (DuplexTransport { tx: atx, rx: arx }, DuplexTransport { tx: btx, rx: brx })
    }
}

impl FrameTransport for DuplexTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtocolError> {
        if frame.len() > MAX_FRAME_BYTES {
            return Err(ProtocolError::FrameTooLarge { len: frame.len(), max: MAX_FRAME_BYTES });
        }
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ProtocolError::Io { detail: "peer endpoint dropped".into() })
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        // Disconnected sender == clean close, matching TCP EOF.
        Ok(self.rx.recv().ok())
    }
}

/// Lock-step transport that dispatches every sent frame straight into a
/// [`ServerState`] and queues the reply for the next `recv` — the full
/// encode → envelope-verify → decode → handle path with no sockets or
/// threads. The bench `serve/select_1k` kernel and the determinism
/// tests run the load generator over this.
pub struct InProcessTransport<'a> {
    server: &'a mut ServerState,
    replies: VecDeque<Vec<u8>>,
}

impl<'a> InProcessTransport<'a> {
    /// Connects a client directly to `server`.
    pub fn new(server: &'a mut ServerState) -> Self {
        Self { server, replies: VecDeque::new() }
    }
}

impl FrameTransport for InProcessTransport<'_> {
    fn send(&mut self, frame: &[u8]) -> Result<(), ProtocolError> {
        let (reply, _control) = self.server.handle_frame(frame);
        self.replies.push_back(reply);
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        Ok(self.replies.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"bravo charlie").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"bravo charlie"[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncation_and_oversize_are_typed() {
        // Cut inside the payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"some payload").unwrap();
        wire.truncate(wire.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire)),
            Err(ProtocolError::TruncatedFrame { .. })
        ));
        // Cut inside the prefix.
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![0u8, 0])),
            Err(ProtocolError::TruncatedFrame { expected: 4, got: 2 })
        ));
        // Absurd length prefix.
        let huge = 0xFFFF_FFFFu32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(huge)),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn stalled_tcp_peer_times_out_typed_then_late_frame_still_arrives() {
        use std::net::TcpListener;
        use std::time::Duration;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            // Stall well past the client's deadline, then deliver.
            std::thread::sleep(Duration::from_millis(300));
            write_frame(&mut peer, b"late frame").unwrap();
            // Hold the socket open until the client is done reading.
            std::thread::sleep(Duration::from_millis(500));
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut t = TcpTransport::with_timeout(stream, Some(Duration::from_millis(50)));
        // First recv hits the deadline: typed timeout, not a hang and
        // not a generic Io error.
        match t.recv() {
            Err(ProtocolError::Timeout { secs }) => assert!((secs - 0.05).abs() < 1e-9),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The frame that arrives after the timeout is still readable on
        // a later call — the deadline never desyncs the stream.
        let late = loop {
            match t.recv() {
                Ok(Some(frame)) => break frame,
                Err(ProtocolError::Timeout { .. }) => continue,
                other => panic!("expected the late frame, got {other:?}"),
            }
        };
        assert_eq!(late, b"late frame");
        server.join().unwrap();
    }

    #[test]
    fn duplex_pair_carries_frames_both_ways() {
        let (mut a, mut b) = DuplexTransport::pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some(&b"ping"[..]));
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong"[..]));
        drop(b);
        assert_eq!(a.recv().unwrap(), None);
        assert!(a.send(b"late").is_err());
    }
}
