//! Command-line drivers behind `experiments serve` and
//! `experiments loadgen` (the bench binary routes both subcommands
//! here; see docs/SERVE.md for usage).

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use fedl_core::policy::PolicyKind;
use fedl_json::Value;
use fedl_telemetry::Telemetry;

use crate::loadgen::{reference_run, run_loadgen, LoadgenOptions};
use crate::proto::{decode_frame, encode_frame, Message};
use crate::server::{serve_connection, ServeConfig, ServeExit, ServerState};
use crate::transport::{FrameTransport, TcpTransport};

/// Usage text for the serve-family subcommands.
pub const USAGE: &str = "\
experiments serve --addr HOST:PORT [options]      start the coordinator
experiments loadgen --addr HOST:PORT [options]    replay clients against it
experiments stats --addr HOST:PORT [options]      poll live metrics from a
                                                  running coordinator

shared scenario options (server and loadgen must agree):
  --clients N             population size (default 100)
  --seed S                scenario seed (default 7)
  --budget C              total rental budget (default 500)
  --min-participants N    participation floor per epoch (default 3)
  --policy P              fedl | fedavg | fedcs | powd | oracle (default fedl)

serve options:
  --checkpoint FILE       checkpoint envelope path
  --checkpoint-every N    checkpoint after every N completed epochs (default 1)
  --resume                restore state from --checkpoint before serving
  --telemetry FILE        write a JSONL run log
  --port-file FILE        write the bound port atomically (for --addr HOST:0)

loadgen options:
  --epochs E              selection epochs to drive (default 10)
  --start-epoch T         first epoch to request (default 0)
  --out FILE              write selections as JSONL, one line per epoch
  --verify-reference      compare against the in-process reference run
  --shutdown              ask the server to exit when done
  --connect-retries N     connection attempts, 100 ms apart (default 50)
  --io-timeout SECS       per-call socket deadline (default: none, block forever)

stats options:
  --json                  print the raw registry snapshot as one JSON object
  --connect-retries N     connection attempts, 100 ms apart (default 50)
  --io-timeout SECS       per-call socket deadline (default 10)
";

/// Parses a policy label as the serve/loadgen/dist CLIs spell them.
pub fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "fedl" => Ok(PolicyKind::FedL),
        "fedavg" => Ok(PolicyKind::FedAvg),
        "fedcs" => Ok(PolicyKind::FedCS),
        "powd" | "pow-d" => Ok(PolicyKind::PowD),
        "oracle" => Ok(PolicyKind::Oracle),
        other => Err(format!("unknown policy {other:?} (fedl|fedavg|fedcs|powd|oracle)")),
    }
}

/// Flags shared by both subcommands plus each side's extras.
#[derive(Debug)]
struct Parsed {
    addr: String,
    config: ServeConfig,
    // serve
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    telemetry: Option<PathBuf>,
    port_file: Option<PathBuf>,
    // loadgen
    epochs: usize,
    start_epoch: usize,
    out: Option<PathBuf>,
    verify_reference: bool,
    shutdown: bool,
    connect_retries: usize,
    io_timeout: Option<Duration>,
    // stats
    json: bool,
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut addr = None;
    let mut clients = 100usize;
    let mut seed = 7u64;
    let mut budget = 500.0f64;
    let mut min_participants = 3usize;
    let mut policy = PolicyKind::FedL;
    let mut checkpoint = None;
    let mut checkpoint_every = 1usize;
    let mut resume = false;
    let mut telemetry = None;
    let mut port_file = None;
    let mut epochs = 10usize;
    let mut start_epoch = 0usize;
    let mut out = None;
    let mut verify_reference = false;
    let mut shutdown = false;
    let mut connect_retries = 50usize;
    let mut io_timeout = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?.clone()),
            "--clients" => {
                clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--budget" => {
                budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--min-participants" => {
                min_participants = value("--min-participants")?
                    .parse()
                    .map_err(|e| format!("--min-participants: {e}"))?
            }
            "--policy" => policy = parse_policy(value("--policy")?)?,
            "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--resume" => resume = true,
            "--telemetry" => telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file")?)),
            "--epochs" => {
                epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--start-epoch" => {
                start_epoch =
                    value("--start-epoch")?.parse().map_err(|e| format!("--start-epoch: {e}"))?
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--verify-reference" => verify_reference = true,
            "--shutdown" => shutdown = true,
            "--json" => json = true,
            "--connect-retries" => {
                connect_retries = value("--connect-retries")?
                    .parse()
                    .map_err(|e| format!("--connect-retries: {e}"))?
            }
            "--io-timeout" => {
                let secs: f64 =
                    value("--io-timeout")?.parse().map_err(|e| format!("--io-timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--io-timeout must be a positive number of seconds".into());
                }
                io_timeout = Some(Duration::from_secs_f64(secs));
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if clients == 0 {
        return Err("--clients must be positive".into());
    }
    Ok(Parsed {
        addr: addr.ok_or_else(|| format!("--addr is required\n\n{USAGE}"))?,
        config: ServeConfig::new(clients, seed, budget, min_participants, policy),
        checkpoint,
        checkpoint_every,
        resume,
        telemetry,
        port_file,
        epochs,
        start_epoch,
        out,
        verify_reference,
        shutdown,
        connect_retries,
        io_timeout,
        json,
    })
}

/// `experiments serve`: bind, (optionally) resume from a checkpoint,
/// then serve connections until a `Shutdown` message arrives.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let telemetry = match &parsed.telemetry {
        Some(path) => Telemetry::to_file(path)
            .map_err(|e| format!("cannot open telemetry log {}: {e}", path.display()))?,
        None => Telemetry::disabled(),
    };
    let listener =
        TcpListener::bind(&parsed.addr).map_err(|e| format!("cannot bind {}: {e}", parsed.addr))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(port_file) = &parsed.port_file {
        // Atomic (tmp + rename): a watcher polling the path never reads
        // a half-written port number.
        fedl_store::write_atomic(port_file, &local.port().to_string())
            .map_err(|e| format!("cannot write {}: {e}", port_file.display()))?;
    }
    let mut state = if parsed.resume {
        let path = parsed
            .checkpoint
            .as_deref()
            .ok_or_else(|| "--resume requires --checkpoint FILE".to_string())?;
        ServerState::resume(parsed.config.clone(), telemetry, path)
            .map_err(|e| format!("resume failed: {e}"))?
    } else {
        ServerState::new(parsed.config.clone(), telemetry)
    };
    if let Some(path) = &parsed.checkpoint {
        state = state.with_checkpoint(path, parsed.checkpoint_every);
    }
    eprintln!(
        "fedl-serve: listening on {local} ({} clients, budget {}, policy {}, epoch {})",
        parsed.config.env.num_clients,
        parsed.config.budget,
        parsed.config.policy.label(),
        state.next_epoch(),
    );
    for incoming in listener.incoming() {
        let stream = incoming.map_err(|e| format!("accept failed: {e}"))?;
        let mut transport = TcpTransport::with_timeout(stream, parsed.io_timeout);
        match serve_connection(&mut transport, &mut state) {
            Ok(ServeExit::Shutdown) => {
                eprintln!(
                    "fedl-serve: shutdown at epoch {} after {} selections",
                    state.next_epoch(),
                    state.selections(),
                );
                return Ok(());
            }
            Ok(ServeExit::PeerClosed) => continue,
            Err(err) => {
                // Framing desync on one connection; the server state is
                // still consistent, keep accepting.
                eprintln!("fedl-serve: connection dropped: {err}");
                continue;
            }
        }
    }
    Ok(())
}

fn connect(addr: &str, retries: usize) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..retries.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    Err(format!("cannot connect to {addr} after {retries} attempts: {last}"))
}

/// `experiments loadgen`: connect (with retry), replay the population,
/// report sustained selections/sec, and optionally verify the served
/// selections against the in-process reference.
pub fn run_loadgen_cli(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let stream = connect(&parsed.addr, parsed.connect_retries)?;
    let mut transport = TcpTransport::with_timeout(stream, parsed.io_timeout);
    let opts = LoadgenOptions {
        epochs: parsed.epochs,
        start_epoch: parsed.start_epoch,
        shutdown: parsed.shutdown,
    };
    let report =
        run_loadgen(&mut transport, &parsed.config, &opts).map_err(|e| format!("loadgen: {e}"))?;
    println!(
        "serve loadgen: {} epochs over {} clients in {:.3} s — {:.1} selections/sec{}",
        report.selections.len(),
        report.clients,
        report.elapsed_secs,
        report.selections_per_sec(),
        if report.done { " (budget exhausted)" } else { "" },
    );
    if let Some(out) = &parsed.out {
        let mut text = String::new();
        for record in &report.selections {
            text.push_str(&record.to_json_line());
            text.push('\n');
        }
        std::fs::write(out, text).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("wrote selections: {}", out.display());
    }
    if parsed.verify_reference {
        let reference = reference_run(&parsed.config, parsed.start_epoch + parsed.epochs);
        let expected = &reference[parsed.start_epoch.min(reference.len())..];
        if report.selections != expected {
            return Err(format!(
                "served selections diverge from the in-process reference \
                 ({} served vs {} reference records)",
                report.selections.len(),
                expected.len(),
            ));
        }
        println!("verified: served selections match the in-process reference bit-for-bit");
    }
    Ok(())
}

/// `experiments stats`: one `Stats` round-trip against a running
/// coordinator — `fedl-serve`, or an `experiments dist` run started
/// with `--stats-addr` — printing the live registry snapshot without
/// restarting or otherwise disturbing it.
pub fn run_stats(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let stream = connect(&parsed.addr, parsed.connect_retries)?;
    let io_timeout = parsed.io_timeout.or(Some(Duration::from_secs(10)));
    let mut transport = TcpTransport::with_timeout(stream, io_timeout);
    transport.send(&encode_frame(&Message::Stats)).map_err(|e| format!("stats: {e}"))?;
    let frame = transport
        .recv()
        .map_err(|e| format!("stats: {e}"))?
        .ok_or_else(|| "stats: coordinator closed the connection".to_string())?;
    let registry = match decode_frame(&frame).map_err(|e| format!("stats: {e}"))? {
        Message::StatsSnapshot { registry } => registry,
        Message::Error { code, detail } => {
            return Err(format!("stats: coordinator refused: {code}: {detail}"))
        }
        other => return Err(format!("stats: unexpected reply {other:?}")),
    };
    if parsed.json {
        println!("{}", registry.to_json());
    } else {
        print!("{}", render_stats(&parsed.addr, &registry));
    }
    Ok(())
}

/// The human-readable `experiments stats` layout: counters and gauges
/// one per line, histograms as count/mean/p50/p90/p99 summaries.
fn render_stats(addr: &str, registry: &Value) -> String {
    let mut out = format!("live stats from {addr}\n");
    let section = |v: Option<&Value>| -> Vec<(String, Value)> {
        match v {
            Some(Value::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        }
    };
    let counters = section(registry.get("counters"));
    let gauges = section(registry.get("gauges"));
    let histograms = section(registry.get("histograms"));
    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() {
        out.push_str("  (registry is empty — was the coordinator started with telemetry?)\n");
        return out;
    }
    let num = |v: &Value, key: &str| -> String {
        match v.get(key) {
            Some(Value::Int(i)) => i.to_string(),
            Some(Value::Float(f)) => format!("{f:.6}"),
            _ => "-".to_string(),
        }
    };
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &counters {
            out.push_str(&format!("  {name} = {}\n", value.as_i64().unwrap_or(0)));
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &gauges {
            match value {
                Value::Float(f) => out.push_str(&format!("  {name} = {f}\n")),
                other => out.push_str(&format!("  {name} = {}\n", other.to_json())),
            }
        }
    }
    if !histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, summary) in &histograms {
            out.push_str(&format!(
                "  {name}: count {} mean {} p50 {} p90 {} p99 {}\n",
                num(summary, "count"),
                num(summary, "mean"),
                num(summary, "p50"),
                num(summary, "p90"),
                num(summary, "p99"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_rendering_covers_all_sections_and_empty_registries() {
        let (tel, sink) = Telemetry::in_memory();
        tel.counter("serve.selections").add(4);
        tel.gauge("budget.remaining").set(123.5);
        for i in 0..100 {
            tel.histogram("proto.frame_bytes").record(i as f64);
        }
        let _ = sink;
        let text = render_stats("127.0.0.1:9", &tel.registry_snapshot());
        assert!(text.contains("serve.selections = 4"), "{text}");
        assert!(text.contains("budget.remaining = 123.5"), "{text}");
        assert!(text.contains("proto.frame_bytes: count 100"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let empty = render_stats("x", &Telemetry::disabled().registry_snapshot());
        assert!(empty.contains("registry is empty"), "{empty}");
    }

    #[test]
    fn parses_the_shared_scenario_flags() {
        let p = parse(&strs(&[
            "--addr",
            "127.0.0.1:0",
            "--clients",
            "40",
            "--seed",
            "11",
            "--budget",
            "250",
            "--min-participants",
            "4",
            "--policy",
            "powd",
            "--epochs",
            "12",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(p.config.env.num_clients, 40);
        assert_eq!(p.config.env.seed, 11);
        assert_eq!(p.config.budget, 250.0);
        assert_eq!(p.config.min_participants, 4);
        assert_eq!(p.config.policy, PolicyKind::PowD);
        assert_eq!(p.epochs, 12);
        assert!(p.shutdown && !p.resume && !p.verify_reference);
    }

    #[test]
    fn io_timeout_parses_and_rejects_nonpositive() {
        let p = parse(&strs(&["--addr", "x", "--io-timeout", "2.5"])).unwrap();
        assert_eq!(p.io_timeout, Some(Duration::from_millis(2500)));
        assert!(parse(&strs(&["--addr", "x"])).unwrap().io_timeout.is_none());
        assert!(parse(&strs(&["--addr", "x", "--io-timeout", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&strs(&["--addr", "x", "--io-timeout", "-3"]))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn missing_addr_and_unknown_flags_are_errors() {
        assert!(parse(&strs(&["--clients", "10"])).unwrap_err().contains("--addr"));
        assert!(parse(&strs(&["--addr", "x", "--bogus"])).unwrap_err().contains("--bogus"));
        assert!(parse(&strs(&["--addr", "x", "--policy", "magic"]))
            .unwrap_err()
            .contains("unknown policy"));
        assert!(parse(&strs(&["--addr", "x", "--epochs"])).unwrap_err().contains("needs a value"));
    }
}
