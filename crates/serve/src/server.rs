//! The coordinator: a single-threaded event loop owning the policy,
//! the ledger, and the client registry, driven entirely by protocol
//! frames (DESIGN.md row S15, docs/SERVE.md).
//!
//! Epoch flow per selection: `SelectCohort{t}` realizes the columnar
//! population at epoch `t`, masks availability by the live registry,
//! builds the same [`EpochContext`] the scale path does
//! (`fedl_core::columnar::scale_context`), runs the policy's sharded
//! scoring + RDCS rounding, and answers with the cohort. The matching
//! `TrainResult{t}` charges the ledger and feeds `observe`, closing the
//! epoch. Because every input is either a pure function of
//! `(config, epoch)` or carried in a frame, the whole server is a
//! deterministic state machine — which is what makes the checkpoint /
//! restart bit-identity contract testable.

use std::path::{Path, PathBuf};

use fedl_core::columnar::scale_context;
use fedl_core::policy::{EpochContext, PolicyKind, SelectionPolicy};
use fedl_core::FedLConfig;
use fedl_json::{obj, read_field, ToJson, Value};
use fedl_net::{ChannelModel, LatencyModel};
use fedl_sim::{BudgetLedger, ClientColumns, EnvConfig, EpochColumns, EpochReport};
use fedl_store::{content_address, read_envelope, write_envelope, StoreError};
use fedl_telemetry::Telemetry;

use crate::proto::{
    decode_frame_traced, encode_frame, encode_frame_traced, version_accepted, Message,
    ProtocolError, Trace, PROTOCOL_VERSION,
};
use crate::transport::FrameTransport;

/// Envelope kind of a server checkpoint file.
pub const SERVE_CHECKPOINT_KIND: &str = "serve-checkpoint";

/// Version of the checkpoint payload layout; bump on incompatible
/// change so stale files fail loud.
pub const SERVE_SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// The deployment a server coordinates: the seeded client population
/// plus the selection problem (budget, floor, policy). Loadgen and
/// server must agree on all of it — the fingerprint in each checkpoint
/// and the determinism checks both hash this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The columnar client population (sizes, seeds, heterogeneity).
    pub env: EnvConfig,
    /// Total rental budget `C`.
    pub budget: f64,
    /// Participation floor `n` per epoch.
    pub min_participants: usize,
    /// Selection policy to run.
    pub policy: PolicyKind,
    /// FedL hyper-parameters (ignored by the baselines).
    pub fedl: FedLConfig,
}

impl ServeConfig {
    /// A population of `num_clients` small-scenario clients under
    /// `seed`, with the given budget, floor, and policy.
    pub fn new(
        num_clients: usize,
        seed: u64,
        budget: f64,
        min_participants: usize,
        policy: PolicyKind,
    ) -> Self {
        Self {
            env: EnvConfig::small(num_clients, seed),
            budget,
            min_participants,
            policy,
            fedl: FedLConfig::default(),
        }
    }

    /// The latency model every context in this deployment uses.
    pub fn latency_model(&self) -> LatencyModel {
        LatencyModel::paper_defaults(self.env.upload_bits, 64.0)
    }

    /// Content address of the full deployment (population, budget,
    /// floor, policy, FedL hyper-parameters); a checkpoint resumes only
    /// into a server with the same fingerprint.
    pub fn fingerprint(&self) -> String {
        let key = format!(
            "fedl-serve v{SERVE_SNAPSHOT_SCHEMA_VERSION}\npolicy={}\nbudget={}\nn={}\nenv={}\nfedl={}",
            self.policy.label(),
            self.budget,
            self.min_participants,
            fedl_json::ToJson::to_json_value(&self.env).to_json(),
            self.fedl.to_json_value().to_json(),
        );
        content_address(key.as_bytes())
    }
}

/// Builds epoch `t`'s decision context from columns, masking
/// availability by the live registry, and runs the policy — shared by
/// the server and the in-process reference driver so "bit-identical to
/// in-process" compares protocol plumbing, not reimplemented math.
/// Returns `None` when no registered client is available this epoch.
#[allow(clippy::too_many_arguments)]
pub fn select_for_epoch(
    cols: &ClientColumns,
    config: &ServeConfig,
    channel: &ChannelModel,
    latency: &LatencyModel,
    registered: &[bool],
    remaining_budget: f64,
    policy: &mut dyn SelectionPolicy,
    epoch: usize,
) -> Option<(EpochContext, Vec<usize>, usize)> {
    let mut now = cols.epoch_columns(epoch, &config.env, channel);
    for (avail, &reg) in now.available.iter_mut().zip(registered) {
        *avail &= reg;
    }
    // 0-lookahead: latency hints come from the previous epoch's channel
    // realization (epoch 0 hints from its own), exactly like the runner.
    let hint: EpochColumns =
        if epoch == 0 { now.clone() } else { cols.epoch_columns(epoch - 1, &config.env, channel) };
    let ctx = scale_context(
        cols,
        &hint,
        &now,
        latency,
        remaining_budget,
        config.min_participants,
        config.env.seed,
    )?;
    let decision = policy.select(&ctx);
    let (cohort, iterations) = sanitize_decision(&ctx, decision.cohort, decision.iterations);
    Some((ctx, cohort, iterations))
}

/// Applies the server's post-selection hygiene to a raw policy decision:
/// drop ids outside the availability set, sort, dedup, fall back to the
/// floor-`n` first available clients when nothing survives, and clamp
/// the iteration count to `1..=50`. Factored out so every driver of a
/// policy over an [`EpochContext`] — this server, the reference run,
/// and the `fedl-dist` coordinator — shares one pipeline and therefore
/// one set of bits.
pub fn sanitize_decision(
    ctx: &EpochContext,
    mut cohort: Vec<usize>,
    iterations: usize,
) -> (Vec<usize>, usize) {
    cohort.retain(|id| ctx.available.contains(id));
    cohort.sort_unstable();
    cohort.dedup();
    if cohort.is_empty() {
        // Defensive fallback, mirroring the runner: the floor-n first
        // available clients.
        cohort = ctx.available.iter().copied().take(ctx.effective_n()).collect();
    }
    (cohort, iterations.clamp(1, 50))
}

/// What a handled frame asks the connection loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading frames.
    Continue,
    /// The peer asked for shutdown; leave the accept loop.
    Shutdown,
}

/// How a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// A [`Message::Shutdown`] was served.
    Shutdown,
    /// The peer closed the stream at a frame boundary.
    PeerClosed,
}

/// Errors establishing or resuming a server (the protocol has its own
/// [`ProtocolError`]; this covers the checkpoint file path).
#[derive(Debug)]
pub enum ServeError {
    /// Reading or writing the checkpoint envelope failed.
    Store(StoreError),
    /// The checkpoint parsed but its payload is malformed.
    Schema(String),
    /// The checkpoint belongs to a different deployment.
    Fingerprint {
        /// Fingerprint of the server's own config.
        expected: String,
        /// Fingerprint recorded in the file.
        found: String,
    },
    /// The checkpoint's schema version is not ours.
    Version {
        /// Version found in the payload.
        found: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "checkpoint store error: {e}"),
            ServeError::Schema(detail) => write!(f, "checkpoint schema error: {detail}"),
            ServeError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint belongs to a different deployment (expected {expected}, found {found})"
            ),
            ServeError::Version { found } => write!(
                f,
                "checkpoint schema v{found} unsupported (this build reads v{SERVE_SNAPSHOT_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

struct PendingEpoch {
    ctx: EpochContext,
    cohort: Vec<usize>,
    iterations: usize,
}

/// The coordinator's full state: population columns, live registry,
/// policy, ledger, and epoch cursor. One instance serves any number of
/// sequential connections; [`Self::handle_frame`] is the entire event
/// loop body.
pub struct ServerState {
    config: ServeConfig,
    channel: ChannelModel,
    latency: LatencyModel,
    cols: ClientColumns,
    policy: Box<dyn SelectionPolicy>,
    ledger: BudgetLedger,
    registered: Vec<bool>,
    next_epoch: usize,
    selections: usize,
    pending: Option<PendingEpoch>,
    telemetry: Telemetry,
    checkpoint: Option<(PathBuf, usize)>,
}

impl ServerState {
    /// A fresh server for `config`; nothing registered, epoch 0.
    pub fn new(config: ServeConfig, telemetry: Telemetry) -> Self {
        let channel = ChannelModel::default();
        let latency = config.latency_model();
        let cols = ClientColumns::build(&config.env, &channel);
        let policy = config.policy.build(
            config.env.num_clients,
            config.budget,
            config.min_participants,
            config.fedl,
        );
        let mut ledger = BudgetLedger::new(config.budget);
        ledger.set_telemetry(telemetry.clone());
        let registered = vec![false; config.env.num_clients];
        telemetry.emit(
            "serve.start",
            vec![
                ("clients", Value::from(config.env.num_clients)),
                ("budget", Value::Float(config.budget)),
                ("min_participants", Value::from(config.min_participants)),
                ("policy", Value::from(config.policy.label())),
            ],
        );
        Self {
            config,
            channel,
            latency,
            cols,
            policy,
            ledger,
            registered,
            next_epoch: 0,
            selections: 0,
            pending: None,
            telemetry,
            checkpoint: None,
        }
    }

    /// Enables checkpointing: the full server state lands in `path`
    /// after every `every`-th completed epoch (and on shutdown).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((path.into(), every.max(1)));
        self
    }

    /// Restores a server from a checkpoint written by
    /// [`Self::save_checkpoint`]. The config must fingerprint-match the
    /// one that wrote the file; the restored server continues the run
    /// bit-identically.
    pub fn resume(
        config: ServeConfig,
        telemetry: Telemetry,
        path: &Path,
    ) -> Result<Self, ServeError> {
        let payload = read_envelope(path, SERVE_CHECKPOINT_KIND)?;
        let schema = |e: fedl_json::Error| ServeError::Schema(e.to_string());
        let version: usize = read_field(&payload, "schema_version").map_err(schema)?;
        let version = u32::try_from(version)
            .map_err(|_| ServeError::Schema(format!("schema_version {version} out of range")))?;
        if version != SERVE_SNAPSHOT_SCHEMA_VERSION {
            return Err(ServeError::Version { found: version });
        }
        let found: String = read_field(&payload, "fingerprint").map_err(schema)?;
        let expected = config.fingerprint();
        if found != expected {
            return Err(ServeError::Fingerprint { expected, found });
        }
        let mut server = Self::new(config, telemetry);
        server.next_epoch = read_field(&payload, "next_epoch").map_err(schema)?;
        server.selections = read_field(&payload, "selections").map_err(schema)?;
        let joined: Vec<usize> = read_field(&payload, "registered").map_err(schema)?;
        for id in joined {
            if id >= server.registered.len() {
                return Err(ServeError::Schema(format!("registered id {id} out of range")));
            }
            server.registered[id] = true;
        }
        let ledger = payload.field("ledger").map_err(schema)?;
        let initial: f64 = read_field(ledger, "initial").map_err(schema)?;
        let charges: Vec<f64> = read_field(ledger, "charges").map_err(schema)?;
        let mut restored = BudgetLedger::restore(initial, charges)
            .map_err(|e| ServeError::Schema(e.to_string()))?;
        restored.set_telemetry(server.telemetry.clone());
        server.ledger = restored;
        let policy_state = payload.field("policy_state").map_err(schema)?;
        server.policy.restore_state(policy_state).map_err(schema)?;
        server.telemetry.emit(
            "serve.checkpoint_restored",
            vec![
                ("path", Value::from(path.display().to_string())),
                ("next_epoch", Value::from(server.next_epoch)),
            ],
        );
        Ok(server)
    }

    /// Writes the full server state (registry, ledger, epoch cursor,
    /// policy internals including RNG streams) to `path`.
    ///
    /// # Panics
    /// Panics if a selection is awaiting its `TrainResult`; the server
    /// only checkpoints at epoch boundaries.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), ServeError> {
        assert!(self.pending.is_none(), "serve checkpoint mid-epoch: awaiting TrainResult");
        let joined: Vec<usize> =
            self.registered.iter().enumerate().filter(|(_, &r)| r).map(|(k, _)| k).collect();
        let payload = obj(vec![
            ("schema_version", Value::from(SERVE_SNAPSHOT_SCHEMA_VERSION as usize)),
            ("fingerprint", Value::from(self.config.fingerprint())),
            ("next_epoch", Value::from(self.next_epoch)),
            ("selections", Value::from(self.selections)),
            ("registered", Value::Arr(joined.into_iter().map(Value::from).collect())),
            (
                "ledger",
                obj(vec![
                    ("initial", Value::Float(self.ledger.initial())),
                    (
                        "charges",
                        Value::Arr(
                            self.ledger.history().iter().map(|&c| Value::Float(c)).collect(),
                        ),
                    ),
                ]),
            ),
            ("policy_state", self.policy.snapshot_state()),
        ]);
        write_envelope(path, SERVE_CHECKPOINT_KIND, &payload)?;
        self.telemetry.emit(
            "serve.checkpoint_saved",
            vec![
                ("path", Value::from(path.display().to_string())),
                ("next_epoch", Value::from(self.next_epoch)),
            ],
        );
        Ok(())
    }

    /// The server's next epoch index.
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// Number of currently registered clients.
    pub fn registered_count(&self) -> usize {
        self.registered.iter().filter(|&&r| r).count()
    }

    /// Cohort selections served so far.
    pub fn selections(&self) -> usize {
        self.selections
    }

    /// Handles one raw frame: decode, dispatch, encode the reply.
    /// Malformed frames never panic — they produce a wire
    /// [`Message::Error`] and bump the `serve.malformed_frames`
    /// counter, mirroring the run log's lenient parsing.
    pub fn handle_frame(&mut self, frame: &[u8]) -> (Vec<u8>, Control) {
        self.telemetry.counter("serve.frames_in").incr();
        let (decoded, _decode_ns) = decode_frame_traced(frame, &self.telemetry);
        let (reply, control) = match decoded {
            Ok(msg) => self.handle_message(msg),
            Err(err) => {
                self.note_malformed(&err);
                (err.to_wire(), Control::Continue)
            }
        };
        self.telemetry.counter("serve.frames_out").incr();
        let (bytes, _encode_ns) = encode_frame_traced(&reply, &self.telemetry);
        (bytes, control)
    }

    /// Records a frame that failed decoding or framing.
    pub fn note_malformed(&mut self, err: &ProtocolError) {
        self.telemetry.counter("serve.malformed_frames").incr();
        self.telemetry.emit(
            "serve.malformed_frame",
            vec![("code", Value::from(err.code())), ("detail", Value::from(err.to_string()))],
        );
    }

    /// Count of malformed frames seen (from the telemetry counter).
    pub fn malformed_frames(&self) -> u64 {
        self.telemetry.counter("serve.malformed_frames").value()
    }

    /// Advances the epoch cursor and writes the periodic checkpoint
    /// when the new boundary is a `--checkpoint-every` multiple — the
    /// single path for closing an epoch, whether it trained or was
    /// skipped for lack of available clients.
    fn advance_epoch(&mut self) {
        self.next_epoch += 1;
        if let Some((path, every)) = self.checkpoint.clone() {
            if self.next_epoch.is_multiple_of(every) {
                if let Err(e) = self.save_checkpoint(&path) {
                    eprintln!("fedl-serve: checkpoint failed: {e}");
                }
            }
        }
    }

    fn snapshot_reply(&self) -> Message {
        Message::Snapshot {
            epoch: self.next_epoch,
            registered: self.registered_count(),
            selections: self.selections,
            budget_remaining: self.ledger.remaining(),
            policy: self.policy.name().to_string(),
        }
    }

    /// Applies one decoded message; the returned message is the reply.
    pub fn handle_message(&mut self, msg: Message) -> (Message, Control) {
        match msg {
            Message::Hello { protocol_version, node: _ } => {
                if !version_accepted(protocol_version) {
                    let err =
                        ProtocolError::Version { ours: PROTOCOL_VERSION, theirs: protocol_version };
                    self.note_malformed(&err);
                    return (err.to_wire(), Control::Continue);
                }
                (
                    Message::Hello {
                        protocol_version: PROTOCOL_VERSION,
                        node: "fedl-serve".to_string(),
                    },
                    Control::Continue,
                )
            }
            Message::ClientJoin { client } => {
                if client >= self.registered.len() {
                    let err =
                        ProtocolError::UnknownClient { client, population: self.registered.len() };
                    self.note_malformed(&err);
                    return (err.to_wire(), Control::Continue);
                }
                if !self.registered[client] {
                    self.registered[client] = true;
                    self.telemetry.counter("serve.joins").incr();
                    self.telemetry.emit("serve.client_join", vec![("client", Value::from(client))]);
                }
                (self.snapshot_reply(), Control::Continue)
            }
            Message::ClientLeave { client } => {
                if client >= self.registered.len() {
                    let err =
                        ProtocolError::UnknownClient { client, population: self.registered.len() };
                    self.note_malformed(&err);
                    return (err.to_wire(), Control::Continue);
                }
                if self.registered[client] {
                    self.registered[client] = false;
                    self.telemetry.counter("serve.leaves").incr();
                    self.telemetry
                        .emit("serve.client_leave", vec![("client", Value::from(client))]);
                }
                (self.snapshot_reply(), Control::Continue)
            }
            Message::SelectCohort { epoch, trace } => self.handle_select(epoch, trace),
            Message::TrainResult {
                epoch,
                cohort,
                iterations,
                latency_secs,
                per_client_iter_latency,
                cost,
                eta_hats,
                global_loss,
                grad_dot_delta,
                local_losses,
            } => self.handle_train_result(
                epoch,
                cohort,
                iterations,
                latency_secs,
                per_client_iter_latency,
                cost,
                eta_hats,
                global_loss,
                grad_dot_delta,
                local_losses,
            ),
            Message::Snapshot { .. } => (self.snapshot_reply(), Control::Continue),
            Message::Stats => {
                self.telemetry.counter("serve.stats_requests").incr();
                (
                    Message::StatsSnapshot { registry: self.telemetry.registry_snapshot() },
                    Control::Continue,
                )
            }
            Message::Shutdown => {
                if let Some((path, _)) = self.checkpoint.clone() {
                    if self.pending.is_none() {
                        if let Err(e) = self.save_checkpoint(&path) {
                            eprintln!("fedl-serve: shutdown checkpoint failed: {e}");
                        }
                    } else {
                        // The server only checkpoints at epoch
                        // boundaries; make the skip loud so an operator
                        // never believes unsaved state was persisted.
                        eprintln!(
                            "fedl-serve: shutdown checkpoint skipped: epoch {} is awaiting its TrainResult",
                            self.next_epoch
                        );
                        self.telemetry.emit(
                            "serve.checkpoint_skipped",
                            vec![
                                ("epoch", Value::from(self.next_epoch)),
                                ("reason", Value::from("awaiting-train-result")),
                            ],
                        );
                    }
                }
                self.telemetry.emit(
                    "serve.shutdown",
                    vec![
                        ("epoch", Value::from(self.next_epoch)),
                        ("selections", Value::from(self.selections)),
                    ],
                );
                self.telemetry.emit_metrics();
                self.telemetry.flush();
                (self.snapshot_reply(), Control::Shutdown)
            }
            // Server-only replies arriving as requests are protocol misuse.
            Message::Cohort { .. } | Message::StatsSnapshot { .. } | Message::Error { .. } => {
                let err = ProtocolError::UnexpectedMessage {
                    detail: "reply-only message sent as a request".to_string(),
                };
                self.note_malformed(&err);
                (err.to_wire(), Control::Continue)
            }
            // The Shard* family belongs to the fedl-dist coordinator ↔
            // worker pairing (docs/DIST.md); the federation server is
            // neither side of it.
            Message::ShardAssign { .. }
            | Message::ShardReady { .. }
            | Message::ShardContext { .. }
            | Message::ShardContextPart { .. }
            | Message::ShardTrain { .. }
            | Message::ShardTrainPart { .. } => {
                let err = ProtocolError::UnexpectedMessage {
                    detail: "shard messages are for dist workers, not the federation server"
                        .to_string(),
                };
                self.note_malformed(&err);
                (err.to_wire(), Control::Continue)
            }
        }
    }

    fn handle_select(&mut self, epoch: usize, trace: Trace) -> (Message, Control) {
        if trace == Trace::Invalid {
            // A garbled trace context never fails the request it rides
            // on — selection must not depend on observability metadata.
            self.telemetry.counter("proto.bad_trace_ids").incr();
        }
        if epoch != self.next_epoch {
            let err = ProtocolError::BadEpoch { expected: self.next_epoch, got: epoch };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        }
        if self.pending.is_some() {
            let err = ProtocolError::UnexpectedMessage {
                detail: format!("epoch {epoch} already selected; send its TrainResult first"),
            };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        }
        if self.ledger.exhausted() {
            return (
                Message::Cohort { epoch, cohort: Vec::new(), iterations: 0, done: true },
                Control::Continue,
            );
        }
        let mut span = self.telemetry.span_in("serve.select", trace.to_context());
        span.field("epoch", Value::from(epoch));
        let selected = select_for_epoch(
            &self.cols,
            &self.config,
            &self.channel,
            &self.latency,
            &self.registered,
            self.ledger.remaining(),
            self.policy.as_mut(),
            epoch,
        );
        drop(span);
        let Some((ctx, cohort, iterations)) = selected else {
            // Nobody available: the epoch passes with no training, same
            // as the runner skipping it.
            self.advance_epoch();
            return (
                Message::Cohort { epoch, cohort: Vec::new(), iterations: 0, done: false },
                Control::Continue,
            );
        };
        self.telemetry.counter("serve.selections").incr();
        self.telemetry.emit(
            "serve.select",
            vec![
                ("epoch", Value::from(epoch)),
                ("cohort_size", Value::from(cohort.len())),
                ("iterations", Value::from(iterations)),
                ("available", Value::from(ctx.available.len())),
            ],
        );
        let reply = Message::Cohort { epoch, cohort: cohort.clone(), iterations, done: false };
        self.pending = Some(PendingEpoch { ctx, cohort, iterations });
        (reply, Control::Continue)
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_train_result(
        &mut self,
        epoch: usize,
        cohort: Vec<usize>,
        iterations: usize,
        latency_secs: f64,
        per_client_iter_latency: Vec<f64>,
        cost: f64,
        eta_hats: Vec<f32>,
        global_loss: f64,
        grad_dot_delta: Vec<f32>,
        local_losses: Vec<f32>,
    ) -> (Message, Control) {
        let Some(pending) = self.pending.as_ref() else {
            let err = ProtocolError::UnexpectedMessage {
                detail: format!("TrainResult for epoch {epoch} with no selection pending"),
            };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        };
        if epoch != pending.ctx.epoch {
            let err = ProtocolError::BadEpoch { expected: pending.ctx.epoch, got: epoch };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        }
        let aligned = [
            per_client_iter_latency.len(),
            eta_hats.len(),
            grad_dot_delta.len(),
            local_losses.len(),
        ]
        .iter()
        .all(|&n| n == cohort.len());
        if cohort != pending.cohort || iterations != pending.iterations || !aligned {
            let err = ProtocolError::UnexpectedMessage {
                detail: format!(
                    "TrainResult cohort does not match the served selection for epoch {epoch}"
                ),
            };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        }
        // Feedback flows straight into the ledger (which refuses
        // negative/NaN charges by panicking) and the policy's internal
        // state; a frame must never be able to reach either with
        // non-finite numbers, so refuse them here with a typed error.
        let finite = cost.is_finite()
            && cost >= 0.0
            && latency_secs.is_finite()
            && latency_secs >= 0.0
            && global_loss.is_finite()
            && per_client_iter_latency.iter().all(|t| t.is_finite() && *t >= 0.0)
            && eta_hats.iter().all(|x| x.is_finite())
            && grad_dot_delta.iter().all(|x| x.is_finite())
            && local_losses.iter().all(|x| x.is_finite());
        if !finite {
            let err = ProtocolError::UnexpectedMessage {
                detail: format!(
                    "TrainResult for epoch {epoch} carries non-finite or negative feedback"
                ),
            };
            self.note_malformed(&err);
            return (err.to_wire(), Control::Continue);
        }
        let pending = self.pending.take().expect("checked above");
        let report = EpochReport {
            epoch,
            cohort,
            iterations,
            latency_secs,
            per_client_iter_latency,
            cost,
            eta_hats,
            global_loss_all: global_loss,
            global_loss_selected: global_loss,
            grad_dot_delta,
            local_losses,
            failed: Vec::new(),
        };
        self.ledger.charge(report.cost);
        self.policy.observe(&pending.ctx, &report);
        self.selections += 1;
        self.telemetry.counter("serve.train_results").incr();
        self.telemetry.emit(
            "serve.train_result",
            vec![
                ("epoch", Value::from(epoch)),
                ("cost", Value::Float(report.cost)),
                ("remaining", Value::Float(self.ledger.remaining())),
            ],
        );
        self.advance_epoch();
        (self.snapshot_reply(), Control::Continue)
    }
}

/// Serves one connection until shutdown, clean close, or a framing
/// error that desynchronizes the stream (the error is reported to the
/// peer on a best-effort basis, then surfaced to the caller).
pub fn serve_connection(
    transport: &mut dyn FrameTransport,
    state: &mut ServerState,
) -> Result<ServeExit, ProtocolError> {
    loop {
        match transport.recv() {
            Ok(Some(frame)) => {
                let (reply, control) = state.handle_frame(&frame);
                transport.send(&reply)?;
                if control == Control::Shutdown {
                    return Ok(ServeExit::Shutdown);
                }
            }
            Ok(None) => return Ok(ServeExit::PeerClosed),
            Err(err) => {
                state.note_malformed(&err);
                let _ = transport.send(&encode_frame(&err.to_wire()));
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(clients: usize, budget: f64) -> ServerState {
        let config = ServeConfig::new(clients, 11, budget, 3, PolicyKind::FedL);
        ServerState::new(config, Telemetry::in_memory().0)
    }

    fn expect_cohort(reply: Message) -> (Vec<usize>, usize, bool) {
        match reply {
            Message::Cohort { cohort, iterations, done, .. } => (cohort, iterations, done),
            other => panic!("expected Cohort, got {other:?}"),
        }
    }

    #[test]
    fn join_select_train_advances_the_epoch() {
        let mut s = server(20, 500.0);
        for k in 0..20 {
            let (reply, _) = s.handle_message(Message::ClientJoin { client: k });
            assert!(matches!(reply, Message::Snapshot { .. }));
        }
        assert_eq!(s.registered_count(), 20);
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 0, trace: Trace::Absent });
        let (cohort, iterations, done) = expect_cohort(reply);
        assert!(!done && !cohort.is_empty() && iterations >= 1);
        // Feed a train result for the served cohort.
        let n = cohort.len();
        let (reply, _) = s.handle_message(Message::TrainResult {
            epoch: 0,
            cohort,
            iterations,
            latency_secs: 1.0,
            per_client_iter_latency: vec![0.1; n],
            cost: 5.0,
            eta_hats: vec![0.5; n],
            global_loss: 2.3,
            grad_dot_delta: vec![-0.1; n],
            local_losses: vec![2.3; n],
        });
        assert!(matches!(reply, Message::Snapshot { epoch: 1, .. }));
        assert_eq!(s.next_epoch(), 1);
        assert_eq!(s.selections(), 1);
    }

    #[test]
    fn empty_registry_skips_the_epoch() {
        let mut s = server(10, 100.0);
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 0, trace: Trace::Absent });
        let (cohort, _, done) = expect_cohort(reply);
        assert!(cohort.is_empty() && !done);
        assert_eq!(s.next_epoch(), 1, "an empty epoch still passes");
    }

    #[test]
    fn protocol_misuse_is_refused_with_typed_errors() {
        let mut s = server(10, 100.0);
        let before = s.malformed_frames();
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 5, trace: Trace::Absent });
        assert!(matches!(reply, Message::Error { ref code, .. } if code == "bad-epoch"));
        let (reply, _) = s.handle_message(Message::ClientJoin { client: 99 });
        assert!(matches!(reply, Message::Error { ref code, .. } if code == "unknown-client"));
        let (reply, _) = s.handle_message(Message::TrainResult {
            epoch: 0,
            cohort: vec![0],
            iterations: 1,
            latency_secs: 0.1,
            per_client_iter_latency: vec![0.1],
            cost: 1.0,
            eta_hats: vec![0.5],
            global_loss: 2.3,
            grad_dot_delta: vec![-0.1],
            local_losses: vec![2.3],
        });
        assert!(matches!(reply, Message::Error { ref code, .. } if code == "unexpected-message"));
        assert_eq!(s.malformed_frames(), before + 3);
    }

    #[test]
    fn hostile_feedback_is_refused_not_charged() {
        let mut s = server(20, 500.0);
        for k in 0..20 {
            s.handle_message(Message::ClientJoin { client: k });
        }
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 0, trace: Trace::Absent });
        let (cohort, iterations, _) = expect_cohort(reply);
        let n = cohort.len();
        let result = |cost: f64, latency: f64, eta: f32| Message::TrainResult {
            epoch: 0,
            cohort: cohort.clone(),
            iterations,
            latency_secs: latency,
            per_client_iter_latency: vec![0.1; n],
            cost,
            eta_hats: vec![eta; n],
            global_loss: 2.3,
            grad_dot_delta: vec![-0.1; n],
            local_losses: vec![2.3; n],
        };
        // A negative or NaN cost must come back as a typed error — not
        // reach `BudgetLedger::charge` (which would panic) — and leave
        // the selection pending and the budget untouched.
        for hostile in [
            result(-1.0, 1.0, 0.5),
            result(f64::NAN, 1.0, 0.5),
            result(f64::INFINITY, 1.0, 0.5),
            result(5.0, f64::NAN, 0.5),
            result(5.0, 1.0, f32::NAN),
        ] {
            let (reply, control) = s.handle_message(hostile);
            assert!(
                matches!(reply, Message::Error { ref code, .. } if code == "unexpected-message"),
                "hostile feedback must be refused, got {reply:?}"
            );
            assert_eq!(control, Control::Continue);
        }
        let query = Message::Snapshot {
            epoch: 0,
            registered: 0,
            selections: 0,
            budget_remaining: 0.0,
            policy: String::new(),
        };
        let (reply, _) = s.handle_message(query);
        match reply {
            Message::Snapshot { budget_remaining, .. } => assert_eq!(budget_remaining, 500.0),
            other => panic!("expected Snapshot, got {other:?}"),
        }
        // The epoch is still open: well-formed feedback closes it.
        let (reply, _) = s.handle_message(result(5.0, 1.0, 0.5));
        assert!(matches!(reply, Message::Snapshot { epoch: 1, .. }));
        assert_eq!(s.selections(), 1);
    }

    #[test]
    fn skipped_epochs_still_hit_checkpoint_boundaries() {
        let dir = std::env::temp_dir().join("fedl_serve_server_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("skip_boundary.fedlstore");
        std::fs::remove_file(&ckpt).ok();
        let config = ServeConfig::new(10, 11, 100.0, 3, PolicyKind::FedL);
        // Nobody registered: every epoch skips, yet `--checkpoint-every 2`
        // boundaries crossed by skips must still land on disk.
        let mut s =
            ServerState::new(config.clone(), Telemetry::in_memory().0).with_checkpoint(&ckpt, 2);
        s.handle_message(Message::SelectCohort { epoch: 0, trace: Trace::Absent });
        assert!(!ckpt.exists(), "epoch 1 is not a boundary");
        s.handle_message(Message::SelectCohort { epoch: 1, trace: Trace::Absent });
        assert!(ckpt.exists(), "the skip that reaches epoch 2 must checkpoint");
        let resumed = ServerState::resume(config, Telemetry::in_memory().0, &ckpt).expect("resume");
        assert_eq!(resumed.next_epoch(), 2);
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn exhausted_budget_reports_done() {
        let mut s = server(10, 1e-9);
        for k in 0..10 {
            s.handle_message(Message::ClientJoin { client: k });
        }
        // The ledger only exhausts after a charge crosses it; force one
        // epoch through, then the next select must say done.
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 0, trace: Trace::Absent });
        let (cohort, iterations, done) = expect_cohort(reply);
        assert!(!done);
        let n = cohort.len();
        s.handle_message(Message::TrainResult {
            epoch: 0,
            cohort,
            iterations,
            latency_secs: 1.0,
            per_client_iter_latency: vec![0.1; n],
            cost: 10.0,
            eta_hats: vec![0.5; n],
            global_loss: 2.3,
            grad_dot_delta: vec![-0.1; n],
            local_losses: vec![2.3; n],
        });
        let (reply, _) = s.handle_message(Message::SelectCohort { epoch: 1, trace: Trace::Absent });
        let (_, _, done) = expect_cohort(reply);
        assert!(done);
    }
}
