//! Wire messages and framing for the federation service.
//!
//! Every message travels as one *frame*: the UTF-8 text of a
//! `fedl-store` envelope (kind [`FRAME_KIND`]) whose JSON payload is the
//! message object, preceded on the byte stream by a 4-byte big-endian
//! length prefix (the transport layer's job — see [`crate::transport`]).
//! Reusing the checksummed envelope means a corrupt, truncated, or
//! foreign frame surfaces as a typed [`ProtocolError`] long before any
//! field is trusted; the decoder never panics on attacker-shaped bytes.
//!
//! ```text
//! [len: u32 BE] fedl-store v1 kind=serve-msg crc=<16 hex>\n{"type":...}
//! ```

use std::fmt;

use fedl_json::{obj, read_field, Value};
use fedl_store::{decode_envelope, encode_envelope, StoreError};
use fedl_telemetry::{SpanContext, Telemetry};

/// Version of the message schema; both sides send it in [`Message::Hello`]
/// and refuse peers outside [`MIN_PROTOCOL_VERSION`]`..=`this with
/// [`ProtocolError::Version`].
///
/// v2 added the `Shard*` message kinds that carry `fedl-dist` shard
/// assignments and shard partials between a distributed coordinator and
/// its workers (docs/DIST.md). A v1 peer never sent or accepted those
/// kinds, so the bump refuses the pairing at the handshake instead of
/// failing mid-epoch on an unknown message.
///
/// v3 added *optional* trace-context fields (`trace_id`/`span_id`) on
/// the request messages that start remote work
/// ([`Message::SelectCohort`], [`Message::ShardContext`],
/// [`Message::ShardTrain`]), the [`Message::Stats`] /
/// [`Message::StatsSnapshot`] live-metrics pair, and nothing else —
/// every v2 message still parses unchanged, so v2 peers are accepted
/// (their requests simply carry no trace context and their spans stay
/// unlinked; see docs/TELEMETRY.md).
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest peer version this build still pairs with. v2 omitted only
/// additive, optional features, so it remains wire-compatible.
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Whether a peer's advertised version can be served by this build.
pub fn version_accepted(theirs: u32) -> bool {
    (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&theirs)
}

/// Envelope kind tag carried by every frame.
pub const FRAME_KIND: &str = "serve-msg";

/// Hard ceiling on a frame's byte length. A length prefix above this is
/// treated as stream desync ([`ProtocolError::FrameTooLarge`]) rather
/// than an allocation request — million-client cohorts fit comfortably.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Trace context riding on a request message (v3+). Optional on the
/// wire: both fields present and valid hex parse to
/// [`Trace::Context`]; both absent (a v2 peer, or tracing disabled) is
/// [`Trace::Absent`]; anything else — one field missing, non-hex
/// garbage, overlong digits — is [`Trace::Invalid`], which the
/// receiver counts (`proto.bad_trace_ids`) and otherwise treats as
/// absent. Trace fields never affect selection: they are observability
/// metadata only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trace {
    /// No trace fields on the wire.
    #[default]
    Absent,
    /// A valid trace context: link spans under this parent.
    Context {
        /// The originator's trace id.
        trace_id: u64,
        /// The requesting span's id (the remote parent).
        span_id: u64,
    },
    /// Trace fields were present but malformed. Never re-encoded (an
    /// invalid context encodes as absent).
    Invalid,
}

impl Trace {
    /// Wraps a span's context for the wire (`None` — a disabled
    /// telemetry handle — becomes [`Trace::Absent`]).
    pub fn from_context(ctx: Option<SpanContext>) -> Trace {
        match ctx {
            Some(SpanContext { trace_id, span_id }) => Trace::Context { trace_id, span_id },
            None => Trace::Absent,
        }
    }

    /// The parent context to open spans under, if the wire carried a
    /// valid one.
    pub fn to_context(self) -> Option<SpanContext> {
        match self {
            Trace::Context { trace_id, span_id } => Some(SpanContext { trace_id, span_id }),
            Trace::Absent | Trace::Invalid => None,
        }
    }

    fn encode_into(self, fields: &mut Vec<(&'static str, Value)>) {
        if let Trace::Context { trace_id, span_id } = self {
            fields.push(("trace_id", Value::from(SpanContext::fmt_id(trace_id))));
            fields.push(("span_id", Value::from(SpanContext::fmt_id(span_id))));
        }
    }

    /// Lenient parse: absence is normal (v2 peer), garbage is
    /// [`Trace::Invalid`], never an error — a bad trace id must not
    /// fail the request it rides on.
    fn decode_from(v: &Value) -> Trace {
        let (t, s) = (v.get("trace_id"), v.get("span_id"));
        if t.is_none() && s.is_none() {
            return Trace::Absent;
        }
        let parse =
            |field: Option<&Value>| field.and_then(Value::as_str).and_then(SpanContext::parse_id);
        match (parse(t), parse(s)) {
            (Some(trace_id), Some(span_id)) => Trace::Context { trace_id, span_id },
            _ => Trace::Invalid,
        }
    }
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Version handshake; first message on a connection, echoed by the
    /// server.
    Hello {
        /// Sender's [`PROTOCOL_VERSION`].
        protocol_version: u32,
        /// Free-form sender label (`"loadgen"`, `"fedl-serve"`, ...).
        node: String,
    },
    /// Registers client `client` into the selectable population.
    /// Idempotent; acknowledged with [`Message::Snapshot`].
    ClientJoin {
        /// Population id in `0..num_clients`.
        client: usize,
    },
    /// Removes client `client` from the selectable population.
    ClientLeave {
        /// Population id in `0..num_clients`.
        client: usize,
    },
    /// Asks the server to select the cohort for `epoch` (must be the
    /// server's next epoch). Answered with [`Message::Cohort`].
    SelectCohort {
        /// Epoch index `t`.
        epoch: usize,
        /// Optional trace context (v3+).
        trace: Trace,
    },
    /// The server's selection for an epoch.
    Cohort {
        /// Epoch index `t`.
        epoch: usize,
        /// Selected client ids (sorted, deduplicated). Empty when no
        /// registered client was available this epoch.
        cohort: Vec<usize>,
        /// Local iterations `l_t` the cohort should run.
        iterations: usize,
        /// `true` once the budget is exhausted: no training happens and
        /// no [`Message::TrainResult`] is expected.
        done: bool,
    },
    /// The cohort's training feedback for an epoch; mirrors the fields
    /// of `fedl_sim::EpochReport` that feed `SelectionPolicy::observe`.
    TrainResult {
        /// Epoch index `t`.
        epoch: usize,
        /// The cohort that trained (must equal the served cohort).
        cohort: Vec<usize>,
        /// Iterations executed.
        iterations: usize,
        /// Epoch wall-clock latency in seconds.
        latency_secs: f64,
        /// Per-iteration latency of each cohort client, cohort order.
        per_client_iter_latency: Vec<f64>,
        /// Total rental cost charged this epoch.
        cost: f64,
        /// Measured local accuracy per cohort client.
        eta_hats: Vec<f32>,
        /// Global loss after the epoch.
        global_loss: f64,
        /// First-order `J·d_k` coefficients per cohort client.
        grad_dot_delta: Vec<f32>,
        /// Local loss per cohort client.
        local_losses: Vec<f32>,
    },
    /// Server state report: the acknowledgement for joins, leaves,
    /// train results, and shutdown, and the reply to a client-sent
    /// `Snapshot` (a status query).
    Snapshot {
        /// The server's next epoch index.
        epoch: usize,
        /// Number of currently registered clients.
        registered: usize,
        /// Cohort selections served so far.
        selections: usize,
        /// Budget remaining in the ledger.
        budget_remaining: f64,
        /// Active selection policy label.
        policy: String,
    },
    /// Asks the server to checkpoint (if configured) and exit its
    /// accept loop. Acknowledged with [`Message::Snapshot`].
    Shutdown,
    /// Coordinator → worker: adopt this scenario and own the contiguous
    /// client shard `[shard_start, shard_end)`. Answered with
    /// [`Message::ShardReady`]. The scenario fields mirror the
    /// `experiments serve` grammar (a `ServeConfig::new` scenario), so
    /// both sides derive the identical environment fingerprint.
    ShardAssign {
        /// Population size `M`.
        clients: usize,
        /// Environment seed.
        seed: u64,
        /// Total rental budget `b`.
        budget: f64,
        /// Minimum cohort size `n`.
        min_participants: usize,
        /// Selection policy label (`PolicyKind::label()` form).
        policy: String,
        /// First client id owned by the worker (inclusive).
        shard_start: usize,
        /// One past the last owned client id (exclusive).
        shard_end: usize,
    },
    /// Worker → coordinator: the shard assignment is in effect and the
    /// population columns are built.
    ShardReady {
        /// Echoed shard start.
        shard_start: usize,
        /// Echoed shard end.
        shard_end: usize,
        /// The worker's scenario fingerprint; the coordinator refuses a
        /// worker whose fingerprint differs from its own.
        fingerprint: String,
    },
    /// Coordinator → worker: realize epoch `epoch` for the worker's
    /// shard and return its context partial. Answered with
    /// [`Message::ShardContextPart`].
    ShardContext {
        /// Epoch index `t`.
        epoch: usize,
        /// Optional trace context (v3+).
        trace: Trace,
    },
    /// Worker → coordinator: the shard's slice of the epoch decision
    /// context (`fedl_core::columnar::ContextPart` on the wire). All
    /// vectors are aligned to `available`.
    ShardContextPart {
        /// Epoch index `t`.
        epoch: usize,
        /// Available clients of the shard (global ids, ascending).
        available: Vec<usize>,
        /// Rental cost per available client.
        costs: Vec<f64>,
        /// 0-lookahead latency estimates (hint epoch channel state).
        latency_hint: Vec<f64>,
        /// Current-epoch realized latency (oracle column).
        true_latency: Vec<f64>,
        /// Fresh data volume per available client.
        data_volumes: Vec<usize>,
    },
    /// Coordinator → worker: run `iterations` local iterations on the
    /// cohort members that fall in the worker's shard and return their
    /// training feedback. Answered with [`Message::ShardTrainPart`].
    ShardTrain {
        /// Epoch index `t`.
        epoch: usize,
        /// Cohort members owned by this shard (global ids, ascending).
        members: Vec<usize>,
        /// Local iterations `l_t`.
        iterations: usize,
        /// Optional trace context (v3+).
        trace: Trace,
    },
    /// Worker → coordinator: per-member training feedback columns,
    /// aligned to `members`. The coordinator concatenates these in
    /// fixed shard order and applies the same scalar combination as the
    /// single-process path, so distributed feedback is bit-identical.
    ShardTrainPart {
        /// Epoch index `t`.
        epoch: usize,
        /// Echoed shard cohort members.
        members: Vec<usize>,
        /// Per-iteration latency of each member.
        per_client_iter_latency: Vec<f64>,
        /// Rental cost of each member this epoch.
        costs: Vec<f64>,
        /// Measured local accuracy per member.
        eta_hats: Vec<f32>,
        /// First-order `J·d_k` coefficients per member.
        grad_dot_delta: Vec<f32>,
        /// Local loss per member.
        local_losses: Vec<f32>,
    },
    /// Asks a running service (serve server, dist coordinator, dist
    /// worker) for a live snapshot of its telemetry registry, without
    /// disturbing it. Answered with [`Message::StatsSnapshot`]. v3+.
    Stats,
    /// The live metrics snapshot: the same
    /// `{"counters":…,"gauges":…,"histograms":…}` object a `metrics`
    /// run-log event carries (histograms as count/mean/p50/p90/p99/
    /// min/max summaries). Empty object when telemetry is disabled.
    StatsSnapshot {
        /// The registry snapshot.
        registry: Value,
    },
    /// A typed refusal; `code` is stable (see [`ProtocolError::code`]),
    /// `detail` is human-readable.
    Error {
        /// Stable machine-readable error class.
        code: String,
        /// Human-readable description.
        detail: String,
    },
}

impl Message {
    fn type_tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::ClientJoin { .. } => "client_join",
            Message::ClientLeave { .. } => "client_leave",
            Message::SelectCohort { .. } => "select_cohort",
            Message::Cohort { .. } => "cohort",
            Message::TrainResult { .. } => "train_result",
            Message::Snapshot { .. } => "snapshot",
            Message::Shutdown => "shutdown",
            Message::ShardAssign { .. } => "shard_assign",
            Message::ShardReady { .. } => "shard_ready",
            Message::ShardContext { .. } => "shard_context",
            Message::ShardContextPart { .. } => "shard_context_part",
            Message::ShardTrain { .. } => "shard_train",
            Message::ShardTrainPart { .. } => "shard_train_part",
            Message::Stats => "stats",
            Message::StatsSnapshot { .. } => "stats_snapshot",
            Message::Error { .. } => "error",
        }
    }

    /// The message as a JSON object (`type` field first).
    pub fn to_json_value(&self) -> Value {
        let mut fields: Vec<(&'static str, Value)> = vec![("type", Value::from(self.type_tag()))];
        match self {
            Message::Hello { protocol_version, node } => {
                fields.push(("protocol_version", Value::from(*protocol_version as usize)));
                fields.push(("node", Value::from(node.as_str())));
            }
            Message::ClientJoin { client } | Message::ClientLeave { client } => {
                fields.push(("client", Value::from(*client)));
            }
            Message::SelectCohort { epoch, trace } => {
                fields.push(("epoch", Value::from(*epoch)));
                trace.encode_into(&mut fields);
            }
            Message::Cohort { epoch, cohort, iterations, done } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("cohort", ids_to_json(cohort)));
                fields.push(("iterations", Value::from(*iterations)));
                fields.push(("done", Value::Bool(*done)));
            }
            Message::TrainResult {
                epoch,
                cohort,
                iterations,
                latency_secs,
                per_client_iter_latency,
                cost,
                eta_hats,
                global_loss,
                grad_dot_delta,
                local_losses,
            } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("cohort", ids_to_json(cohort)));
                fields.push(("iterations", Value::from(*iterations)));
                fields.push(("latency_secs", Value::Float(*latency_secs)));
                fields.push((
                    "per_client_iter_latency",
                    Value::Arr(per_client_iter_latency.iter().map(|&t| Value::Float(t)).collect()),
                ));
                fields.push(("cost", Value::Float(*cost)));
                fields.push(("eta_hats", f32s_to_json(eta_hats)));
                fields.push(("global_loss", Value::Float(*global_loss)));
                fields.push(("grad_dot_delta", f32s_to_json(grad_dot_delta)));
                fields.push(("local_losses", f32s_to_json(local_losses)));
            }
            Message::Snapshot { epoch, registered, selections, budget_remaining, policy } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("registered", Value::from(*registered)));
                fields.push(("selections", Value::from(*selections)));
                fields.push(("budget_remaining", Value::Float(*budget_remaining)));
                fields.push(("policy", Value::from(policy.as_str())));
            }
            Message::Shutdown => {}
            Message::ShardAssign {
                clients,
                seed,
                budget,
                min_participants,
                policy,
                shard_start,
                shard_end,
            } => {
                fields.push(("clients", Value::from(*clients)));
                // Seeds ride as JSON ints; the CLI's seed grammar keeps
                // them inside i64 range.
                fields.push(("seed", Value::from(*seed as usize)));
                fields.push(("budget", Value::Float(*budget)));
                fields.push(("min_participants", Value::from(*min_participants)));
                fields.push(("policy", Value::from(policy.as_str())));
                fields.push(("shard_start", Value::from(*shard_start)));
                fields.push(("shard_end", Value::from(*shard_end)));
            }
            Message::ShardReady { shard_start, shard_end, fingerprint } => {
                fields.push(("shard_start", Value::from(*shard_start)));
                fields.push(("shard_end", Value::from(*shard_end)));
                fields.push(("fingerprint", Value::from(fingerprint.as_str())));
            }
            Message::ShardContext { epoch, trace } => {
                fields.push(("epoch", Value::from(*epoch)));
                trace.encode_into(&mut fields);
            }
            Message::ShardContextPart {
                epoch,
                available,
                costs,
                latency_hint,
                true_latency,
                data_volumes,
            } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("available", ids_to_json(available)));
                fields.push(("costs", f64s_to_json(costs)));
                fields.push(("latency_hint", f64s_to_json(latency_hint)));
                fields.push(("true_latency", f64s_to_json(true_latency)));
                fields.push(("data_volumes", ids_to_json(data_volumes)));
            }
            Message::ShardTrain { epoch, members, iterations, trace } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("members", ids_to_json(members)));
                fields.push(("iterations", Value::from(*iterations)));
                trace.encode_into(&mut fields);
            }
            Message::ShardTrainPart {
                epoch,
                members,
                per_client_iter_latency,
                costs,
                eta_hats,
                grad_dot_delta,
                local_losses,
            } => {
                fields.push(("epoch", Value::from(*epoch)));
                fields.push(("members", ids_to_json(members)));
                fields.push(("per_client_iter_latency", f64s_to_json(per_client_iter_latency)));
                fields.push(("costs", f64s_to_json(costs)));
                fields.push(("eta_hats", f32s_to_json(eta_hats)));
                fields.push(("grad_dot_delta", f32s_to_json(grad_dot_delta)));
                fields.push(("local_losses", f32s_to_json(local_losses)));
            }
            Message::Stats => {}
            Message::StatsSnapshot { registry } => {
                fields.push(("registry", registry.clone()));
            }
            Message::Error { code, detail } => {
                fields.push(("code", Value::from(code.as_str())));
                fields.push(("detail", Value::from(detail.as_str())));
            }
        }
        obj(fields)
    }

    /// Parses a message object; any shape mismatch is a
    /// [`ProtocolError::Schema`].
    pub fn from_json_value(v: &Value) -> Result<Message, ProtocolError> {
        let schema = |e: fedl_json::Error| ProtocolError::Schema { detail: e.to_string() };
        let tag: String = read_field(v, "type").map_err(schema)?;
        let msg = match tag.as_str() {
            "hello" => {
                let raw: usize = read_field(v, "protocol_version").map_err(schema)?;
                let protocol_version = u32::try_from(raw).map_err(|_| ProtocolError::Schema {
                    detail: format!("protocol_version {raw} out of range"),
                })?;
                Message::Hello { protocol_version, node: read_field(v, "node").map_err(schema)? }
            }
            "client_join" => {
                Message::ClientJoin { client: read_field(v, "client").map_err(schema)? }
            }
            "client_leave" => {
                Message::ClientLeave { client: read_field(v, "client").map_err(schema)? }
            }
            "select_cohort" => Message::SelectCohort {
                epoch: read_field(v, "epoch").map_err(schema)?,
                trace: Trace::decode_from(v),
            },
            "cohort" => Message::Cohort {
                epoch: read_field(v, "epoch").map_err(schema)?,
                cohort: read_field(v, "cohort").map_err(schema)?,
                iterations: read_field(v, "iterations").map_err(schema)?,
                done: read_field(v, "done").map_err(schema)?,
            },
            "train_result" => Message::TrainResult {
                epoch: read_field(v, "epoch").map_err(schema)?,
                cohort: read_field(v, "cohort").map_err(schema)?,
                iterations: read_field(v, "iterations").map_err(schema)?,
                latency_secs: read_field(v, "latency_secs").map_err(schema)?,
                per_client_iter_latency: read_field(v, "per_client_iter_latency")
                    .map_err(schema)?,
                cost: read_field(v, "cost").map_err(schema)?,
                eta_hats: read_field(v, "eta_hats").map_err(schema)?,
                global_loss: read_field(v, "global_loss").map_err(schema)?,
                grad_dot_delta: read_field(v, "grad_dot_delta").map_err(schema)?,
                local_losses: read_field(v, "local_losses").map_err(schema)?,
            },
            "snapshot" => Message::Snapshot {
                epoch: read_field(v, "epoch").map_err(schema)?,
                registered: read_field(v, "registered").map_err(schema)?,
                selections: read_field(v, "selections").map_err(schema)?,
                budget_remaining: read_field(v, "budget_remaining").map_err(schema)?,
                policy: read_field(v, "policy").map_err(schema)?,
            },
            "shutdown" => Message::Shutdown,
            "shard_assign" => {
                let seed: usize = read_field(v, "seed").map_err(schema)?;
                Message::ShardAssign {
                    clients: read_field(v, "clients").map_err(schema)?,
                    seed: seed as u64,
                    budget: read_field(v, "budget").map_err(schema)?,
                    min_participants: read_field(v, "min_participants").map_err(schema)?,
                    policy: read_field(v, "policy").map_err(schema)?,
                    shard_start: read_field(v, "shard_start").map_err(schema)?,
                    shard_end: read_field(v, "shard_end").map_err(schema)?,
                }
            }
            "shard_ready" => Message::ShardReady {
                shard_start: read_field(v, "shard_start").map_err(schema)?,
                shard_end: read_field(v, "shard_end").map_err(schema)?,
                fingerprint: read_field(v, "fingerprint").map_err(schema)?,
            },
            "shard_context" => Message::ShardContext {
                epoch: read_field(v, "epoch").map_err(schema)?,
                trace: Trace::decode_from(v),
            },
            "shard_context_part" => Message::ShardContextPart {
                epoch: read_field(v, "epoch").map_err(schema)?,
                available: read_field(v, "available").map_err(schema)?,
                costs: read_field(v, "costs").map_err(schema)?,
                latency_hint: read_field(v, "latency_hint").map_err(schema)?,
                true_latency: read_field(v, "true_latency").map_err(schema)?,
                data_volumes: read_field(v, "data_volumes").map_err(schema)?,
            },
            "shard_train" => Message::ShardTrain {
                epoch: read_field(v, "epoch").map_err(schema)?,
                members: read_field(v, "members").map_err(schema)?,
                iterations: read_field(v, "iterations").map_err(schema)?,
                trace: Trace::decode_from(v),
            },
            "shard_train_part" => Message::ShardTrainPart {
                epoch: read_field(v, "epoch").map_err(schema)?,
                members: read_field(v, "members").map_err(schema)?,
                per_client_iter_latency: read_field(v, "per_client_iter_latency")
                    .map_err(schema)?,
                costs: read_field(v, "costs").map_err(schema)?,
                eta_hats: read_field(v, "eta_hats").map_err(schema)?,
                grad_dot_delta: read_field(v, "grad_dot_delta").map_err(schema)?,
                local_losses: read_field(v, "local_losses").map_err(schema)?,
            },
            "stats" => Message::Stats,
            "stats_snapshot" => Message::StatsSnapshot {
                registry: v.get("registry").cloned().ok_or_else(|| ProtocolError::Schema {
                    detail: "stats_snapshot is missing the registry field".to_string(),
                })?,
            },
            "error" => Message::Error {
                code: read_field(v, "code").map_err(schema)?,
                detail: read_field(v, "detail").map_err(schema)?,
            },
            other => {
                return Err(ProtocolError::Schema {
                    detail: format!("unknown message type {other:?}"),
                })
            }
        };
        Ok(msg)
    }
}

fn ids_to_json(ids: &[usize]) -> Value {
    Value::Arr(ids.iter().map(|&k| Value::from(k)).collect())
}

fn f32s_to_json(xs: &[f32]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Float(x as f64)).collect())
}

fn f64s_to_json(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Float(x)).collect())
}

/// Serializes a message into one frame (envelope text bytes; the
/// transport adds the length prefix).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_envelope(FRAME_KIND, &msg.to_json_value()).into_bytes()
}

/// Verifies and parses one frame. Non-UTF-8 bytes, header damage,
/// checksum mismatches, and unknown message shapes all come back as
/// typed errors.
pub fn decode_frame(frame: &[u8]) -> Result<Message, ProtocolError> {
    let text = std::str::from_utf8(frame)
        .map_err(|e| ProtocolError::Envelope { detail: format!("frame is not UTF-8: {e}") })?;
    let payload = decode_envelope(text, FRAME_KIND, "frame").map_err(ProtocolError::from)?;
    Message::from_json_value(&payload)
}

/// [`encode_frame`] with wire instrumentation: records the frame's
/// byte length into the `proto.frame_bytes` histogram and the encode
/// time into `proto.encode_ns`, and returns the elapsed nanoseconds so
/// callers can attribute them to the request (`frame` events, the
/// trace report's critical path). No-ops on a disabled handle.
pub fn encode_frame_traced(msg: &Message, telemetry: &Telemetry) -> (Vec<u8>, u64) {
    let start = std::time::Instant::now();
    let frame = encode_frame(msg);
    let ns = start.elapsed().as_nanos() as u64;
    telemetry.histogram("proto.frame_bytes").record(frame.len() as f64);
    telemetry.histogram("proto.encode_ns").record(ns as f64);
    (frame, ns)
}

/// [`decode_frame`] with wire instrumentation: records the frame's
/// byte length into `proto.frame_bytes` and the decode time into
/// `proto.decode_ns`, returning the elapsed nanoseconds alongside the
/// parse result (errors are timed too — rejecting garbage costs real
/// wall clock).
pub fn decode_frame_traced(
    frame: &[u8],
    telemetry: &Telemetry,
) -> (Result<Message, ProtocolError>, u64) {
    let start = std::time::Instant::now();
    let result = decode_frame(frame);
    let ns = start.elapsed().as_nanos() as u64;
    telemetry.histogram("proto.frame_bytes").record(frame.len() as f64);
    telemetry.histogram("proto.decode_ns").record(ns as f64);
    (result, ns)
}

/// Everything that can go wrong between raw bytes and an applied
/// message — always a value, never a panic, mirroring the store's
/// `StoreError` and the run log's lenient parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Socket-level failure.
    Io {
        /// OS error description.
        detail: String,
    },
    /// The peer produced no bytes (or accepted none) within the
    /// transport's configured I/O deadline (`--io-timeout`). Unlike
    /// [`ProtocolError::Io`] this names a stalled-but-alive peer; the
    /// caller may retry on a fresh connection.
    Timeout {
        /// The deadline that elapsed, in seconds.
        secs: f64,
    },
    /// Length prefix exceeds [`MAX_FRAME_BYTES`]; the stream is
    /// desynchronized and the connection must be dropped.
    FrameTooLarge {
        /// Claimed frame length.
        len: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// The stream ended inside a frame.
    TruncatedFrame {
        /// Bytes the prefix promised.
        expected: usize,
        /// Bytes actually read.
        got: usize,
    },
    /// Frame bytes are not a valid `serve-msg` envelope (bad magic,
    /// version, kind, checksum, or encoding).
    Envelope {
        /// What the envelope check rejected.
        detail: String,
    },
    /// The envelope verified but its payload is not a known message.
    Schema {
        /// What the message parser rejected.
        detail: String,
    },
    /// Peer speaks a different [`PROTOCOL_VERSION`].
    Version {
        /// Our version.
        ours: u32,
        /// The peer's version.
        theirs: u32,
    },
    /// Client id outside the configured population.
    UnknownClient {
        /// The offending id.
        client: usize,
        /// Population size `num_clients`.
        population: usize,
    },
    /// A request named an epoch other than the server's next.
    BadEpoch {
        /// The server's next epoch.
        expected: usize,
        /// The epoch the peer asked about.
        got: usize,
    },
    /// The message is valid but illegal in the server's current phase
    /// (e.g. a `TrainResult` with no selection pending).
    UnexpectedMessage {
        /// Why the message was refused.
        detail: String,
    },
}

impl ProtocolError {
    /// Stable machine-readable class, carried in [`Message::Error`].
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Io { .. } => "io",
            ProtocolError::Timeout { .. } => "timeout",
            ProtocolError::FrameTooLarge { .. } => "frame-too-large",
            ProtocolError::TruncatedFrame { .. } => "truncated-frame",
            ProtocolError::Envelope { .. } => "envelope",
            ProtocolError::Schema { .. } => "schema",
            ProtocolError::Version { .. } => "version",
            ProtocolError::UnknownClient { .. } => "unknown-client",
            ProtocolError::BadEpoch { .. } => "bad-epoch",
            ProtocolError::UnexpectedMessage { .. } => "unexpected-message",
        }
    }

    /// The wire form: a [`Message::Error`] carrying [`Self::code`] and
    /// the display text.
    pub fn to_wire(&self) -> Message {
        Message::Error { code: self.code().to_string(), detail: self.to_string() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io { detail } => write!(f, "transport error: {detail}"),
            ProtocolError::Timeout { secs } => {
                write!(f, "peer stalled past the {secs}s I/O deadline")
            }
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            ProtocolError::TruncatedFrame { expected, got } => {
                write!(f, "stream ended inside a frame: expected {expected} bytes, got {got}")
            }
            ProtocolError::Envelope { detail } => write!(f, "bad frame envelope: {detail}"),
            ProtocolError::Schema { detail } => write!(f, "bad message payload: {detail}"),
            ProtocolError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer v{theirs}")
            }
            ProtocolError::UnknownClient { client, population } => {
                write!(f, "client {client} outside the population of {population}")
            }
            ProtocolError::BadEpoch { expected, got } => {
                write!(f, "epoch {got} requested, server is at epoch {expected}")
            }
            ProtocolError::UnexpectedMessage { detail } => {
                write!(f, "unexpected message: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<StoreError> for ProtocolError {
    fn from(err: StoreError) -> Self {
        ProtocolError::Envelope { detail: err.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode_frame(&msg);
        let back = decode_frame(&frame).expect("frame should decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_round_trips() {
        roundtrip(Message::Hello { protocol_version: PROTOCOL_VERSION, node: "t".into() });
        roundtrip(Message::ClientJoin { client: 7 });
        roundtrip(Message::ClientLeave { client: 0 });
        roundtrip(Message::SelectCohort { epoch: 3, trace: Trace::Absent });
        roundtrip(Message::SelectCohort {
            epoch: 3,
            trace: Trace::Context { trace_id: 0xdead_beef, span_id: u64::MAX },
        });
        roundtrip(Message::Cohort { epoch: 3, cohort: vec![1, 4, 9], iterations: 5, done: false });
        roundtrip(Message::TrainResult {
            epoch: 3,
            cohort: vec![1, 4],
            iterations: 5,
            latency_secs: 1.25,
            per_client_iter_latency: vec![0.2, 0.25],
            cost: 11.5,
            eta_hats: vec![0.5, 0.75],
            global_loss: 2.302,
            grad_dot_delta: vec![-0.25, -0.5],
            local_losses: vec![2.0, 2.25],
        });
        roundtrip(Message::Snapshot {
            epoch: 4,
            registered: 100,
            selections: 4,
            budget_remaining: 312.5,
            policy: "FedL".into(),
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Stats);
        roundtrip(Message::StatsSnapshot {
            registry: obj(vec![
                ("counters", obj(vec![("serve.frames_in", Value::Int(12))])),
                ("gauges", obj(vec![])),
                ("histograms", obj(vec![])),
            ]),
        });
        roundtrip(Message::Error { code: "bad-epoch".into(), detail: "nope".into() });
    }

    #[test]
    fn every_shard_message_round_trips() {
        roundtrip(Message::ShardAssign {
            clients: 100,
            seed: 7,
            budget: 1e6,
            min_participants: 3,
            policy: "FedL".into(),
            shard_start: 50,
            shard_end: 100,
        });
        roundtrip(Message::ShardReady {
            shard_start: 50,
            shard_end: 100,
            fingerprint: "deadbeefdeadbeef".into(),
        });
        roundtrip(Message::ShardContext { epoch: 9, trace: Trace::Absent });
        roundtrip(Message::ShardContext {
            epoch: 9,
            trace: Trace::Context { trace_id: 1, span_id: 0x0123_4567_89ab_cdef },
        });
        // Awkward floats (subnormal, negative zero, many digits) must
        // survive the JSON trip bit-for-bit — the distributed merge
        // depends on it.
        roundtrip(Message::ShardContextPart {
            epoch: 9,
            available: vec![51, 53, 99],
            costs: vec![1.0000000000000002, -0.0, 5e-324],
            latency_hint: vec![0.1, 0.2, 0.30000000000000004],
            true_latency: vec![1.5, 2.5, f64::MIN_POSITIVE],
            data_volumes: vec![10, 0, 3],
        });
        roundtrip(Message::ShardTrain {
            epoch: 9,
            members: vec![51, 99],
            iterations: 4,
            trace: Trace::Absent,
        });
        roundtrip(Message::ShardTrain {
            epoch: 9,
            members: vec![51, 99],
            iterations: 4,
            trace: Trace::Context { trace_id: 0xfeed, span_id: 0xf00d },
        });
        roundtrip(Message::ShardTrainPart {
            epoch: 9,
            members: vec![51, 99],
            per_client_iter_latency: vec![0.25, 0.125],
            costs: vec![3.5, 4.5],
            eta_hats: vec![0.5, 0.9],
            grad_dot_delta: vec![-0.25, -0.125],
            local_losses: vec![2.0, 1.75],
        });
    }

    #[test]
    fn v2_messages_without_trace_fields_parse_as_absent() {
        // A v2 peer encodes select_cohort/shard_context/shard_train
        // with no trace fields at all — exactly what Trace::Absent
        // produces, so the old wire form round-trips unchanged.
        for (tag, extra) in [
            ("select_cohort", vec![]),
            ("shard_context", vec![]),
            ("shard_train", vec![("members", Value::Arr(vec![])), ("iterations", Value::Int(1))]),
        ] {
            let mut fields = vec![("type", Value::from(tag)), ("epoch", Value::Int(5))];
            fields.extend(extra);
            let text = fedl_store::encode_envelope(FRAME_KIND, &obj(fields));
            let msg = decode_frame(text.as_bytes()).expect("v2 shape should decode");
            let trace = match msg {
                Message::SelectCohort { trace, .. }
                | Message::ShardContext { trace, .. }
                | Message::ShardTrain { trace, .. } => trace,
                other => panic!("unexpected message {other:?}"),
            };
            assert_eq!(trace, Trace::Absent, "{tag}");
        }
    }

    #[test]
    fn garbage_trace_ids_parse_as_invalid_never_panic() {
        let cases: [(Value, Value); 6] = [
            (Value::from("zzzz"), Value::from("1234")),
            (Value::from(""), Value::from("1234")),
            (Value::from("12345678901234567"), Value::from("1")),
            (Value::Int(42), Value::from("1")),
            (Value::Null, Value::Null),
            (Value::Arr(vec![Value::Int(1)]), Value::from("1")),
        ];
        for (trace_id, span_id) in cases {
            let payload = obj(vec![
                ("type", Value::from("select_cohort")),
                ("epoch", Value::Int(0)),
                ("trace_id", trace_id.clone()),
                ("span_id", span_id.clone()),
            ]);
            let text = fedl_store::encode_envelope(FRAME_KIND, &payload);
            let msg = decode_frame(text.as_bytes()).expect("garbage trace must not fail parse");
            assert_eq!(
                msg,
                Message::SelectCohort { epoch: 0, trace: Trace::Invalid },
                "trace_id={trace_id:?} span_id={span_id:?}"
            );
        }
        // One field present, one absent: also invalid, not absent.
        let payload = obj(vec![
            ("type", Value::from("select_cohort")),
            ("epoch", Value::Int(0)),
            ("trace_id", Value::from("abc")),
        ]);
        let text = fedl_store::encode_envelope(FRAME_KIND, &payload);
        assert_eq!(
            decode_frame(text.as_bytes()).unwrap(),
            Message::SelectCohort { epoch: 0, trace: Trace::Invalid }
        );
        // An invalid context is never re-encoded: it goes out absent.
        let reencoded = encode_frame(&Message::SelectCohort { epoch: 0, trace: Trace::Invalid });
        assert_eq!(
            decode_frame(&reencoded).unwrap(),
            Message::SelectCohort { epoch: 0, trace: Trace::Absent }
        );
    }

    #[test]
    fn trace_context_round_trips_and_links() {
        let ctx = fedl_telemetry::SpanContext { trace_id: 0xa1b2_c3d4, span_id: 7 };
        let trace = Trace::from_context(Some(ctx));
        let frame = encode_frame(&Message::ShardContext { epoch: 2, trace });
        match decode_frame(&frame).unwrap() {
            Message::ShardContext { trace, .. } => assert_eq!(trace.to_context(), Some(ctx)),
            other => panic!("unexpected message {other:?}"),
        }
        assert_eq!(Trace::from_context(None), Trace::Absent);
        assert_eq!(Trace::Invalid.to_context(), None);
    }

    #[test]
    fn traced_codec_records_wire_histograms() {
        let (tel, _handle) = Telemetry::in_memory();
        let msg = Message::SelectCohort { epoch: 1, trace: Trace::Absent };
        let (frame, encode_ns) = encode_frame_traced(&msg, &tel);
        let (decoded, _decode_ns) = decode_frame_traced(&frame, &tel);
        assert_eq!(decoded.unwrap(), msg);
        let _ = encode_ns;
        assert_eq!(tel.histogram("proto.frame_bytes").count(), 2);
        assert_eq!(tel.histogram("proto.encode_ns").count(), 1);
        assert_eq!(tel.histogram("proto.decode_ns").count(), 1);
        // A frame that fails to decode is still timed and counted.
        let (bad, _) = decode_frame_traced(b"garbage", &tel);
        assert!(bad.is_err());
        assert_eq!(tel.histogram("proto.decode_ns").count(), 2);
        // Disabled telemetry: the codec still works, records nothing.
        let off = Telemetry::disabled();
        let (frame2, _) = encode_frame_traced(&msg, &off);
        assert_eq!(frame2, encode_frame(&msg));
    }

    #[test]
    fn version_window_accepts_v2_refuses_v1_and_v4() {
        assert!(version_accepted(PROTOCOL_VERSION));
        assert!(version_accepted(MIN_PROTOCOL_VERSION));
        assert!(!version_accepted(MIN_PROTOCOL_VERSION - 1));
        assert!(!version_accepted(PROTOCOL_VERSION + 1));
    }

    #[test]
    fn timeout_error_has_a_stable_code() {
        let err = ProtocolError::Timeout { secs: 2.5 };
        assert_eq!(err.code(), "timeout");
        match err.to_wire() {
            Message::Error { code, detail } => {
                assert_eq!(code, "timeout");
                assert!(detail.contains("2.5"));
            }
            other => panic!("unexpected wire form {other:?}"),
        }
    }

    #[test]
    fn oversized_protocol_version_is_a_schema_error() {
        // 2^32 + 1 must not silently truncate to v1 and pass the
        // handshake; it is refused at parse time.
        let payload = obj(vec![
            ("type", Value::from("hello")),
            ("protocol_version", Value::Int(4_294_967_297)),
            ("node", Value::from("peer")),
        ]);
        let text = fedl_store::encode_envelope(FRAME_KIND, &payload);
        assert!(matches!(decode_frame(text.as_bytes()), Err(ProtocolError::Schema { .. })));
    }

    #[test]
    fn garbage_and_damage_are_typed_errors() {
        assert!(matches!(
            decode_frame(b"not an envelope at all\n{}"),
            Err(ProtocolError::Envelope { .. })
        ));
        assert!(matches!(decode_frame(&[0xFF, 0xFE, 0x00]), Err(ProtocolError::Envelope { .. })));
        // Valid envelope, wrong payload shape.
        let text = fedl_store::encode_envelope(FRAME_KIND, &obj(vec![("x", Value::Int(1))]));
        assert!(matches!(decode_frame(text.as_bytes()), Err(ProtocolError::Schema { .. })));
        // Flipping one payload byte breaks the checksum.
        let mut frame = encode_frame(&Message::SelectCohort { epoch: 1, trace: Trace::Absent });
        let n = frame.len();
        frame[n - 2] ^= 0x01;
        assert!(matches!(decode_frame(&frame), Err(ProtocolError::Envelope { .. })));
    }
}
